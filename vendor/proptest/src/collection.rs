//! Collection strategies (subset of `proptest::collection`).

use crate::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Inclusive length bounds for [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors whose elements come from `element` and whose length lies in
/// `size` (a fixed `usize`, `Range`, or `RangeInclusive`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
