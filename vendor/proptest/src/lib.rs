//! Offline vendored mini-proptest.
//!
//! Implements the subset of the `proptest` API this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range
//! and [`collection::vec`] strategies, [`any`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a ChaCha stream seeded by the test's module
//!   path and case index — fully deterministic across runs and platforms;
//! * no shrinking: a failing case reports its case index (re-runnable
//!   because generation is deterministic) instead of a minimized input.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod collection;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the acoustic-simulation
        // properties fast while still exercising a broad input set.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion, carried out of the case body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of random values for one proptest argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// Tuples of strategies are strategies over tuples (upstream semantics:
// components drawn left to right).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        let a = self.0.sample(rng);
        let b = self.1.sample(rng);
        (a, b)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        let a = self.0.sample(rng);
        let b = self.1.sample(rng);
        let c = self.2.sample(rng);
        (a, b, c)
    }
}

/// Deterministic per-case RNG: FNV-1a over the test path, mixed with the
/// case index.
#[doc(hidden)]
pub fn __case_rng(test_path: &str, case: u32) -> ChaCha8Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Defines property tests (vendored subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::__proptest_fns! { config = $config;
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)* }
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default();
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::__case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..255, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_form_compiles(seed in 0u64..10) {
            prop_assert!(seed < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: f64 = Strategy::sample(&(0.0f64..1.0), &mut __case_rng("t", 0));
        let b: f64 = Strategy::sample(&(0.0f64..1.0), &mut __case_rng("t", 0));
        let c: f64 = Strategy::sample(&(0.0f64..1.0), &mut __case_rng("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
