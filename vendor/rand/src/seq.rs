//! Slice sequence helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Extension trait adding random shuffling to slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = Counter(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }
}
