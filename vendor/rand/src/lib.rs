//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external crates the reproduction uses are vendored as
//! from-scratch implementations of exactly the API surface the workspace
//! consumes. This crate covers:
//!
//! * [`RngCore`] / [`SeedableRng`] — the core generator traits, including
//!   the `seed_from_u64` SplitMix64 expansion matching `rand_core` 0.6.
//! * [`Rng`] — the extension trait with `gen`, `gen_range`, `gen_bool`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! The float/integer uniform samplers follow the same constructions as
//! rand 0.8 (53-bit mantissa floats, rejection-sampled integers), so
//! statistical quality matches what the simulation was written against.
//! Exact stream compatibility with upstream `rand` is **not** guaranteed;
//! every consumer in this workspace seeds its own [`SeedableRng`] and makes
//! behavioural (not golden-value) assertions.

pub mod seq;

/// Core random number generator trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type, typically `[u8; 32]`.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same expansion
    /// `rand_core` 0.6 uses, so seeds carry full entropy into every word).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), truncated to 32 bits per output as in
            // rand_core::SeedableRng::seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa construction, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types uniformly samplable from a half-open or inclusive range
/// (mirrors `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`]. The single blanket impl per
/// range shape keeps literal-type inference identical to upstream rand.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let span = (hi as $wide)
                    .wrapping_sub(lo as $wide)
                    .wrapping_add(<$wide>::from(inclusive));
                if span == 0 {
                    // Full-domain inclusive range.
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as u64,
    i16 as u64,
    i32 as u64,
    i64 as u64,
    isize as u64
);

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via Lemire-style
/// rejection on the high bits.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Extension methods on every [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — test-only generator.
    struct TestRng(u64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(3..10u64);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn float_unit_interval_covers_both_halves() {
        let mut rng = TestRng(7);
        let draws: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(draws.iter().any(|&x| x < 0.5) && draws.iter().any(|&x| x > 0.5));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = TestRng(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn integer_ranges_are_roughly_uniform() {
        let mut rng = TestRng(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }
}
