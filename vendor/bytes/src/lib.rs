//! Offline vendored `bytes::Bytes`: an immutable, cheaply cloneable byte
//! buffer backed by `Arc<[u8]>`. Covers the read-only surface the
//! workspace uses (construction, `Deref` to `[u8]`, equality, length).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.iter().copied().sum::<u8>(), 6);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(&[9u8, 8][..]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![9, 8]);
    }
}
