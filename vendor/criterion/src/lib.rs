//! Offline vendored mini-criterion.
//!
//! Provides the subset of the `criterion` API the workspace's bench
//! targets use — [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`, and
//! [`Bencher::iter`]/[`Bencher::iter_batched`] — backed by a simple
//! wall-clock measurement loop (warmup, then `sample_size` samples of an
//! adaptively chosen iteration count; the median per-iteration time is
//! reported).
//!
//! Extensions over upstream (used by `piano-bench`):
//!
//! * [`Criterion::results`] exposes the measurements taken so far;
//! * [`Criterion::export_json`] writes them as machine-readable JSON —
//!   how `BENCH_micro.json` is produced.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// vendored harness always materializes one input per routine call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One benchmark's measurement summary.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id (`group/name` for grouped benches).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark under the default sample size.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_bench(id.to_string(), sample_size, f);
        self
    }

    /// Opens a named group whose benches share a sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All measurements taken so far (vendored extension).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes all measurements as pretty JSON (vendored extension).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from writing `path`.
    pub fn export_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                r.id, r.median_ns, r.mean_ns, r.min_ns, r.samples, r.iters_per_sample
            ));
        }
        out.push_str("\n  ]\n}\n");
        std::fs::write(path, out)
    }

    fn run_bench<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let mut sorted = bencher.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let median_ns = if sorted.is_empty() {
            0.0
        } else {
            sorted[sorted.len() / 2]
        };
        let mean_ns = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let min_ns = sorted.first().copied().unwrap_or(0.0);
        println!(
            "{id:<40} time: [median {} | mean {} | min {}] ({} samples x {} iters)",
            format_ns(median_ns),
            format_ns(mean_ns),
            format_ns(min_ns),
            sorted.len(),
            bencher.iters_per_sample,
        );
        self.results.push(BenchResult {
            id,
            median_ns,
            mean_ns,
            min_ns,
            samples: sorted.len(),
            iters_per_sample: bencher.iters_per_sample,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A benchmark group sharing a sample-size override.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group as `group/name`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run_bench(format!("{}/{}", self.name, id), sample_size, f);
        self
    }

    /// Ends the group (bookkeeping only).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

/// Total wall-clock budget per benchmark (warmup + measurement).
const WARMUP_BUDGET: Duration = Duration::from_millis(300);
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
const MEASURE_BUDGET: Duration = Duration::from_secs(3);

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_iters < 3 || (warm_start.elapsed() < WARMUP_BUDGET && warm_iters < 10_000) {
            black_box(routine());
            warm_iters += 1;
        }
        let est_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let iters = (SAMPLE_TARGET.as_secs_f64() / est_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_secs_f64() * 1e9 / iters as f64);
            if measure_start.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
        self.iters_per_sample = iters;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        let mut routine_ns = 0.0f64;
        while warm_iters < 3 || (warm_start.elapsed() < WARMUP_BUDGET && warm_iters < 10_000) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            routine_ns += t0.elapsed().as_secs_f64() * 1e9;
            warm_iters += 1;
        }
        let est_iter = routine_ns / warm_iters as f64 / 1e9;

        let iters = (SAMPLE_TARGET.as_secs_f64() / est_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed();
            }
            self.samples_ns
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
            if measure_start.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
        self.iters_per_sample = iters;
    }
}

/// Bundles bench functions into a runnable group (vendored form of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (vendored form of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion {
            default_sample_size: 5,
            results: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "noop");
        assert!(r.median_ns >= 0.0);
        assert!(r.samples > 0);
    }

    #[test]
    fn groups_prefix_ids_and_respect_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(4);
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.results()[0].id, "grp/inner");
        assert!(c.results()[0].samples <= 4);
    }

    #[test]
    fn export_json_writes_parsable_output() {
        let mut c = Criterion {
            default_sample_size: 3,
            results: Vec::new(),
        };
        c.bench_function("x", |b| b.iter(|| 0));
        let dir = std::env::temp_dir().join("criterion_stub_test.json");
        c.export_json(&dir).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"id\": \"x\""));
        let _ = std::fs::remove_file(&dir);
    }
}
