//! Offline vendored `ChaCha8Rng`: a real ChaCha stream cipher (8 rounds)
//! driving the workspace's [`rand::RngCore`] trait.
//!
//! The block function is the standard ChaCha quarter-round network
//! (Bernstein; RFC 8439 layout) with a 64-bit block counter and zero
//! nonce, keyed by the 32-byte seed. Output bytes are the little-endian
//! serialization of the post-addition state, consumed sequentially —
//! the same layout `rand_chacha` uses.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state[4..12]).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 64-byte output block.
    block: [u8; 64],
    /// Bytes of `block` already consumed.
    used: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the (zero) nonce.
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (i, (s, init)) in state.iter().zip(&initial).enumerate() {
            self.block[4 * i..4 * i + 4].copy_from_slice(&s.wrapping_add(*init).to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.used = 0;
    }

    #[inline]
    fn take_bytes<const N: usize>(&mut self) -> [u8; N] {
        debug_assert!(N <= 64);
        if self.used + N > 64 {
            self.refill();
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.block[self.used..self.used + N]);
        self.used += N;
        out
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            block: [0u8; 64],
            used: 64,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes::<4>())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes::<8>())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.used >= 64 {
                self.refill();
            }
            let n = (dest.len() - filled).min(64 - self.used);
            dest[filled..filled + n].copy_from_slice(&self.block[self.used..self.used + n]);
            self.used += n;
            filled += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(1235);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut bytes = [0u8; 24];
        a.fill_bytes(&mut bytes);
        let mut expect = [0u8; 24];
        for chunk in expect.chunks_exact_mut(8) {
            chunk.copy_from_slice(&b.next_u64().to_le_bytes());
        }
        assert_eq!(bytes, expect);
    }

    #[test]
    fn crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut big = vec![0u8; 1000];
        rng.fill_bytes(&mut big);
        assert!(big.iter().any(|&b| b != 0));
        // Mean byte value of a uniform stream sits near 127.5.
        let mean = big.iter().map(|&b| b as f64).sum::<f64>() / big.len() as f64;
        assert!((100.0..155.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn uniform_floats_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }
}
