//! Offline vendored `serde` facade.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small serialization surface the workspace actually uses: a
//! [`Serialize`] trait that lowers values to a JSON [`Value`] tree (which
//! the vendored `serde_json` renders), a marker [`Deserialize`] trait, and
//! `#[derive(Serialize, Deserialize)]` macros from the sibling
//! `serde_derive` crate (plain structs, tuple structs, and unit-variant
//! enums — exactly the shapes this workspace derives on).

// Lets the `::serde::` paths emitted by the derive macros resolve when the
// derives are used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the intermediate representation [`Serialize`]
/// lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves to a JSON [`Value`].
pub trait Serialize {
    /// Produces the JSON value tree for `self`.
    fn to_json_value(&self) -> Value;
}

/// Marker trait mirroring `serde::Deserialize`; the workspace never
/// deserializes, so this carries no methods.
pub trait Deserialize {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3i32.to_json_value(), Value::Int(3));
        assert_eq!(3u64.to_json_value(), Value::UInt(3));
        assert_eq!(1.5f64.to_json_value(), Value::Float(1.5));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_string().to_json_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn containers_recurse() {
        let v = vec![1u8, 2];
        assert_eq!(
            v.to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        let pair = (1u8, "a".to_string());
        assert_eq!(
            pair.to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::String("a".into())])
        );
    }

    #[derive(Serialize, Deserialize)]
    struct Named {
        a: u32,
        b: f64,
    }

    #[derive(Serialize, Deserialize)]
    struct Newtype(u64);

    #[derive(Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derive_handles_workspace_shapes() {
        let n = Named { a: 1, b: 2.5 };
        assert_eq!(
            n.to_json_value(),
            Value::Object(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::Float(2.5)),
            ])
        );
        assert_eq!(Newtype(9).to_json_value(), Value::UInt(9));
        assert_eq!(Kind::Alpha.to_json_value(), Value::String("Alpha".into()));
        assert_eq!(Kind::Beta.to_json_value(), Value::String("Beta".into()));
    }
}
