//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! No `syn`/`quote` are available offline, so the derive input is parsed
//! directly from the `proc_macro` token stream. Supported shapes — the
//! only ones this workspace derives on — are:
//!
//! * structs with named fields → JSON object, field order preserved;
//! * tuple structs: one field → the inner value (newtype convention),
//!   several → JSON array;
//! * enums whose variants are all unit variants → JSON string of the
//!   variant name (serde's external tagging for unit variants).
//!
//! Generic types and data-carrying enum variants are rejected with a
//! compile-time panic naming the offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive input.
enum Shape {
    /// Named-field struct with its field names.
    Struct(Vec<String>),
    /// Tuple struct with its field count.
    Tuple(usize),
    /// Enum with its unit-variant names.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips one `#[...]` attribute if present at `tokens[i]`; returns the new
/// index.
fn skip_attribute(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '#' {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Bracket {
                    return i + 1;
                }
            }
            panic!("serde_derive: malformed attribute");
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let next = skip_attribute(&tokens, i);
        if next == i {
            break;
        }
        i = next;
    }
    // Visibility: `pub` with optional `(...)`.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}`"),
    };
    Input { name, shape }
}

/// Extracts field names from a named-field struct body, tolerating
/// attributes, visibility, and generic types in field positions.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        loop {
            let next = skip_attribute(&tokens, i);
            if next == i {
                break;
            }
            i = next;
        }
        if i >= tokens.len() {
            break;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        // Skip the type: advance to the next comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut angle: i32 = 0;
    let mut pending = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    count + usize::from(pending)
}

/// Extracts variant names from an enum body, asserting every variant is a
/// unit variant (optionally with a discriminant).
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        loop {
            let next = skip_attribute(&tokens, i);
            if next == i {
                break;
            }
            i = next;
        }
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                panic!("serde_derive: expected variant name in `{enum_name}`, found {other:?}")
            }
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(variant);
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip the discriminant expression up to the next comma.
                i += 1;
                while i < tokens.len() {
                    if let TokenTree::Punct(q) = &tokens[i] {
                        if q.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push(variant);
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive (vendored): enum `{enum_name}` has a data-carrying variant \
                 `{variant}`, which is not supported"
            ),
            other => panic!("serde_derive: unexpected token after variant `{variant}`: {other:?}"),
        }
    }
    variants
}

fn serialize_impl(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!("::serde::Value::String(::std::string::String::from(match self {{ {arms} }}))")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Derives the vendored `serde::Serialize` (JSON-value lowering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    serialize_impl(&parsed)
        .parse()
        .expect("serde_derive: generated impl must parse")
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    format!("impl ::serde::Deserialize for {} {{}}", parsed.name)
        .parse()
        .expect("serde_derive: generated impl must parse")
}
