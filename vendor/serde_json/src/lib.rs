//! Offline vendored `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text. Only the serialization surface the workspace uses
//! ([`to_string`], [`to_string_pretty`]) is provided.

pub use serde::Value;

/// Serialization error. Rendering a [`Value`] tree cannot actually fail,
/// so this type exists only to satisfy `Result`-shaped call sites.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; upstream serde_json errors, we degrade
        // to null so archival reports never abort mid-experiment.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{:.1}", x));
    } else {
        out.push_str(&format!("{}", x));
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (open_sep, close_sep, item_sep) = match indent {
        Some(w) => (
            format!("\n{}", " ".repeat(w * (depth + 1))),
            format!("\n{}", " ".repeat(w * depth)),
            format!(",\n{}", " ".repeat(w * (depth + 1))),
        ),
        None => (String::new(), String::new(), ",".to_string()),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => render_float(*x, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            out.push_str(&open_sep);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(&item_sep);
                }
                render(item, indent, depth + 1, out);
            }
            out.push_str(&close_sep);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            out.push_str(&open_sep);
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(&item_sep);
                }
                escape_into(k, out);
                out.push_str(": ");
                render(v, indent, depth + 1, out);
            }
            out.push_str(&close_sep);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a": -3,"b": [true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("x".into(), Value::Array(vec![Value::UInt(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"x\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_render_as_valid_json() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }
}
