//! Attack gauntlet: every attacker from the paper's threat model, thrown
//! at one PIANO deployment.
//!
//! ```text
//! cargo run --release --example attack_gauntlet
//! ```
//!
//! Scenario: the user left their phone on a desk and went to lunch (the
//! vouching watch is 6 m away — Bluetooth still connected, acoustically
//! out of reach). An attacker at the phone tries, in order: a zero-effort
//! attempt, guessing-based replay with flanking emitters, and
//! all-frequency spoofing at three power levels (the paper's Sec. V case
//! analysis).

use piano::attacks::{run_trials, AttackKind};
use piano::prelude::*;

fn main() {
    let env = Environment::office();
    let vouch_distance_m = 6.0;
    let trials = 20;

    println!("user away: vouching device {vouch_distance_m} m from the phone");
    println!("running {trials} trials per attack…\n");

    let batches = [
        ("zero-effort", AttackKind::ZeroEffort),
        ("guessing replay", AttackKind::GuessingReplay),
        (
            "all-freq, loud (P_a ≥ α·R_f)",
            AttackKind::AllFrequency {
                tone_amplitude: 8_000.0,
            },
        ),
        (
            "all-freq, mid (β < P_a < α·R_f)",
            AttackKind::AllFrequency {
                tone_amplitude: 1_000.0,
            },
        ),
        (
            "all-freq, quiet (P_a ≤ β)",
            AttackKind::AllFrequency {
                tone_amplitude: 50.0,
            },
        ),
    ];

    let mut total_successes = 0;
    for (label, kind) in batches {
        let stats = run_trials(kind, &env, vouch_distance_m, trials, 0xC0FFEE);
        total_successes += stats.successes;
        let reasons: Vec<String> = stats
            .denial_reasons
            .iter()
            .map(|(reason, count)| format!("{reason}×{count}"))
            .collect();
        println!(
            "  {label:36} {:>2}/{} succeeded   denials: {}",
            stats.successes,
            stats.trials,
            reasons.join(", ")
        );
    }

    println!(
        "\ntotal attacker successes: {total_successes} (paper Sec. VI-E: 0 in 100+100 trials)"
    );
    println!(
        "single-guess probability at N=30 (uniform subsets): {:.2e}",
        piano::attacks::analysis::collision_probability(SignalSampler::UniformSubset, 30)
    );
}
