//! Multi-user office: three people authenticate at overlapping times
//! (paper Sec. VI-B2 / Fig. 2a).
//!
//! ```text
//! cargo run --release --example multi_user_office
//! ```
//!
//! Two other PIANO pairs play their own randomized reference signals while
//! we measure ours. Frequency randomization keeps the sessions from
//! confusing each other; heavy overlaps occasionally trip the sanity
//! checks and the trial reports "signal absent" (the paper saw 3 of 40).

use piano::eval::trials::{run_trials, TrialSetup, TrialStats};
use piano::prelude::*;

fn main() {
    let trials = 10;
    println!("three concurrent PIANO users in a shared office; {trials} trials per distance\n");
    println!(
        "{:>12} {:>10} {:>10} {:>8}",
        "distance", "MAE", "std", "absent"
    );

    let mut total_absent = 0;
    let mut total = 0;
    for (i, d) in [0.5, 1.0, 1.5, 2.0].into_iter().enumerate() {
        let setup =
            TrialSetup::new(Environment::office(), d, 0x0FF1CE + i as u64).with_interferers(2);
        let outcomes = run_trials(&setup, trials);
        let stats = TrialStats::of(&outcomes);
        total_absent += stats.absent;
        total += outcomes.len();
        println!(
            "{:>10.1} m {:>8.1} cm {:>8.1} cm {:>5}/{}",
            d,
            stats.mean_abs_error_m * 100.0,
            stats.error_std_m * 100.0,
            stats.absent,
            trials,
        );
    }
    println!(
        "\noverlap-suppressed trials: {total_absent}/{total} (paper: 3/40 — rare, by design: \
         overlapping signals fail the β sanity check rather than corrupt the estimate)"
    );
}
