//! Fleet-scale wire ingestion over **real endpoints**: hundreds of
//! client feeds and one gateway server moving framed, codec-compressed
//! audio through actual byte streams.
//!
//! ```text
//! cargo run --release --example fleet_ingest            # 200 feeds, in-memory
//! PIANO_FLEET_FEEDS=500 cargo run --release --example fleet_ingest
//! PIANO_WIRE_CODEC=off  cargo run --release --example fleet_ingest
//! PIANO_NET_TCP=1       cargo run --release --example fleet_ingest   # loopback sockets
//! PIANO_SCAN_WORKERS=4  cargo run --release --example fleet_ingest
//! PIANO_NET_FAULT_SEED=0xFA17 cargo run --release --example fleet_ingest  # chaos mode
//! cargo run --release --example fleet_ingest -- --faults             # chaos, default seed
//! PIANO_NET_REACTOR=1   cargo run --release --example fleet_ingest   # readiness reactor
//! PIANO_NET_REACTOR=1 PIANO_NET_FAULT_SEED=0xFA17 \
//!                       cargo run --release --example fleet_ingest   # reactor + chaos
//! PIANO_NET_RECHALLENGE=1 \
//!                       cargo run --release --example fleet_ingest   # standing rounds
//! ```
//!
//! The scenario: a gateway authenticates every user in a building at
//! once. Each user's *thin* vouching wearable cannot run Algorithm 1
//! itself, so it connects to the gateway (`FeedHandle`), negotiates the
//! audio codec (`PIANO_WIRE_CODEC`, default i16-delta — ≈5× fewer wire
//! bytes), receives the Step II challenge, and streams its quantized
//! microphone recording as length-prefixed batches, pausing on `Busy`
//! and resuming on `Credit`. The gateway (`ServerLoop`) runs one
//! connection thread per feed — `FrameReader` → `IngestFeed` → voucher
//! session — and routes every Step V report into one shared
//! `AuthService`. The gateway's own microphone carries every session's
//! reference signals; ONE scan pass over it serves all sessions, sharded
//! across the service's `ScanDriver` pool, after which each connection
//! delivers its verdict back over its own stream.
//!
//! Transport: a deterministic in-memory duplex by default; set
//! `PIANO_NET_TCP=1` to run the same stack over loopback TCP sockets
//! (falls back to in-memory where binding 127.0.0.1 fails).
//!
//! **Reactor mode** (`PIANO_NET_REACTOR=1`): the gateway runs the
//! readiness-reactor [`ReactorServer`] instead of thread-per-connection
//! — ONE event-loop thread drives every connection's state machine off
//! `try_read`, with service state sharded per scan group
//! (`PIANO_NET_SHARDS`, default 4). Composes with chaos mode: the same
//! seeded faults, redials, and resumes run against the reactor, and the
//! run prints the measured per-connection resident footprint.
//!
//! **Chaos mode** (`PIANO_NET_FAULT_SEED=<seed>` or `--faults`): every
//! client link is wrapped in a seeded [`FaultyTransport`] — arbitrary
//! read/write segmentation and latency on all feeds, plus mid-stream
//! disconnect cuts (write-side and read-side) on half of them. Clients
//! run behind [`ResilientFeed`], so cut links redial with jittered
//! backoff and resume their wire session; the run asserts the fleet
//! still reaches 100% granted verdicts and prints the per-cause drop
//! and resilience counters.
//!
//! **Re-challenge mode** (`PIANO_NET_RECHALLENGE=1`): granted feeds
//! stay connected after their verdict and the gateway re-verifies the
//! whole standing fleet over those live connections — two wire
//! re-challenge rounds (`Recheck` → `RecheckAudio` → `RecheckVerdict`),
//! each with fresh signals and a fresh hub scan, before `end_standing`
//! closes the fleet. Composes with both gateways and with chaos mode
//! (cut feeds answer their rounds on the resumed link).
//!
//! A `ContinuousScheduler` epilogue re-verifies a handful of the
//! authenticated sessions by deadline off the same service.

use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::wire::WireCodec;
use piano::net::fixtures::{
    feed_recording, hub_recording, hub_recording_for, hub_recording_reactor, hub_recording_sharded,
    recheck_recording, FEED_REC_LEN,
};
use piano::net::transport::{memory_hub, tcp_loopback, Listener, MemoryStream, Transport};
use piano::net::{
    FaultPlan, FaultyTransport, FeedHandle, FeedStats, ReactorServer, ResilientFeed, RetryPolicy,
    ServerConfig, ServerLoop,
};
use piano::prelude::*;

/// Wire re-challenge rounds the standing epilogue runs
/// (`PIANO_NET_RECHALLENGE=1`).
const RECHECK_ROUNDS: u32 = 2;

/// Generous bound for fleet-scale waits (chaos latency included).
const FLEET_WAIT: Duration = Duration::from_secs(120);

fn main() {
    let feeds: usize = std::env::var("PIANO_FLEET_FEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let codec = WireCodec::from_env();
    let rechallenge = std::env::var("PIANO_NET_RECHALLENGE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let fault_seed = std::env::var("PIANO_NET_FAULT_SEED")
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .or_else(|| std::env::args().any(|a| a == "--faults").then_some(0xFA17));
    let use_reactor = std::env::var("PIANO_NET_REACTOR")
        .map(|v| v == "1")
        .unwrap_or(false);
    if use_reactor {
        run_reactor_fleet(fault_seed, feeds, codec, rechallenge);
        return;
    }
    if let Some(seed) = fault_seed {
        run_faulted_fleet(seed, feeds, codec, rechallenge);
        return;
    }
    let server = ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(0xF1EE7),
        ServerConfig {
            standing: rechallenge,
            ..ServerConfig::default()
        },
    );
    let action = server.with_service(|s| s.config().action.clone());
    println!(
        "fleet gateway: {feeds} feeds, codec {codec:?}, scan driver with {} worker(s)",
        server.with_service(|s| s.scan_driver().workers())
    );

    // Pick the transport: loopback TCP when asked for (and available),
    // the in-memory duplex otherwise.
    let use_tcp = std::env::var("PIANO_NET_TCP")
        .map(|v| v == "1")
        .unwrap_or(false);
    let t_start = Instant::now();
    let (client_threads, server_threads) = if use_tcp {
        match tcp_loopback() {
            Some((listener, addr)) => {
                println!("transport: loopback TCP on {addr}");
                spawn_fleet(
                    &server,
                    &action,
                    codec,
                    feeds,
                    rechallenge,
                    listener,
                    move || std::net::TcpStream::connect(addr).expect("connect loopback"),
                )
            }
            None => {
                println!("transport: loopback TCP unavailable, using in-memory duplex");
                let (connector, listener) = memory_hub();
                spawn_fleet(
                    &server,
                    &action,
                    codec,
                    feeds,
                    rechallenge,
                    listener,
                    move || connector.connect().expect("memory hub open"),
                )
            }
        }
    } else {
        println!("transport: in-memory duplex");
        let (connector, listener) = memory_hub();
        spawn_fleet(
            &server,
            &action,
            codec,
            feeds,
            rechallenge,
            listener,
            move || connector.connect().expect("memory hub open"),
        )
    };
    println!(
        "opened {} sessions in one scan group ({} signatures, one coarse pass per tick)",
        feeds,
        feeds * 2
    );

    // Wait until every feed streamed its recording and reported (a
    // dropped feed counts toward the wait, so this cannot hang), then
    // scan the gateway's own microphone once for the whole fleet.
    let reported = server.wait_for_reports(feeds);
    assert_eq!(reported, feeds, "every feed reports");
    let hub = hub_recording(&server);
    let decided = server.scan_and_decide(&hub, 16_384);
    assert_eq!(decided, feeds, "every session decides");
    if rechallenge {
        drive_recheck_rounds(&server, feeds);
    }

    // Every client received the verdict the service recorded.
    let mut granted = 0usize;
    for t in client_threads {
        match t.join().expect("client thread") {
            AuthDecision::Granted { distance_m } => {
                assert!((distance_m - 0.5).abs() < 0.1, "distance {distance_m} m");
                granted += 1;
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }
    for t in server_threads {
        assert!(t.join().expect("server thread").is_some(), "no drops");
    }
    let elapsed = t_start.elapsed().as_secs_f64();

    let stats = server.stats();
    println!("\n--- service stats ---\n{stats}");
    assert!(
        stats.busy_replies > 0,
        "the sweep must exercise the Busy path"
    );
    assert_eq!(stats.busy_replies, stats.credit_replies);
    assert_eq!(stats.connections_dropped, 0);
    if codec == WireCodec::I16Delta {
        assert!(
            stats.compression_ratio() >= 3.5,
            "codec ratio {:.2}",
            stats.compression_ratio()
        );
    }
    println!(
        "\n{granted}/{feeds} sessions granted at ≈0.50 m in {elapsed:.2} s \
         ({:.0} session·samples/s)",
        (feeds * hub.len()) as f64 / elapsed
    );
    println!(
        "audio scanned: {:.1} s hub + {:.1} s per feed = {:.1} M samples total",
        hub.len() as f64 / 44_100.0,
        FEED_REC_LEN as f64 / 44_100.0,
        (hub.len() + feeds * FEED_REC_LEN) as f64 / 1e6
    );

    // Epilogue: continuous re-verification by deadline. A few of the
    // authenticated users stay in the building; the scheduler pops due
    // sessions earliest-deadline-first against the same service.
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0117);
    let mut sched = ContinuousScheduler::new();
    let mut pairs = Vec::new();
    server.with_service(|service| {
        for k in 0..4u64 {
            let a = Device::phone(100 + k, Position::ORIGIN, 900 + k);
            let v = Device::phone(200 + k, Position::new(0.5, 0.0, 0.0), 950 + k);
            service.register(&a, &v, &mut rng);
            let key = sched.add(ContinuousSession::open(
                SessionPolicy {
                    denials_to_lock: 2,
                    recheck_period_s: 20.0 + 10.0 * k as f64,
                },
                0.0,
            ));
            pairs.push((key, a, v));
        }
    });
    for round in 0..2u64 {
        let now = 50.0 * (round + 1) as f64;
        let outcomes = server
            .with_service(|service| {
                sched.run_due(now, |key, session| {
                    let (idx, (_, a, v)) = pairs
                        .iter()
                        .enumerate()
                        .find(|(_, (k, _, _))| *k == key)
                        .expect("known key");
                    let mut field =
                        AcousticField::new(Environment::office(), 7_000 + idx as u64 * 10 + round);
                    session.recheck_via(service, &mut field, a, v, now, &mut rng)
                })
            })
            .expect("scheduled sessions stay known to the scheduler");
        println!(
            "recheck round {round} at t={now}s: {} due sessions re-verified",
            outcomes.len()
        );
    }
    println!("\nfleet ingested over the wire, authenticated, and re-verified off one service");
}

/// Reactor mode: the same fleet against the readiness-reactor gateway.
/// ONE event-loop thread owns every connection's state machine; the
/// service is sharded per scan group (`PIANO_NET_SHARDS`, default 4).
/// With a fault seed the chaos schedule from [`run_faulted_fleet`] runs
/// unchanged — cuts, redials, and resumes all land on the reactor — and
/// the run must still end with every verdict granted.
fn run_reactor_fleet(fault_seed: Option<u64>, feeds: usize, codec: WireCodec, rechallenge: bool) {
    let shards: usize = std::env::var("PIANO_NET_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let server = ReactorServer::new(
        ShardedAuthService::new(PianoConfig::with_threshold(1.0), shards),
        ChaCha8Rng::seed_from_u64(0xF1EE7),
        ServerConfig {
            resume_window: Duration::from_secs(10),
            standing: rechallenge,
            ..ServerConfig::default()
        },
    );
    let action = server
        .service()
        .with_default(|s| s.config().action.clone())
        .expect("shard 0 exists");
    println!(
        "fleet gateway (REACTOR{}): {feeds} feeds, codec {codec:?}, {shards} service shard(s), \
         {} scan worker(s) per shard",
        if fault_seed.is_some() { " + CHAOS" } else { "" },
        server
            .service()
            .with_default(|s| s.scan_driver().workers())
            .expect("shard 0 exists"),
    );
    println!("transport: in-memory duplex into one readiness-reactor thread");

    let loop_thread = server.start();
    let (connector, mut listener) = memory_hub();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            while let Ok(conn) = listener.accept_conn() {
                server.register(conn);
            }
        });
    }

    let t_start = Instant::now();
    // Sequential handshakes keep session randomness bound to feed order.
    let clients: Vec<std::thread::JoinHandle<(AuthDecision, Option<FeedStats>)>> =
        match fault_seed {
            None => {
                let mut handles = Vec::with_capacity(feeds);
                for _ in 0..feeds {
                    let t = connector.connect().expect("memory hub open");
                    handles.push(FeedHandle::connect(t, &[codec]).expect("handshake"));
                }
                handles
                    .into_iter()
                    .map(|mut feed| {
                        let action = action.clone();
                        std::thread::spawn(move || {
                            let rec = feed_recording(feed.challenge(), &action);
                            feed.send_recording(&rec, 1_024, 4).expect("stream");
                            feed.finish().expect("stream end");
                            let decision = feed.await_decision().expect("verdict");
                            if rechallenge && decision.is_granted() {
                                answer_recheck_rounds(&mut feed, &action);
                            }
                            (decision, None)
                        })
                    })
                    .collect()
            }
            Some(seed) => {
                println!(
                "chaos schedule: fault seed {seed:#x}, {} feed(s) scheduled for mid-stream cuts",
                feeds - feeds / 2
            );
                let mut fleet = Vec::with_capacity(feeds);
                for i in 0..feeds {
                    let fseed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let plan = match i % 4 {
                        0 => FaultPlan::clean(fseed)
                            .with_write_disconnect(4_000 + 512 * (i as u64 % 7)),
                        1 => FaultPlan::clean(fseed), // read-side cut scripted below
                        _ => FaultPlan::chaos(fseed), // segmentation + latency, no cuts
                    };
                    let t = FaultyTransport::new(connector.connect().expect("hub open"), plan);
                    let mut handle = FeedHandle::connect(t, &[codec]).expect("faulty handshake");
                    if i % 4 == 1 {
                        let seen = handle.transport_mut().read_bytes();
                        handle
                            .transport_mut()
                            .set_read_disconnect(seen + 10 + (i as u64 % 40));
                    }
                    let connector = connector.clone();
                    let mut redials = 0u64;
                    let dial = move || -> std::io::Result<FaultyTransport<MemoryStream>> {
                        redials += 1;
                        Ok(FaultyTransport::new(
                            connector.connect()?,
                            FaultPlan::clean(fseed ^ redials),
                        ))
                    };
                    fleet.push(ResilientFeed::adopt(
                        handle,
                        dial,
                        RetryPolicy {
                            jitter_seed: fseed,
                            ..RetryPolicy::default()
                        },
                    ));
                }
                fleet
                    .into_iter()
                    .map(|mut feed| {
                        let action = action.clone();
                        std::thread::spawn(move || {
                            let rec = feed_recording(feed.handle().challenge(), &action);
                            feed.send_recording(&rec, 1_024, 4)
                                .expect("stream survives faults");
                            let decision = feed
                                .finish_and_await(Duration::from_secs(120))
                                .expect("verdict survives faults");
                            if rechallenge && decision.is_granted() {
                                // Rounds run on the live (possibly
                                // resumed) link, past the scripted cuts.
                                answer_recheck_rounds(feed.handle_mut(), &action);
                            }
                            (decision, Some(feed.stats()))
                        })
                    })
                    .collect()
            }
        };

    let reported = server
        .wait_for_reports_timeout(feeds, Duration::from_secs(120))
        .expect("fleet reports");
    assert_eq!(reported, feeds, "every feed reports");
    // Hand the recording to the reactor by refcount, not by copy.
    let hub: std::sync::Arc<[f64]> = hub_recording_reactor(&server).into();
    let decided = server.scan_and_decide_arc(hub, 16_384);
    assert_eq!(decided, feeds, "every session decides");
    if rechallenge {
        drive_recheck_rounds_reactor(&server, feeds);
    }

    let mut granted = 0usize;
    let (mut retries, mut resumes, mut backoff) = (0u64, 0u64, Duration::ZERO);
    for t in clients {
        let (decision, s) = t.join().expect("client thread");
        match decision {
            AuthDecision::Granted { distance_m } => {
                assert!((distance_m - 0.5).abs() < 0.1, "distance {distance_m} m");
                granted += 1;
            }
            other => panic!("expected grant, got {other:?}"),
        }
        if let Some(s) = s {
            retries += s.retries;
            resumes += s.resumes;
            backoff += s.backoff_total;
        }
    }
    let elapsed = t_start.elapsed().as_secs_f64();
    server.shutdown();
    loop_thread.join().expect("reactor thread");

    let stats = server.stats();
    println!("\n--- service stats ---\n{stats}");
    assert_eq!(stats.busy_replies, stats.credit_replies);
    if codec == WireCodec::I16Delta {
        assert!(
            stats.compression_ratio() >= 3.5,
            "codec ratio {:.2}",
            stats.compression_ratio()
        );
    }
    if fault_seed.is_some() {
        println!(
            "client resilience: {retries} failed redials, {resumes} resumes, \
             {:.1} ms total backoff",
            backoff.as_secs_f64() * 1e3
        );
        let cut_feeds = feeds.div_ceil(4) + (feeds + 2) / 4; // i%4 == 0 and == 1
        assert!(
            stats.resumes as usize >= cut_feeds,
            "every cut feed resumed: {} < {cut_feeds}",
            stats.resumes
        );
        assert!(stats.connections_suspended >= 1, "cuts suspended streams");
        assert_eq!(
            stats.drops.total(),
            stats.connections_dropped,
            "per-cause drops account for every drop"
        );
    } else {
        assert_eq!(stats.connections_dropped, 0);
    }
    println!(
        "\n{granted}/{feeds} sessions granted at ≈0.50 m in {elapsed:.2} s on ONE reactor \
         thread (peak {} B resident per connection)",
        server.peak_conn_bytes()
    );
}

/// Chaos mode: the same fleet over seeded faulty links. Half the feeds
/// suffer a mid-stream disconnect (alternating write-side and read-side
/// cuts); the rest run under segmentation/latency chaos. The server
/// keeps a 10 s resume window, clients redial through `ResilientFeed`,
/// and the run must still end with every verdict granted.
fn run_faulted_fleet(seed: u64, feeds: usize, codec: WireCodec, rechallenge: bool) {
    let server = ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(0xF1EE7),
        ServerConfig {
            resume_window: Duration::from_secs(10),
            standing: rechallenge,
            ..ServerConfig::default()
        },
    );
    let action = server.with_service(|s| s.config().action.clone());
    println!(
        "fleet gateway (CHAOS): {feeds} feeds, codec {codec:?}, fault seed {seed:#x}, \
         {} feed(s) scheduled for mid-stream cuts",
        feeds - feeds / 2
    );
    println!("transport: in-memory duplex wrapped in seeded FaultyTransport");

    // Resumed connections dial back at unpredictable times, so the
    // gateway accepts in a loop instead of a fixed count.
    let (connector, mut listener) = memory_hub();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            while let Ok(conn) = listener.accept_conn() {
                let s = server.clone();
                std::thread::spawn(move || {
                    let _ = s.serve(conn);
                });
            }
        });
    }

    let t_start = Instant::now();
    // Sequential handshakes keep session randomness bound to feed order;
    // cuts are scripted to land only in the streaming/verdict phase.
    let mut fleet = Vec::with_capacity(feeds);
    for i in 0..feeds {
        let fseed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan = match i % 4 {
            0 => FaultPlan::clean(fseed).with_write_disconnect(4_000 + 512 * (i as u64 % 7)),
            1 => FaultPlan::clean(fseed), // read-side cut scripted below
            _ => FaultPlan::chaos(fseed), // segmentation + latency, no cuts
        };
        let t = FaultyTransport::new(connector.connect().expect("hub open"), plan);
        let mut handle = FeedHandle::connect(t, &[codec]).expect("faulty handshake");
        if i % 4 == 1 {
            let seen = handle.transport_mut().read_bytes();
            handle
                .transport_mut()
                .set_read_disconnect(seen + 10 + (i as u64 % 40));
        }
        let connector = connector.clone();
        let mut redials = 0u64;
        let dial = move || -> std::io::Result<FaultyTransport<MemoryStream>> {
            redials += 1;
            Ok(FaultyTransport::new(
                connector.connect()?,
                FaultPlan::clean(fseed ^ redials),
            ))
        };
        fleet.push(ResilientFeed::adopt(
            handle,
            dial,
            RetryPolicy {
                jitter_seed: fseed,
                ..RetryPolicy::default()
            },
        ));
    }

    let clients: Vec<_> = fleet
        .into_iter()
        .map(|mut feed| {
            let action = action.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.handle().challenge(), &action);
                feed.send_recording(&rec, 1_024, 4)
                    .expect("stream survives faults");
                let decision = feed
                    .finish_and_await(Duration::from_secs(120))
                    .expect("verdict survives faults");
                if rechallenge && decision.is_granted() {
                    // Rounds run on the live (possibly resumed) link,
                    // past the scripted cuts.
                    answer_recheck_rounds(feed.handle_mut(), &action);
                }
                (decision, feed.stats())
            })
        })
        .collect();

    let reported = server
        .wait_for_reports_timeout(feeds, Duration::from_secs(120))
        .expect("fleet reports despite faults");
    assert_eq!(reported, feeds, "every feed reports");
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), feeds);
    if rechallenge {
        drive_recheck_rounds(&server, feeds);
    }

    let mut granted = 0usize;
    let (mut retries, mut resumes, mut backoff) = (0u64, 0u64, Duration::ZERO);
    for t in clients {
        let (decision, s) = t.join().expect("client thread");
        assert!(decision.is_granted(), "chaos-run verdict {decision:?}");
        granted += 1;
        retries += s.retries;
        resumes += s.resumes;
        backoff += s.backoff_total;
    }
    let elapsed = t_start.elapsed().as_secs_f64();

    let stats = server.stats();
    println!("\n--- service stats ---\n{stats}");
    println!(
        "client resilience: {retries} failed redials, {resumes} resumes, \
         {:.1} ms total backoff",
        backoff.as_secs_f64() * 1e3
    );
    let cut_feeds = feeds.div_ceil(4) + (feeds + 2) / 4; // i%4 == 0 and == 1
    assert!(
        stats.resumes as usize >= cut_feeds,
        "every cut feed resumed: {} < {cut_feeds}",
        stats.resumes
    );
    assert!(stats.connections_suspended >= 1, "cuts suspended streams");
    assert_eq!(
        stats.drops.total(),
        stats.connections_dropped,
        "per-cause drops account for every drop"
    );
    println!(
        "\n{granted}/{feeds} sessions granted at ≈0.50 m in {elapsed:.2} s \
         despite {} mid-stream cuts ({} server-acked resumes)",
        cut_feeds, stats.resumes
    );
}

/// Client half of the re-challenge epilogue: answers [`RECHECK_ROUNDS`]
/// wire re-check rounds with the granted 0.50 m geometry, then expects
/// `end_standing` to close the connection.
fn answer_recheck_rounds<T: Transport>(feed: &mut FeedHandle<T>, action: &ActionConfig) {
    for round in 1..=RECHECK_ROUNDS {
        let recheck = feed.await_recheck(FLEET_WAIT).expect("re-challenge");
        let rec = recheck_recording(&recheck, action);
        feed.answer_recheck(round, &rec, 1_024)
            .expect("round answer");
        let verdict = feed
            .await_recheck_verdict(round, FLEET_WAIT)
            .expect("round verdict");
        assert!(
            verdict.is_granted(),
            "standing round {round} verdict {verdict:?}"
        );
    }
    assert!(
        feed.await_recheck(FLEET_WAIT).is_err(),
        "standing service ends with a close"
    );
}

/// Host half for the threaded gateway: every round re-challenges the
/// whole standing fleet over its live connections (fresh per-round
/// sessions, fresh signals) and scans one fresh hub take.
fn drive_recheck_rounds(server: &ServerLoop, feeds: usize) {
    let standing = server
        .wait_for_standing(feeds, FLEET_WAIT)
        .expect("granted feeds park standing");
    assert_eq!(standing, feeds, "every granted feed parks standing");
    println!("\nre-challenge epilogue: {feeds} standing feeds, {RECHECK_ROUNDS} wire rounds");
    for round in 1..=u64::from(RECHECK_ROUNDS) {
        server.begin_recheck_round();
        let ready = server
            .wait_for_recheck_reports(feeds, FLEET_WAIT)
            .expect("round reports");
        assert_eq!(ready, feeds, "round {round}: every standing feed answers");
        let ids = server.recheck_session_ids();
        let hub = server.with_service(|s| hub_recording_for(s, &ids));
        let decided = server.recheck_scan_and_decide(&hub, 16_384);
        assert_eq!(decided, feeds, "round {round}: every re-check decides");
        println!("  round {round}: {decided}/{feeds} standing sessions re-verified");
    }
    server.end_standing();
}

/// [`drive_recheck_rounds`] against the reactor gateway.
fn drive_recheck_rounds_reactor(server: &ReactorServer, feeds: usize) {
    let standing = server
        .wait_for_standing(feeds, FLEET_WAIT)
        .expect("granted feeds park standing");
    assert_eq!(standing, feeds, "every granted feed parks standing");
    println!("\nre-challenge epilogue: {feeds} standing feeds, {RECHECK_ROUNDS} wire rounds");
    for round in 1..=u64::from(RECHECK_ROUNDS) {
        server.begin_recheck_round();
        let ready = server
            .wait_for_recheck_reports(feeds, FLEET_WAIT)
            .expect("round reports");
        assert_eq!(ready, feeds, "round {round}: every standing feed answers");
        let ids = server.recheck_session_ids();
        let hub: std::sync::Arc<[f64]> = hub_recording_sharded(server.service(), &ids).into();
        let decided = server.recheck_scan_and_decide_arc(hub, 16_384);
        assert_eq!(decided, feeds, "round {round}: every re-check decides");
        println!("  round {round}: {decided}/{feeds} standing sessions re-verified");
    }
    server.end_standing();
}

/// Connects `feeds` clients (handshakes in order, so the run is
/// reproducible), spawns one server thread per accepted connection and
/// one client thread per feed, and returns both handle sets.
#[allow(clippy::type_complexity)]
fn spawn_fleet<L: Listener + 'static>(
    server: &ServerLoop,
    action: &ActionConfig,
    codec: WireCodec,
    feeds: usize,
    rechallenge: bool,
    mut listener: L,
    connect: impl Fn() -> L::Conn,
) -> (
    Vec<std::thread::JoinHandle<AuthDecision>>,
    Vec<std::thread::JoinHandle<Option<(SessionId, AuthDecision)>>>,
) {
    let mut handles = Vec::with_capacity(feeds);
    let mut server_threads = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let transport = connect();
        let conn = listener.accept_conn().expect("accept");
        let server_clone = server.clone();
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        handles.push(FeedHandle::connect(transport, &[codec]).expect("handshake"));
    }
    let client_threads = handles
        .into_iter()
        .map(|mut feed| {
            let action = action.clone();
            std::thread::spawn(move || {
                // The wearable reconstructs both signals from the Step II
                // challenge, "hears" them 5 871 samples apart (0.50 m),
                // and streams what its 16-bit mic captured.
                let rec = feed_recording(feed.challenge(), &action);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                let decision = feed.await_decision().expect("verdict");
                if rechallenge && decision.is_granted() {
                    answer_recheck_rounds(&mut feed, &action);
                }
                decision
            })
        })
        .collect();
    (client_threads, server_threads)
}
