//! Fleet-scale wire ingestion: hundreds of interleaved remote feeds, one
//! `AuthService`, a thread-pool scan driver, and watermark backpressure.
//!
//! ```text
//! cargo run --release --example fleet_ingest          # 200 feeds
//! PIANO_FLEET_FEEDS=500 cargo run --release --example fleet_ingest
//! PIANO_SCAN_WORKERS=4  cargo run --release --example fleet_ingest
//! ```
//!
//! The scenario: a gateway authenticates every user in a building at
//! once. Each user's *thin* vouching wearable cannot run Algorithm 1
//! itself, so it streams its microphone over the network as
//! length-prefixed `AudioBatch` frames; the gateway reassembles each
//! feed with a `FrameReader`, accounts it against a per-feed
//! `IngestFeed` high-water mark (answering overruns with `Busy` and
//! drained backlogs with `Credit`), and drives one sans-IO voucher
//! session per feed. The gateway's own microphone carries every
//! session's reference signals; ONE scan group spans all of them, and
//! the service's `ScanDriver` shards each tick's coarse windows across
//! its worker pool — bit-identical to the serial scan by construction.
//!
//! A `ContinuousScheduler` epilogue re-verifies a handful of the
//! authenticated sessions by deadline off the same service.

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::continuous::{ContinuousScheduler, ContinuousSession, SessionPolicy};
use piano::core::stream::AuthSession;
use piano::core::wire::{FrameReader, IngestFeed, Message};
use piano::prelude::*;

/// Samples between consecutive sessions' signals in the hub recording.
const STRIDE: usize = 12_288;
/// Per-feed voucher recording length.
const FEED_REC_LEN: usize = 16_384;
/// Per-feed buffered-sample high-water mark at the gateway.
const HIGH_WATER: usize = 6_000;
/// Samples the gateway scan drains from each feed per tick.
const DRAIN_PER_TICK: usize = 2_048;

fn main() {
    let feeds: usize = std::env::var("PIANO_FLEET_FEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1EE7);
    let cfg = PianoConfig::with_threshold(1.0);
    let mut service = AuthService::new(cfg);
    println!(
        "fleet gateway: {feeds} feeds, scan driver with {} worker(s)",
        service.scan_driver().workers()
    );

    // Open every session up front (a scan group's signature set is fixed
    // once audio flows), wire each challenge to its voucher session, and
    // lay the fleet's signals out in the shared hub recording.
    let t_start = Instant::now();
    let mut ids = Vec::with_capacity(feeds);
    let mut vouchers = Vec::with_capacity(feeds);
    let mut hub = vec![0.0f64; feeds * STRIDE + FEED_REC_LEN];
    let mut feed_recs = Vec::with_capacity(feeds);
    for i in 0..feeds {
        let id = service.open_session(false, &mut rng);
        let challenge = service.poll_transmit(id).expect("challenge queued");
        let mut voucher = AuthSession::voucher_with(Arc::clone(service.detector()));
        voucher.handle_message(challenge).expect("valid challenge");

        let wave_a = service
            .session(id)
            .and_then(|s| s.playback_waveform())
            .expect("authenticator knows S_A");
        let wave_v = voucher.playback_waveform().expect("voucher knows S_V");
        // Hub hears S_A then S_V 6 000 samples apart; the voucher hears
        // them 5 871 apart ⇒ d = ½·(6000−5871)/44100·343 ≈ 0.50 m.
        let base = i * STRIDE;
        embed(&mut hub, &wave_a, base + 2_000, 0.4);
        embed(&mut hub, &wave_v, base + 8_000, 0.3);
        let mut rec = vec![0.0f64; FEED_REC_LEN];
        embed(&mut rec, &wave_a, 2_000, 0.3);
        embed(&mut rec, &wave_v, 7_871, 0.4);

        ids.push(id);
        vouchers.push(voucher);
        feed_recs.push(rec);
    }
    println!(
        "opened {} sessions in one scan group ({} signatures, one coarse pass per tick)",
        ids.len(),
        ids.len() * 2
    );

    // Each wearable pre-frames its recording: batches of four 1 024-sample
    // chunks, length-prefixed. `Bytes` keeps the queued frames cheap to
    // hold per sender.
    let mut senders: Vec<Vec<Bytes>> = feed_recs
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let session = vouchers[i].session_id();
            let chunks: Vec<Vec<f64>> = rec.chunks(1_024).map(<[f64]>::to_vec).collect();
            chunks
                .chunks(4)
                .enumerate()
                .map(|(b, batch)| {
                    Bytes::from(
                        Message::AudioBatch {
                            session,
                            start_seq: (b * 4) as u32,
                            chunks: batch.to_vec(),
                        }
                        .encode_framed(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect();
    for s in &mut senders {
        s.reverse(); // pop() sends in order
    }

    // The gateway's ingest loop: every tick, each non-paused sender ships
    // one frame; the gateway reassembles, accounts, and drains a bounded
    // slice of each feed's backlog into its voucher session. Backpressure
    // does the pacing: senders outrun the drain rate, hit the high-water
    // mark, pause on Busy, resume on Credit.
    let mut readers: Vec<FrameReader> = (0..feeds).map(|_| FrameReader::new()).collect();
    let mut gates: Vec<IngestFeed> = vouchers
        .iter()
        .map(|v| IngestFeed::new(v.session_id(), HIGH_WATER))
        .collect();
    let mut paused = vec![false; feeds];
    let (mut busy_replies, mut credit_replies, mut ticks) = (0usize, 0usize, 0usize);
    let mut wire_bytes = 0usize;
    loop {
        let mut idle = true;
        for i in 0..feeds {
            if !paused[i] {
                if let Some(frame) = senders[i].pop() {
                    wire_bytes += frame.len();
                    readers[i].push(&frame);
                    idle = false;
                }
            }
            while let Some(msg) = readers[i].next_frame().expect("well-formed feed") {
                gates[i].accept(&msg).expect("contiguous feed");
            }
            let samples = gates[i].take_pending(DRAIN_PER_TICK);
            if !samples.is_empty() {
                let _ = vouchers[i].push_audio(&samples);
                idle = false;
            }
            while let Some(reply) = gates[i].poll_reply() {
                match reply {
                    Message::Busy { .. } => {
                        busy_replies += 1;
                        paused[i] = true;
                    }
                    Message::Credit { .. } => {
                        credit_replies += 1;
                        paused[i] = false;
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
        }
        ticks += 1;
        if idle {
            break;
        }
    }
    let peak = gates.iter().map(IngestFeed::peak_buffered).max().unwrap();
    println!(
        "ingested {feeds} interleaved feeds in {ticks} ticks \
         ({:.1} MiB framed wire audio)",
        wire_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "backpressure: {busy_replies} Busy / {credit_replies} Credit replies, \
         peak backlog {peak} samples (high water {HIGH_WATER})"
    );
    assert!(busy_replies > 0, "the sweep must exercise the Busy path");
    assert_eq!(busy_replies, credit_replies);

    // Every voucher concludes exactly and reports; reports route to the
    // service sessions.
    for (i, voucher) in vouchers.iter_mut().enumerate() {
        let _ = voucher.finish_audio();
        let report = voucher.poll_transmit().expect("report queued");
        service
            .handle_message(ids[i], report)
            .expect("report accepted");
    }

    // The gateway's own recording drives all sessions' scans: one shared
    // stream in ~0.37 s ticks, each tick's coarse windows sharded across
    // the driver's workers.
    for chunk in hub.chunks(16_384) {
        let _ = service.push_audio(chunk);
    }
    let _ = service.finish_audio();

    let mut granted = 0usize;
    for &id in &ids {
        match service.decision(id).expect("every session decides") {
            AuthDecision::Granted { distance_m } => {
                assert!(
                    (distance_m - 0.5).abs() < 0.1,
                    "session {id:?}: {distance_m} m"
                );
                granted += 1;
            }
            other => panic!("session {id:?}: expected grant, got {other:?}"),
        }
    }
    let elapsed = t_start.elapsed().as_secs_f64();
    let total_samples = hub.len() + feeds * FEED_REC_LEN;
    println!(
        "{granted}/{feeds} sessions granted at ≈0.50 m in {elapsed:.2} s \
         ({:.0} session·samples/s)",
        (feeds * hub.len()) as f64 / elapsed
    );
    println!(
        "audio scanned: {:.1} s hub + {:.1} s per feed = {:.1} M samples total",
        hub.len() as f64 / 44_100.0,
        FEED_REC_LEN as f64 / 44_100.0,
        total_samples as f64 / 1e6
    );

    // Epilogue: continuous re-verification by deadline. A few of the
    // authenticated users stay in the building; the scheduler pops due
    // sessions earliest-deadline-first against the same service.
    let mut sched = ContinuousScheduler::new();
    let mut pairs = Vec::new();
    for k in 0..4u64 {
        let a = Device::phone(100 + k, Position::ORIGIN, 900 + k);
        let v = Device::phone(200 + k, Position::new(0.5, 0.0, 0.0), 950 + k);
        service.register(&a, &v, &mut rng);
        let key = sched.add(ContinuousSession::open(
            SessionPolicy {
                denials_to_lock: 2,
                recheck_period_s: 20.0 + 10.0 * k as f64,
            },
            0.0,
        ));
        pairs.push((key, a, v));
    }
    for round in 0..2u64 {
        let now = 50.0 * (round + 1) as f64;
        let outcomes = sched.run_due(now, |key, session| {
            let (idx, (_, a, v)) = pairs
                .iter()
                .enumerate()
                .find(|(_, (k, _, _))| *k == key)
                .expect("known key");
            let mut field =
                AcousticField::new(Environment::office(), 7_000 + idx as u64 * 10 + round);
            session.recheck_via(&mut service, &mut field, a, v, now, &mut rng)
        });
        println!(
            "recheck round {round} at t={now}s: {} due sessions re-verified",
            outcomes.len()
        );
    }
    println!("\nfleet ingested, authenticated, and re-verified off one service");
}

/// Adds a scaled copy of `wave` into `rec` at `offset`.
fn embed(rec: &mut [f64], wave: &[f64], offset: usize, gain: f64) {
    for (i, &v) in wave.iter().enumerate() {
        rec[offset + i] += v * gain;
    }
}
