//! Smart-home scenario: one vouching wearable, several voice-powered IoT
//! devices around the house, walls included.
//!
//! ```text
//! cargo run --release --example smart_home
//! ```
//!
//! The paper's motivating setting (Sec. I): voice-controlled IoT devices
//! hold private data and must not obey whoever happens to speak near them.
//! Each device authenticates the user by acoustic proximity to their
//! wearable before accepting a command; a device in the *next room* denies
//! even though Bluetooth still reaches it through the wall.

use piano::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    // The user's smartwatch, worn in the living room.
    let watch = Device::phone(1, Position::new(0.0, 0.0, 0.0), 501);

    // Voice-powered devices around the home.
    let speaker = Device::phone(10, Position::new(0.8, 0.3, 0.0), 510); // living room
    let thermostat = Device::phone(11, Position::new(1.8, -0.5, 0.0), 511); // living room wall
    let health_hub = Device::phone(12, Position::new(3.5, 0.6, 0.0), 512); // kitchen (next room)

    let mut authenticator = AuthService::new(PianoConfig::with_threshold(2.0));
    for device in [&speaker, &thermostat, &health_hub] {
        authenticator.register(device, &watch, &mut rng);
    }

    // The home: moderate noise, and a wall at x = 2.6 m between living room
    // and kitchen.
    let home_with_wall = |seed: u64| {
        let mut field = AcousticField::new(Environment::home(), seed);
        field.add_wall(Wall::at_x(2.6));
        field
    };

    println!("user (watch) in the living room, threshold 2.0 m:\n");
    for (name, device, t) in [
        ("smart speaker   (0.9 m)", &speaker, 0.0),
        ("thermostat      (1.9 m)", &thermostat, 10.0),
        ("health hub      (3.6 m, behind wall)", &health_hub, 20.0),
    ] {
        let mut field = home_with_wall(7 + t as u64);
        let decision = authenticator.authenticate_pair(&mut field, device, &watch, t, &mut rng);
        match decision {
            AuthDecision::Granted { distance_m } => {
                println!("  {name}: GRANTED at {distance_m:.2} m");
            }
            AuthDecision::Denied { reason } => {
                println!("  {name}: DENIED ({reason:?})");
            }
        }
    }

    println!("\nThe kitchen hub denies even though Bluetooth crosses the wall:");
    println!("acoustic signals do not — the property radio-based ranging lacks (Sec. II).");
}
