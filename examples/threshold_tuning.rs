//! Threshold tuning: the personalization trade-off, quantified.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```
//!
//! The paper's Tables I/II show how the user-selected threshold τ trades
//! false rejections against false acceptances. This example fits the
//! Gaussian ranging model from live simulated trials (the paper's own
//! Sec. VI-C methodology) and prints the FRR/FAR curve so a user can pick
//! their τ.

use piano::core::metrics::GaussianRangingModel;
use piano::eval::tables::fit_sigma;

fn main() {
    println!("fitting σ_d from office trials (paper Sec. VI-C methodology)…");
    let sigma = fit_sigma("office", 8, 0x7A);
    println!("office σ_d ≈ {:.1} cm\n", sigma * 100.0);

    let model = GaussianRangingModel::with_sigma(sigma);
    println!("{:>8} {:>10} {:>10}", "τ (m)", "FRR", "FAR");
    for tau in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        println!(
            "{:>8.2} {:>9.1}% {:>9.2}%",
            tau,
            model.frr(tau) * 100.0,
            model.far(tau) * 100.0
        );
    }
    println!(
        "\nFRR halves as τ doubles (the paper's Table I pattern); FAR stays \
         near-flat because acceptance mass sits just beyond τ while the \
         denominator spans the whole 10 m Bluetooth range (Table II)."
    );
    println!(
        "Pick τ = 0.5 m in risky environments (FRR {:.1}%), τ = 1 m for comfort (FRR {:.1}%).",
        model.frr(0.5) * 100.0,
        model.frr(1.0) * 100.0
    );
}
