//! Streaming authentication: one multi-tenant `AuthService`, two
//! concurrent sessions, chunked audio.
//!
//! ```text
//! cargo run --release --example streaming_auth
//! ```
//!
//! A smart speaker (the hub) authenticates two users at once. Each user's
//! watch vouches for them; the hub opens one streaming session per user on
//! a shared [`AuthService`]. Both sessions ride **one** microphone feed:
//! the service scans the hub's recording once per chunk for all four
//! reference signals (the single-pass coarse-scan trick generalized across
//! tenants), and each watch runs its own sans-IO voucher session over its
//! own recording — reporting *early*, as soon as both signals are located,
//! instead of waiting for the full 2 s buffer.

use piano::core::stream::{AuthSession, SessionEvent};
use piano::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let cfg = PianoConfig::with_threshold(2.0);
    let fs = cfg.action.sample_rate;
    let mut service = AuthService::new(cfg.clone());

    // The hub and the two users' watches.
    let hub = Device::phone(1, Position::ORIGIN, 11);
    let watch1 = Device::phone(2, Position::new(0.6, 0.0, 0.0), 22);
    let watch2 = Device::phone(3, Position::new(0.0, 1.1, 0.0), 33);

    // Two concurrent sessions on one service: same configuration, so they
    // share one cached detector and one scan group.
    let id1 = service.open_session(true, &mut rng);
    let id2 = service.open_session(true, &mut rng);
    println!(
        "opened {:?} (user 1, watch at 0.60 m) and {:?} (user 2, watch at 1.10 m)",
        id1, id2
    );

    // Step II: deliver each challenge to its watch's voucher session. The
    // sessions are sans-IO — in production these messages would be sealed
    // over the Bluetooth link; here they pass as plain structs.
    let mut voucher1 = AuthSession::voucher_with(Arc::clone(service.detector()));
    let mut voucher2 = AuthSession::voucher_with(Arc::clone(service.detector()));
    voucher1.enable_early_decision();
    voucher2.enable_early_decision();
    let challenge1 = service.poll_transmit(id1).expect("challenge 1 queued");
    let challenge2 = service.poll_transmit(id2).expect("challenge 2 queued");
    voucher1
        .handle_message(challenge1)
        .expect("valid challenge");
    voucher2
        .handle_message(challenge2)
        .expect("valid challenge");

    // Step III: the two sessions run on staggered schedules (0.25 s apart)
    // so the four 93 ms signals never overlap in the shared air.
    let mut field = AcousticField::new(Environment::office(), 7);
    let (t1, t2) = (0.0, 0.25);
    let sa1 = service
        .session(id1)
        .and_then(|s| s.playback_waveform())
        .expect("hub knows S_A of session 1");
    let sa2 = service
        .session(id2)
        .and_then(|s| s.playback_waveform())
        .expect("hub knows S_A of session 2");
    let sv1 = voucher1.playback_waveform().expect("watch 1 knows S_V");
    let sv2 = voucher2.playback_waveform().expect("watch 2 knows S_V");
    hub.play(
        &mut field,
        &sa1,
        t1 + cfg.action.play_offset_auth_s,
        fs,
        &mut rng,
    );
    watch1.play(
        &mut field,
        &sv1,
        t1 + cfg.action.play_offset_vouch_s,
        fs,
        &mut rng,
    );
    hub.play(
        &mut field,
        &sa2,
        t2 + cfg.action.play_offset_auth_s,
        fs,
        &mut rng,
    );
    watch2.play(
        &mut field,
        &sv2,
        t2 + cfg.action.play_offset_vouch_s,
        fs,
        &mut rng,
    );

    let (hub_rec, _) = hub.record(&mut field, t1, 2.0 + (t2 - t1), fs, &mut rng);
    let (w1_rec, _) = watch1.record(
        &mut field,
        t1,
        cfg.action.recording_duration_s,
        fs,
        &mut rng,
    );
    let (w2_rec, _) = watch2.record(
        &mut field,
        t2,
        cfg.action.recording_duration_s,
        fs,
        &mut rng,
    );

    // Step IV, hub side: ONE chunked stream feeds BOTH sessions. Early
    // detections surface as events long before the recording ends.
    for chunk in hub_rec.samples().chunks(1024) {
        for (id, event) in service.push_audio(chunk) {
            if let SessionEvent::SignalLocated {
                role,
                samples_consumed,
                provisional: true,
                ..
            } = event
            {
                println!(
                    "hub stream: {id:?} located {role:?} after {samples_consumed} samples \
                     ({:.0} ms of audio)",
                    samples_consumed as f64 / fs * 1e3
                );
            }
        }
    }
    let _ = service.finish_audio();

    // Step IV/V, watch side: each voucher streams its own recording and
    // reports as soon as both signals are provisionally located.
    let mut reports = Vec::new();
    for (name, voucher, rec) in [
        ("watch 1", &mut voucher1, &w1_rec),
        ("watch 2", &mut voucher2, &w2_rec),
    ] {
        let mut report = None;
        let mut consumed = 0usize;
        for chunk in rec.samples().chunks(1024) {
            let events = voucher.push_audio(chunk);
            consumed = voucher.samples_consumed();
            if events.contains(&SessionEvent::ReportReady) {
                report = voucher.poll_transmit();
                break;
            }
        }
        let report = report.unwrap_or_else(|| {
            // Fall back to the exact end-of-stream conclusion.
            let _ = voucher.finish_audio();
            voucher.poll_transmit().expect("finished voucher reports")
        });
        println!(
            "{name}: report ready after {consumed} of {} samples",
            rec.samples().len()
        );
        assert!(
            consumed <= rec.samples().len(),
            "streaming never needs more than the recording"
        );
        reports.push(report);
    }

    // Step V/VI: the reports reach the hub; both sessions decide.
    let r2 = reports.pop().expect("two reports");
    let r1 = reports.pop().expect("two reports");
    service.handle_message(id1, r1).expect("report 1 accepted");
    service.handle_message(id2, r2).expect("report 2 accepted");

    for (id, name, truth_m) in [(id1, "user 1", 0.6), (id2, "user 2", 1.1)] {
        let decision = service
            .decision(id)
            .unwrap_or_else(|| panic!("{name} must have decided"))
            .clone();
        match decision {
            AuthDecision::Granted { distance_m } => {
                println!("{name}: GRANTED at {distance_m:.2} m (true {truth_m:.2} m)");
                assert!(
                    (distance_m - truth_m).abs() < 0.35,
                    "{name}: measured {distance_m} m vs true {truth_m} m"
                );
            }
            other => panic!("{name}: expected grant, got {other:?}"),
        }
    }
    println!("\nboth users authenticated from one shared scan pass per chunk");
}
