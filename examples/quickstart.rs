//! Quickstart: register a vouching device, then authenticate by proximity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's headline scenario: a smartwatch vouches for a phone.
//! When the watch is on the user's wrist next to the phone, access is
//! granted; when the user (and watch) walk away, access is denied.

use piano::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // Two voice-powered devices with realistic hardware imperfections:
    // skewed clocks, ripply transducers, jittery audio pipelines.
    let phone = Device::phone(1, Position::ORIGIN, 1001);
    let watch = Device::phone(2, Position::new(0.5, 0.0, 0.0), 2002);

    // Registration phase (once): pair over Bluetooth.
    let mut authenticator = AuthService::new(PianoConfig::with_threshold(1.0));
    authenticator.register(&phone, &watch, &mut rng);
    println!(
        "registered: {}",
        authenticator.is_registered(&phone, &watch)
    );

    // Authentication phase: user at the phone, watch on wrist (0.5 m).
    let mut office = AcousticField::new(Environment::office(), 7);
    match authenticator.authenticate_pair(&mut office, &phone, &watch, 0.0, &mut rng) {
        AuthDecision::Granted { distance_m } => {
            println!("ACCESS GRANTED — measured distance {distance_m:.2} m (true 0.50 m)");
        }
        other => println!("unexpected: {other:?}"),
    }

    // The user walks away with the watch: same devices, new geometry.
    let watch_far = watch.clone().at(Position::new(6.0, 0.0, 0.0));
    let mut office = AcousticField::new(Environment::office(), 8);
    match authenticator.authenticate_pair(&mut office, &phone, &watch_far, 10.0, &mut rng) {
        AuthDecision::Denied { reason } => {
            println!("ACCESS DENIED — user away ({reason:?})");
        }
        other => println!("unexpected: {other:?}"),
    }

    // Personalization: a stricter 0.3 m threshold rejects even a desk-width
    // separation.
    authenticator.set_threshold_m(0.3);
    let mut office = AcousticField::new(Environment::office(), 9);
    match authenticator.authenticate_pair(&mut office, &phone, &watch, 20.0, &mut rng) {
        AuthDecision::Denied {
            reason: DenialReason::TooFar { distance_m },
        } => {
            println!("threshold 0.3 m: denied at measured {distance_m:.2} m — personalizable");
        }
        other => println!("threshold 0.3 m: {other:?}"),
    }
}
