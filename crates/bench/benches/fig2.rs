//! Bench + regeneration of Fig. 2a (multi-user) and Fig. 2b (protocol
//! comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use piano_bench::{print_artifact, BENCH_SEED, BENCH_TRIALS};

fn bench_fig2(c: &mut Criterion) {
    let fig2a = piano_eval::fig2a::run(piano_eval::PAPER_TRIALS_PER_POINT, BENCH_SEED);
    print_artifact("Fig. 2a", &fig2a.table().render());
    let fig2b = piano_eval::fig2b::run(piano_eval::PAPER_TRIALS_PER_POINT, BENCH_SEED);
    print_artifact("Fig. 2b", &fig2b.table().render());

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("multi_user_grid", |b| {
        b.iter(|| piano_eval::fig2a::run(BENCH_TRIALS, BENCH_SEED))
    });
    group.bench_function("protocol_comparison", |b| {
        b.iter(|| piano_eval::fig2b::run(BENCH_TRIALS, BENCH_SEED))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
