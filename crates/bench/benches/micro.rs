//! Micro-benchmarks of the computational hot paths: the 4096-point FFT
//! (real-input vs the retained padded reference), Algorithm 2's normalized
//! power (dense and sparse), the full Algorithm 1 scan (dense, sparse,
//! parallel), signal synthesis, and the channel renderer.
//!
//! Emits `BENCH_micro.json` in the workspace root with every measurement
//! plus the headline speedup ratios, so the perf trajectory is archived
//! per commit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano_core::config::ActionConfig;
use piano_core::detect::{Detector, ScanMode, SignalSignature};
use piano_core::signal::ReferenceSignal;
use piano_core::stream::StreamingDetector;
use piano_dsp::fft::{fft_real_padded, FftPlan, RealFftPlan};
use piano_dsp::simd::{self, DspBackend};
use piano_dsp::sparse::{GoertzelBank, SlidingDft};
use piano_dsp::Complex64;

/// Counts allocator calls and requested bytes so `measure_alloc` can
/// report the ingest path's heap traffic (the `alloc` summary block).
/// Pass-through otherwise; criterion timings are unaffected beyond two
/// relaxed atomic increments per allocation.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn bench_micro(c: &mut Criterion) {
    let config = ActionConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let signal = ReferenceSignal::random(&config, &mut rng);
    let signature = SignalSignature::of(&signal, &config);
    let detector = Detector::new(&config);

    // FFT 4096 — the unit the paper's compute budget counts. The padded
    // complex transform is the pre-optimization reference; the real-input
    // plan is what the detector actually runs.
    let plan = FftPlan::new(4096);
    let wave = signal.waveform();
    c.bench_function("fft_4096_naive", |b| {
        b.iter_batched(
            || {
                wave.iter()
                    .map(|&x| Complex64::from_real(x))
                    .collect::<Vec<_>>()
            },
            |mut buf| plan.forward_reference(&mut buf),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("fft_4096_naive_one_shot", |b| {
        b.iter(|| fft_real_padded(&wave))
    });
    let real_plan = RealFftPlan::new(4096);
    c.bench_function("fft_4096", |b| {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        b.iter(|| real_plan.power_into(&wave, &mut scratch, &mut out))
    });

    // SIMD naive-vs-optimized pairs: the same three kernels pinned to the
    // scalar reference and to the active (best) backend. On hardware with
    // no SIMD backend the pairs coincide — the ratio reads 1.0 and the
    // scalar path is what ships.
    let active = simd::active_backend();
    c.bench_function("fft_4096_scalar", |b| {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        b.iter(|| real_plan.power_into_with(&wave, &mut scratch, &mut out, DspBackend::Scalar))
    });
    c.bench_function("fft_4096_simd", |b| {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        b.iter(|| real_plan.power_into_with(&wave, &mut scratch, &mut out, active))
    });
    let sliding_rec = &recording_for_sliding(&wave);
    for (id, backend) in [
        ("sliding_dft_scalar", DspBackend::Scalar),
        ("sliding_dft_simd", active),
    ] {
        c.bench_function(id, |b| {
            let mut sliding = SlidingDft::new(4096, 10, sliding_bench_bins());
            sliding.init_with(&sliding_rec[..4096], backend);
            let mut j = 0usize;
            b.iter(|| slide_once(&mut sliding, sliding_rec, &mut j, backend))
        });
    }
    let goertzel_bank = goertzel_bench_bank();
    for (id, backend) in [
        ("goertzel_bank_scalar", DspBackend::Scalar),
        ("goertzel_bank_simd", active),
    ] {
        c.bench_function(id, |b| {
            let mut powers = Vec::new();
            b.iter(|| goertzel_bank.powers_into_with(&wave, &mut powers, backend))
        });
    }

    // Algorithm 2 on a precomputed spectrum, dense and sparse.
    let spectrum = detector.window_spectrum(&wave);
    c.bench_function("norm_power_algorithm2", |b| {
        b.iter(|| detector.norm_power(&spectrum, &signature))
    });
    c.bench_function("norm_power_algorithm2_sparse_one_shot", |b| {
        b.iter(|| detector.norm_power_sparse(&wave, &signature))
    });

    // Algorithm 1 over a realistic 2 s recording with the signal embedded.
    let mut recording = vec![0.0; (2.0 * config.sample_rate) as usize];
    for (i, &v) in wave.iter().enumerate() {
        recording[30_000 + i] = 0.25 * v;
    }
    let mut group = c.benchmark_group("detection");
    group.sample_size(20);
    group.bench_function("algorithm1_scan_2s_naive", |b| {
        b.iter(|| detector.detect_many_mode(&recording, &[&signature], ScanMode::Dense))
    });
    group.bench_function("algorithm1_scan_2s", |b| {
        b.iter(|| detector.detect_many(&recording, &[&signature]))
    });
    group.bench_function("algorithm1_scan_2s_parallel", |b| {
        b.iter(|| detector.detect_many_parallel(&recording, &[&signature]))
    });

    // Streaming scans over the same recording. `stream_scan_2s` consumes
    // the whole buffer in audio-callback chunks and finishes (equivalent
    // result to `algorithm1_scan_2s`); `stream_to_decision` stops at the
    // first provisional detection — the latency-to-decision a live device
    // experiences, reached well before `recording_len()` samples.
    let shared = Arc::new(detector.clone());
    group.bench_function("stream_scan_2s", |b| {
        b.iter(|| {
            let mut s = StreamingDetector::new(Arc::clone(&shared), vec![signature.clone()]);
            for chunk in recording.chunks(1024) {
                let _ = s.push(chunk);
            }
            s.finish()
        })
    });
    group.bench_function("stream_to_decision", |b| {
        b.iter(|| {
            let mut s = StreamingDetector::new(Arc::clone(&shared), vec![signature.clone()]);
            for chunk in recording.chunks(1024) {
                if !s.push(chunk).is_empty() {
                    break;
                }
            }
            s.samples_consumed()
        })
    });
    group.finish();

    // Samples-to-decision for the summary (deterministic, measured once).
    let samples_to_decision = {
        let mut s = StreamingDetector::new(Arc::clone(&shared), vec![signature.clone()]);
        let mut at = recording.len();
        for chunk in recording.chunks(1024) {
            if !s.push(chunk).is_empty() {
                at = s.samples_consumed();
                break;
            }
        }
        at
    };

    // Fleet ingestion throughput (measured once, in the summary): many
    // sessions on one AuthService sharing a single scan group over one
    // hub stream, coarse windows sharded by the service's ScanDriver.
    let fleet = measure_fleet_ingest(16);

    // Wire-transport ingestion (measured once, in the summary): the same
    // fleet shape moved through piano-net's in-memory transport with the
    // i16-delta codec — bytes/s over the wire plus the compression ratio.
    let net = measure_net_ingest(16);

    // Fault recovery (measured once, in the summary): the same wire
    // fleet with half the links cut mid-stream; clients redial and
    // resume, and the block records the recovery cost.
    let fault = measure_fault_recovery(8);

    // Continuous re-verification (measured once, in the summary): one
    // timer-wheel arm per standing session at fleet scale, swept to
    // exhaustion, with the per-op cost pinned at two populations so the
    // O(1) claim is measured rather than asserted.
    let continuous = measure_continuous(1 << 20);

    // Heap traffic of a standing feed (measured once, in the summary):
    // the pooled zero-copy ingest chain against the same frames decoded
    // without a pool — bytes per session and allocations per frame.
    let alloc = measure_alloc();

    // Per-backend kernel speedups (measured once, in the summary): every
    // available DSP backend against the scalar reference.
    let simd_speedups = measure_simd(&wave);

    // Step I synthesis.
    c.bench_function("reference_signal_synthesis", |b| {
        b.iter(|| signal.waveform())
    });

    // Channel render: one recording with one emission in an office.
    c.bench_function("acoustic_render_1s", |b| {
        use piano_acoustics::field::Emission;
        use piano_acoustics::*;
        b.iter_batched(
            || {
                let mut field = AcousticField::new(Environment::office(), 3);
                field.emit(Emission {
                    waveform: wave.clone(),
                    start_world_s: 0.2,
                    sample_interval_s: 1.0 / 44_100.0,
                    position: Position::ORIGIN,
                });
                field
            },
            |mut field| {
                field.render_recording(
                    &MicrophoneModel::phone(1),
                    &DeviceClock::ideal(),
                    Position::new(1.0, 0.0, 0.0),
                    0.0,
                    44_100,
                    44_100.0,
                )
            },
            BatchSize::SmallInput,
        )
    });

    export_summary(
        c,
        samples_to_decision,
        recording.len(),
        &fleet,
        &net,
        &fault,
        &continuous,
        &alloc,
        &simd_speedups,
    );
}

/// One deterministic heap-traffic measurement for the summary block.
struct AllocIngest {
    /// Frames in the measured steady-state window (warmup excluded).
    frames_per_session: usize,
    /// Heap bytes requested across the window, pooled vs unpooled chain.
    bytes_per_session_pooled: u64,
    bytes_per_session_unpooled: u64,
    /// Mean allocator calls per ingested frame.
    allocs_per_frame_pooled: f64,
    allocs_per_frame_unpooled: f64,
    /// `unpooled / pooled` bytes — the headline the pool exists for.
    /// A zero-alloc pooled window divides by 1 and reads as the full
    /// unpooled byte count.
    reduction_ratio: f64,
}

/// Drives identical pre-encoded frames (raw chunks and i16 batches,
/// silence — the standing-feed regime between challenges) through
/// `FrameReader → IngestFeed → StreamingDetector` twice: once on the
/// pooled zero-copy path, once decoding into fresh `Vec`s. Counts
/// allocator traffic over a steady-state window after a warmup that
/// fills the pool, the scan scratch, and the ring's first compaction.
fn measure_alloc() -> AllocIngest {
    use piano_core::pool::FramePool;
    use piano_core::wire::{FrameReader, IngestFeed, Message};

    const SESSION: u64 = 0xA110C;
    const CHUNK: usize = 1_024;
    const WARMUP_FRAMES: usize = 96;
    const MEASURED_FRAMES: usize = 64;

    let cfg = ActionConfig::default();
    let detector = Arc::new(Detector::new(&cfg));
    let mut rng = ChaCha8Rng::seed_from_u64(0xA110C);
    let sig = SignalSignature::of(&ReferenceSignal::random(&cfg, &mut rng), &cfg);

    let mut frames = Vec::with_capacity(WARMUP_FRAMES + MEASURED_FRAMES);
    let mut seq = 0u32;
    for i in 0..WARMUP_FRAMES + MEASURED_FRAMES {
        let msg = if i % 2 == 0 {
            let m = Message::AudioChunk {
                session: SESSION,
                seq,
                samples: vec![0.0; CHUNK].into(),
            };
            seq += 1;
            m
        } else {
            let m = Message::AudioBatchI16 {
                session: SESSION,
                start_seq: seq,
                chunks: vec![vec![0i16; CHUNK / 2]; 2].into(),
            };
            seq += 2;
            m
        };
        frames.push(msg.encode_framed());
    }

    // (calls, bytes) over the measured window for one ingest chain.
    let run = |pool: Option<FramePool>| -> (u64, u64) {
        let mut det = StreamingDetector::new(Arc::clone(&detector), vec![sig.clone()]);
        let mut reader = FrameReader::new();
        let mut feed = IngestFeed::new(SESSION, 1 << 16);
        if let Some(pool) = pool {
            reader.set_pool(pool.clone());
            feed.set_pool(pool);
        }
        let mut ingest = |frame: &[u8], reader: &mut FrameReader, feed: &mut IngestFeed| {
            reader.push(frame);
            while let Some(msg) = reader.next_frame().expect("clean stream") {
                feed.accept(&msg).expect("in-order audio");
            }
            feed.drain_pending(usize::MAX, |chunk| {
                let _ = det.push(chunk);
            });
        };
        for frame in &frames[..WARMUP_FRAMES] {
            ingest(frame, &mut reader, &mut feed);
        }
        let calls = ALLOC_CALLS.load(Ordering::Relaxed);
        let bytes = ALLOC_BYTES.load(Ordering::Relaxed);
        for frame in &frames[WARMUP_FRAMES..] {
            ingest(frame, &mut reader, &mut feed);
        }
        (
            ALLOC_CALLS.load(Ordering::Relaxed) - calls,
            ALLOC_BYTES.load(Ordering::Relaxed) - bytes,
        )
    };

    let (unpooled_calls, unpooled_bytes) = run(None);
    let (pooled_calls, pooled_bytes) = run(Some(FramePool::new()));
    AllocIngest {
        frames_per_session: MEASURED_FRAMES,
        bytes_per_session_pooled: pooled_bytes,
        bytes_per_session_unpooled: unpooled_bytes,
        allocs_per_frame_pooled: pooled_calls as f64 / MEASURED_FRAMES as f64,
        allocs_per_frame_unpooled: unpooled_calls as f64 / MEASURED_FRAMES as f64,
        reduction_ratio: unpooled_bytes as f64 / (pooled_bytes.max(1)) as f64,
    }
}

/// One deterministic fleet-ingest measurement for the summary block.
struct FleetIngest {
    sessions: usize,
    hub_samples: usize,
    elapsed_s: f64,
    /// sessions × hub samples scanned per wall-clock second.
    session_samples_per_s: f64,
    all_granted: bool,
}

/// Opens `sessions` streaming sessions in one scan group, lays every
/// session's signal pair out in one hub recording, streams it through the
/// service in audio-callback chunks, and times session conclusion
/// (mirrors `examples/fleet_ingest.rs` at bench scale).
fn measure_fleet_ingest(sessions: usize) -> FleetIngest {
    use piano_core::piano::PianoConfig;
    use piano_core::stream::{AuthService, AuthSession};
    use piano_core::wire::Message;

    const STRIDE: usize = 12_288;
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1EE7);
    let mut service = AuthService::new(PianoConfig::with_threshold(1.0));
    let mut ids = Vec::with_capacity(sessions);
    let mut hub = vec![0.0f64; sessions * STRIDE + 16_384];
    let mut reports = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let id = service.open_session(false, &mut rng);
        let challenge = service.poll_transmit(id).expect("challenge queued");
        let mut voucher = AuthSession::voucher_with(Arc::clone(service.detector()));
        voucher.handle_message(challenge).expect("valid challenge");
        let wave_a = service
            .session(id)
            .and_then(|s| s.playback_waveform())
            .expect("S_A known");
        let wave_v = voucher.playback_waveform().expect("S_V known");
        let base = i * STRIDE;
        for (j, &v) in wave_a.iter().enumerate() {
            hub[base + 2_000 + j] += 0.4 * v;
        }
        for (j, &v) in wave_v.iter().enumerate() {
            hub[base + 8_000 + j] += 0.3 * v;
        }
        // The voucher heard the pair 5 871 samples apart ⇒ d ≈ 0.50 m.
        reports.push(Message::TimeDiffReport {
            session: voucher.session_id(),
            vouch_diff_samples: Some(5_871.0),
        });
        ids.push(id);
    }

    let start = std::time::Instant::now();
    for (id, report) in ids.iter().zip(reports) {
        service
            .handle_message(*id, report)
            .expect("report accepted");
    }
    // ~0.37 s ticks: large enough that the service's ScanDriver shards
    // each tick's coarse windows instead of taking the inline fallback.
    for chunk in hub.chunks(16_384) {
        let _ = service.push_audio(chunk);
    }
    let _ = service.finish_audio();
    let all_granted = ids.iter().all(|id| {
        matches!(
            service.decision(*id),
            Some(piano_core::piano::AuthDecision::Granted { .. })
        )
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    FleetIngest {
        sessions,
        hub_samples: hub.len(),
        elapsed_s,
        session_samples_per_s: (sessions * hub.len()) as f64 / elapsed_s,
        all_granted,
    }
}

/// One deterministic wire-ingest measurement for the summary block.
struct NetIngest {
    feeds: usize,
    wire_audio_bytes: u64,
    raw_audio_bytes: u64,
    compression_ratio: f64,
    elapsed_s: f64,
    /// Post-codec bytes moved per wall-clock second.
    wire_bytes_per_s: f64,
    /// Pre-codec (raw-equivalent) audio bytes ingested per second.
    raw_bytes_per_s: f64,
    all_granted: bool,
    /// Wall-clock of the same fleet through the readiness reactor.
    reactor_elapsed_s: f64,
    /// Measured peak resident bytes per reactor connection (state +
    /// frame-reader buffer + peak sample backlog).
    per_conn_bytes_reactor: u64,
    /// The thread-per-connection model's cost for the same connection:
    /// identical state plus what each serving thread adds privately.
    per_conn_bytes_threaded: u64,
    /// Connections fitting in 1 GiB under each model, and the ratio —
    /// the headline the reactor exists for.
    conn_ceiling_reactor: u64,
    conn_ceiling_threaded: u64,
    conn_ceiling_ratio: f64,
    reactor_all_granted: bool,
}

/// Streams `feeds` voucher recordings through a `piano-net` `ServerLoop`
/// over the in-memory transport with the i16-delta codec, scans the hub
/// once for every session, and reports wire throughput + compression
/// (mirrors `examples/fleet_ingest.rs` at bench scale).
fn measure_net_ingest(feeds: usize) -> NetIngest {
    use piano_core::piano::{AuthDecision, PianoConfig};
    use piano_core::stream::AuthService;
    use piano_core::wire::WireCodec;
    use piano_net::fixtures::{feed_recording, hub_recording};
    use piano_net::transport::{memory_hub, Listener};
    use piano_net::{FeedHandle, ServerConfig, ServerLoop};

    let server = ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(0xF1EE7),
        ServerConfig::default(),
    );
    let action = { server.with_service(|s| s.config().action.clone()) };
    let (connector, mut listener) = memory_hub();

    let start = std::time::Instant::now();
    let mut handles = Vec::with_capacity(feeds);
    let mut server_threads = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let transport = connector.connect().expect("hub open");
        let conn = listener.accept_conn().expect("accept");
        let server_clone = server.clone();
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        handles.push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).expect("handshake"));
    }
    let clients: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let action = action.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &action);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                feed.await_decision().expect("verdict")
            })
        })
        .collect();
    server.wait_for_reports(feeds);
    let hub = hub_recording(&server);
    server.scan_and_decide(&hub, 16_384);
    let all_granted = clients
        .into_iter()
        .all(|t| matches!(t.join().expect("client"), AuthDecision::Granted { .. }));
    for t in server_threads {
        let _ = t.join().expect("server thread");
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = server.stats();

    // The same fleet through the readiness reactor: one event-loop
    // thread, connection cost measured in bytes of state instead of an
    // OS thread.
    let (reactor_elapsed_s, per_conn_bytes_reactor, reactor_all_granted) = {
        use piano_core::stream::ShardedAuthService;
        use piano_net::fixtures::hub_recording_reactor;
        use piano_net::ReactorServer;

        let reactor = ReactorServer::new(
            ShardedAuthService::new(PianoConfig::with_threshold(1.0), 1),
            ChaCha8Rng::seed_from_u64(0xF1EE7),
            ServerConfig::default(),
        );
        let loop_thread = reactor.start();
        let (connector, mut listener) = memory_hub();
        let start = std::time::Instant::now();
        let mut handles = Vec::with_capacity(feeds);
        for _ in 0..feeds {
            let transport = connector.connect().expect("hub open");
            let conn = listener.accept_conn().expect("accept");
            reactor.register(conn);
            handles
                .push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).expect("handshake"));
        }
        let clients: Vec<_> = handles
            .into_iter()
            .map(|mut feed| {
                let action = action.clone();
                std::thread::spawn(move || {
                    let rec = feed_recording(feed.challenge(), &action);
                    feed.send_recording(&rec, 1_024, 4).expect("stream");
                    feed.finish().expect("stream end");
                    feed.await_decision().expect("verdict")
                })
            })
            .collect();
        reactor.wait_for_reports(feeds);
        let hub = hub_recording_reactor(&reactor);
        reactor.scan_and_decide_arc(hub.into(), 16_384);
        let granted = clients
            .into_iter()
            .all(|t| matches!(t.join().expect("client"), AuthDecision::Granted { .. }));
        let elapsed = start.elapsed().as_secs_f64();
        reactor.shutdown();
        loop_thread.join().expect("reactor thread");
        (elapsed, reactor.peak_conn_bytes().max(1), granted)
    };

    // What the thread model spends on the same connection: the identical
    // protocol state, plus a private 64 KiB read buffer and the 2 MiB
    // default thread stack each `serve` thread brings.
    const THREAD_STACK_BYTES: u64 = 2 * 1024 * 1024;
    const PRIVATE_READ_BUF_BYTES: u64 = 64 * 1024;
    let per_conn_bytes_threaded =
        per_conn_bytes_reactor + PRIVATE_READ_BUF_BYTES + THREAD_STACK_BYTES;
    const GIB: u64 = 1 << 30;
    let conn_ceiling_reactor = GIB / per_conn_bytes_reactor;
    let conn_ceiling_threaded = (GIB / per_conn_bytes_threaded).max(1);

    NetIngest {
        feeds,
        wire_audio_bytes: stats.wire_audio_bytes,
        raw_audio_bytes: stats.raw_audio_bytes,
        compression_ratio: stats.compression_ratio(),
        elapsed_s,
        wire_bytes_per_s: stats.wire_audio_bytes as f64 / elapsed_s,
        raw_bytes_per_s: stats.raw_audio_bytes as f64 / elapsed_s,
        all_granted,
        reactor_elapsed_s,
        per_conn_bytes_reactor,
        per_conn_bytes_threaded,
        conn_ceiling_reactor,
        conn_ceiling_threaded,
        conn_ceiling_ratio: conn_ceiling_reactor as f64 / conn_ceiling_threaded as f64,
        reactor_all_granted,
    }
}

/// One deterministic fault-recovery measurement for the summary block.
struct FaultRecovery {
    feeds: usize,
    /// Feeds whose link is deliberately cut mid-stream.
    cut_feeds: usize,
    /// Server-acked `Resume` handshakes across the run.
    resumes: u64,
    /// Client redial attempts that themselves failed before succeeding.
    client_retries: u64,
    /// Mean client backoff spent per successful resume.
    resume_latency_ms: f64,
    elapsed_s: f64,
    all_granted: bool,
}

/// Runs the `measure_net_ingest` fleet shape with half the links cut
/// mid-stream by a seeded `FaultyTransport` (the rest run under
/// segmentation/latency chaos). Clients redial through `ResilientFeed`
/// against a server with a resume window; the block records what the
/// recovery cost and that decisions still all landed.
fn measure_fault_recovery(feeds: usize) -> FaultRecovery {
    use piano_core::piano::{AuthDecision, PianoConfig};
    use piano_core::stream::AuthService;
    use piano_core::wire::WireCodec;
    use piano_net::fixtures::{feed_recording, hub_recording};
    use piano_net::transport::{memory_hub, Listener, MemoryStream};
    use piano_net::{
        FaultPlan, FaultyTransport, FeedHandle, ResilientFeed, RetryPolicy, ServerConfig,
        ServerLoop,
    };
    use std::time::Duration;

    const SEED: u64 = 0xFA17;
    let server = ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(0xF1EE7),
        ServerConfig {
            resume_window: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    );
    let action = server.with_service(|s| s.config().action.clone());
    let (connector, mut listener) = memory_hub();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            while let Ok(conn) = listener.accept_conn() {
                let s = server.clone();
                std::thread::spawn(move || {
                    let _ = s.serve(conn);
                });
            }
        });
    }

    let start = std::time::Instant::now();
    let mut fleet = Vec::with_capacity(feeds);
    for i in 0..feeds {
        let fseed = SEED ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan = if i % 2 == 0 {
            FaultPlan::clean(fseed).with_write_disconnect(4_000 + 512 * (i as u64 % 7))
        } else {
            FaultPlan::chaos(fseed)
        };
        let t = FaultyTransport::new(connector.connect().expect("hub open"), plan);
        let handle = FeedHandle::connect(t, &[WireCodec::I16Delta]).expect("handshake");
        let connector = connector.clone();
        let mut redials = 0u64;
        let dial = move || -> std::io::Result<FaultyTransport<MemoryStream>> {
            redials += 1;
            Ok(FaultyTransport::new(
                connector.connect()?,
                FaultPlan::clean(fseed ^ redials),
            ))
        };
        fleet.push(ResilientFeed::adopt(
            handle,
            dial,
            RetryPolicy {
                jitter_seed: fseed,
                ..RetryPolicy::default()
            },
        ));
    }
    let clients: Vec<_> = fleet
        .into_iter()
        .map(|mut feed| {
            let action = action.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.handle().challenge(), &action);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                let decision = feed
                    .finish_and_await(Duration::from_secs(60))
                    .expect("verdict");
                (decision, feed.stats())
            })
        })
        .collect();
    server
        .wait_for_reports_timeout(feeds, Duration::from_secs(60))
        .expect("reports despite faults");
    let hub = hub_recording(&server);
    server.scan_and_decide(&hub, 16_384);
    let mut all_granted = true;
    let (mut retries, mut resumes, mut backoff) = (0u64, 0u64, Duration::ZERO);
    for t in clients {
        let (decision, s) = t.join().expect("client");
        all_granted &= matches!(decision, AuthDecision::Granted { .. });
        retries += s.retries;
        resumes += s.resumes;
        backoff += s.backoff_total;
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    FaultRecovery {
        feeds,
        cut_feeds: feeds.div_ceil(2),
        resumes,
        client_retries: retries,
        resume_latency_ms: if resumes > 0 {
            backoff.as_secs_f64() * 1e3 / resumes as f64
        } else {
            0.0
        },
        elapsed_s,
        all_granted,
    }
}

/// One deterministic standing-fleet measurement for the summary block.
struct ContinuousStanding {
    /// Standing sessions armed on one wheel (the headline population).
    sessions: usize,
    /// Mean cost of arming one session's next re-check deadline.
    insert_ns: f64,
    /// Mean cost per fired deadline across the full sweep (cascades
    /// included — this is the amortized figure the wheel advertises).
    advance_ns: f64,
    /// Deadlines that fired during the sweep (must equal `sessions`).
    fired: usize,
    /// Per-op cost at `sessions` over the same cost at `sessions / 8`.
    /// ≈1.0 is the measured O(1) claim; a comparison-based scheduler's
    /// log-factor would push this ratio visibly above 1.
    o1_insert_ratio: f64,
    o1_advance_ratio: f64,
    all_fired: bool,
}

/// Arms one `piano_core::continuum::TickWheel` entry per standing
/// session — phases spread uniformly over one base re-check period and
/// jittered by the risk policy's own seeded stream, the shape a settled
/// fleet presents — then sweeps the whole horizon in one-second
/// advances. Runs at `sessions / 8` first so the summary can report the
/// per-op cost *ratio* between the two populations: constant-time ops
/// hold it near 1.0 regardless of fleet size.
fn measure_continuous(sessions: usize) -> ContinuousStanding {
    use piano_core::continuum::{RiskPolicy, TickWheel};

    // 100 ms wheel resolution, the reactor's deadline granularity.
    const TICKS_PER_S: u64 = 10;
    let policy = RiskPolicy::default();
    let time_population = |n: usize| -> (f64, f64, usize) {
        let mut wheel: TickWheel<u64> = TickWheel::new();
        let t = std::time::Instant::now();
        for k in 0..n as u64 {
            let phase = policy.base_period_s * (k as f64 / n as f64);
            let deadline_s = phase + policy.base_period_s * policy.jitter(k, 0);
            wheel.insert((deadline_s * TICKS_PER_S as f64) as u64, k);
        }
        let insert_ns = t.elapsed().as_secs_f64() * 1e9 / n as f64;
        // Deadlines top out under 2.05 × base period; 2.2 × covers them.
        let horizon = (2.2 * policy.base_period_s) as u64 * TICKS_PER_S;
        let t = std::time::Instant::now();
        let mut fired = 0usize;
        let mut now = 0u64;
        while now <= horizon && fired < n {
            now += TICKS_PER_S;
            fired += wheel.advance(now).len();
        }
        let advance_ns = t.elapsed().as_secs_f64() * 1e9 / fired.max(1) as f64;
        (insert_ns, advance_ns, fired)
    };

    let (small_insert, small_advance, _) = time_population(sessions / 8);
    let (insert_ns, advance_ns, fired) = time_population(sessions);
    ContinuousStanding {
        sessions,
        insert_ns,
        advance_ns,
        fired,
        o1_insert_ratio: insert_ns / small_insert,
        o1_advance_ratio: advance_ns / small_advance,
        all_fired: fired == sessions,
    }
}

/// A deterministic recording long enough for thousands of 10-sample
/// fine-scan slides: the reference waveform tiled with varying gain.
fn recording_for_sliding(wave: &[f64]) -> Vec<f64> {
    let len = 4096 + 10 * 4096;
    (0..len)
        .map(|i| wave[i % wave.len()] * (0.2 + 0.8 * ((i / wave.len()) % 7) as f64 / 7.0))
        .collect()
}

/// The detector's fine-scan shape: ~30 candidate clusters × (2θ+1)
/// tracked bins. Shared by the criterion pairs and `measure_simd` so the
/// `criterion` and `per_backend` ratios in the JSON `simd` block measure
/// the same workload.
fn sliding_bench_bins() -> Vec<usize> {
    (0..330).map(|i| (37 * i + 13) % 4096).collect()
}

/// The sparse one-shot shape: a 64-bin bank over one 4096 window.
/// Shared by the criterion pairs and `measure_simd` (see
/// [`sliding_bench_bins`]).
fn goertzel_bench_bank() -> GoertzelBank {
    GoertzelBank::new(4096, (0..64).map(|i| (61 * i + 7) % 4096).collect())
}

/// One nominal 10-sample fine-scan slide over `rec`, wrapping at the end.
fn slide_once(sliding: &mut SlidingDft, rec: &[f64], j: &mut usize, backend: DspBackend) {
    if *j + 10 + 4096 > rec.len() {
        *j = 0;
    }
    sliding.advance_with(&rec[*j..*j + 10], &rec[*j + 4096..*j + 4096 + 10], backend);
    *j += 10;
}

/// One backend's deterministically measured speedups over scalar.
struct SimdBackendSpeedups {
    backend: DspBackend,
    fft_4096: f64,
    sliding_dft: f64,
    goertzel_bank: f64,
}

/// Times the three dispatched kernels under every available backend
/// against the scalar reference (same run, same inputs, `Instant`-timed
/// like the fleet measurements). Scalar itself is included as the 1.0×
/// floor so the JSON block always exists, even on SIMD-less hardware.
fn measure_simd(wave: &[f64]) -> Vec<SimdBackendSpeedups> {
    let real_plan = RealFftPlan::new(4096);
    let sliding_rec = recording_for_sliding(wave);
    let bank = goertzel_bench_bank();

    let time_backend = |backend: DspBackend| -> (f64, f64, f64) {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        // Warm up plans/caches, then time each kernel.
        real_plan.power_into_with(wave, &mut scratch, &mut out, backend);
        let t = std::time::Instant::now();
        for _ in 0..300 {
            real_plan.power_into_with(wave, &mut scratch, &mut out, backend);
        }
        let fft_s = t.elapsed().as_secs_f64();

        let mut sliding = SlidingDft::new(4096, 10, sliding_bench_bins());
        sliding.init_with(&sliding_rec[..4096], backend);
        let t = std::time::Instant::now();
        let mut j = 0usize;
        for _ in 0..4000 {
            slide_once(&mut sliding, &sliding_rec, &mut j, backend);
        }
        let sliding_s = t.elapsed().as_secs_f64();

        let mut powers = Vec::new();
        let t = std::time::Instant::now();
        for _ in 0..100 {
            bank.powers_into_with(wave, &mut powers, backend);
        }
        let goertzel_s = t.elapsed().as_secs_f64();
        (fft_s, sliding_s, goertzel_s)
    };

    let (fft_ref, sliding_ref, goertzel_ref) = time_backend(DspBackend::Scalar);
    simd::available_backends()
        .into_iter()
        .map(|backend| {
            let (fft_s, sliding_s, goertzel_s) = if backend == DspBackend::Scalar {
                (fft_ref, sliding_ref, goertzel_ref)
            } else {
                time_backend(backend)
            };
            SimdBackendSpeedups {
                backend,
                fft_4096: fft_ref / fft_s,
                sliding_dft: sliding_ref / sliding_s,
                goertzel_bank: goertzel_ref / goertzel_s,
            }
        })
        .collect()
}

/// Writes `BENCH_micro.json` with raw measurements and headline speedups.
#[allow(clippy::too_many_arguments)]
fn export_summary(
    c: &Criterion,
    samples_to_decision: usize,
    recording_len: usize,
    fleet: &FleetIngest,
    net: &NetIngest,
    fault: &FaultRecovery,
    continuous: &ContinuousStanding,
    alloc: &AllocIngest,
    simd_speedups: &[SimdBackendSpeedups],
) {
    // Workspace root, two levels up from this crate's manifest.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    let path = &root.join("BENCH_micro.json");
    if let Err(e) = c.export_json(path) {
        eprintln!("warning: could not write {}: {e}", path.display());
        return;
    }
    let median = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let fft_speedup = median("fft_4096_naive") / median("fft_4096");
    let simd_fft = median("fft_4096_scalar") / median("fft_4096_simd");
    let simd_sliding = median("sliding_dft_scalar") / median("sliding_dft_simd");
    let simd_goertzel = median("goertzel_bank_scalar") / median("goertzel_bank_simd");
    let scan_speedup =
        median("detection/algorithm1_scan_2s_naive") / median("detection/algorithm1_scan_2s");
    let parallel_speedup = median("detection/algorithm1_scan_2s_naive")
        / median("detection/algorithm1_scan_2s_parallel");
    let decision_speedup =
        median("detection/algorithm1_scan_2s") / median("detection/stream_to_decision");
    println!("fft_4096 speedup over naive: {fft_speedup:.2}x");
    println!(
        "simd backend {}: fft_4096 {simd_fft:.2}x, sliding_dft {simd_sliding:.2}x, \
         goertzel_bank {simd_goertzel:.2}x over scalar",
        piano_dsp::simd::active_backend()
    );
    println!("algorithm1_scan_2s speedup over naive: {scan_speedup:.2}x");
    println!("algorithm1_scan_2s parallel speedup over naive: {parallel_speedup:.2}x");
    println!(
        "streaming decision after {samples_to_decision}/{recording_len} samples, \
         {decision_speedup:.2}x faster than the full-buffer scan"
    );
    println!(
        "fleet ingest: {} sessions × {} hub samples in {:.3} s \
         ({:.0} session·samples/s, all granted: {})",
        fleet.sessions,
        fleet.hub_samples,
        fleet.elapsed_s,
        fleet.session_samples_per_s,
        fleet.all_granted
    );
    println!(
        "net ingest: {} feeds over the in-memory transport in {:.3} s \
         ({:.2} MiB/s on the wire, {:.2}x i16-delta compression, all granted: {})",
        net.feeds,
        net.elapsed_s,
        net.wire_bytes_per_s / (1024.0 * 1024.0),
        net.compression_ratio,
        net.all_granted
    );
    println!(
        "fault recovery: {} feeds, {} cut mid-stream, {} resumes \
         ({:.1} ms mean backoff) in {:.3} s, all granted: {}",
        fault.feeds,
        fault.cut_feeds,
        fault.resumes,
        fault.resume_latency_ms,
        fault.elapsed_s,
        fault.all_granted
    );
    println!(
        "continuous standing: {} sessions armed at {:.0} ns/insert, swept at \
         {:.0} ns/fire (per-op vs ⅛ population: insert {:.2}x, advance {:.2}x, \
         all fired: {})",
        continuous.sessions,
        continuous.insert_ns,
        continuous.advance_ns,
        continuous.o1_insert_ratio,
        continuous.o1_advance_ratio,
        continuous.all_fired
    );
    println!(
        "alloc discipline: pooled ingest {} B/session ({:.2} allocs/frame) vs \
         unpooled {} B/session ({:.2} allocs/frame) over {} frames — {:.1}x fewer bytes",
        alloc.bytes_per_session_pooled,
        alloc.allocs_per_frame_pooled,
        alloc.bytes_per_session_unpooled,
        alloc.allocs_per_frame_unpooled,
        alloc.frames_per_session,
        alloc.reduction_ratio
    );
    // Per-backend block: deterministic speedups vs scalar, one entry per
    // available backend (scalar reads 1.0 by construction).
    let simd_json = {
        let active = piano_dsp::simd::active_backend();
        let available: Vec<String> = simd_speedups
            .iter()
            .map(|s| format!("\"{}\"", s.backend))
            .collect();
        let per_backend: Vec<String> = simd_speedups
            .iter()
            .map(|s| {
                format!(
                    "\"{}\": {{\"fft_4096\": {:.3}, \"sliding_dft\": {:.3}, \
                     \"goertzel_bank\": {:.3}}}",
                    s.backend, s.fft_4096, s.sliding_dft, s.goertzel_bank
                )
            })
            .collect();
        format!(
            "{{\"active\": \"{active}\", \"available\": [{}], \
             \"criterion\": {{\"fft_4096\": {simd_fft:.3}, \
             \"sliding_dft\": {simd_sliding:.3}, \
             \"goertzel_bank\": {simd_goertzel:.3}}}, \
             \"per_backend\": {{{}}}}}",
            available.join(", "),
            per_backend.join(", ")
        )
    };
    // Splice the headline ratios into the top-level JSON object — strip
    // exactly the final closing brace, never more.
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Some(body) = text.trim_end().strip_suffix('}') {
            let patched = format!(
                "{body},  \"speedups\": {{\"fft_4096_vs_naive\": {fft_speedup:.3}, \
                 \"algorithm1_scan_2s_vs_naive\": {scan_speedup:.3}, \
                 \"algorithm1_scan_2s_parallel_vs_naive\": {parallel_speedup:.3}, \
                 \"stream_to_decision_vs_full_scan\": {decision_speedup:.3}}},\n  \
                 \"streaming\": {{\"samples_to_decision\": {samples_to_decision}, \
                 \"recording_len\": {recording_len}, \
                 \"decision_before_full_buffer\": {}}},\n  \
                 \"fleet_ingest\": {{\"sessions\": {}, \"hub_samples\": {}, \
                 \"scan_workers\": {}, \"elapsed_s\": {:.4}, \
                 \"session_samples_per_s\": {:.0}, \"all_granted\": {}}},\n  \
                 \"net_ingest\": {{\"feeds\": {}, \"wire_audio_bytes\": {}, \
                 \"raw_audio_bytes\": {}, \"compression_ratio\": {:.3}, \
                 \"elapsed_s\": {:.4}, \"wire_bytes_per_s\": {:.0}, \
                 \"raw_bytes_per_s\": {:.0}, \"all_granted\": {}, \
                 \"reactor_elapsed_s\": {:.4}, \
                 \"per_conn_bytes_reactor\": {}, \
                 \"per_conn_bytes_threaded\": {}, \
                 \"conn_ceiling_reactor\": {}, \
                 \"conn_ceiling_threaded\": {}, \
                 \"conn_ceiling_ratio\": {:.2}, \
                 \"reactor_all_granted\": {}}},\n  \
                 \"fault_recovery\": {{\"feeds\": {}, \"cut_feeds\": {}, \
                 \"resumes\": {}, \"client_retries\": {}, \
                 \"resume_latency_ms\": {:.3}, \"elapsed_s\": {:.4}, \
                 \"all_granted\": {}}},\n  \
                 \"continuous\": {{\"sessions\": {}, \"insert_ns\": {:.1}, \
                 \"advance_ns\": {:.1}, \"fired\": {}, \
                 \"o1_insert_ratio\": {:.3}, \"o1_advance_ratio\": {:.3}, \
                 \"all_fired\": {}}},\n  \
                 \"alloc\": {{\"frames_per_session\": {}, \
                 \"bytes_per_session_pooled\": {}, \
                 \"bytes_per_session_unpooled\": {}, \
                 \"allocs_per_frame_pooled\": {:.3}, \
                 \"allocs_per_frame_unpooled\": {:.3}, \
                 \"reduction_ratio\": {:.2}}},\n  \
                 \"simd\": {simd_json}\n}}\n",
                samples_to_decision < recording_len,
                fleet.sessions,
                fleet.hub_samples,
                piano_core::stream::scan_workers_from_env(),
                fleet.elapsed_s,
                fleet.session_samples_per_s,
                fleet.all_granted,
                net.feeds,
                net.wire_audio_bytes,
                net.raw_audio_bytes,
                net.compression_ratio,
                net.elapsed_s,
                net.wire_bytes_per_s,
                net.raw_bytes_per_s,
                net.all_granted,
                net.reactor_elapsed_s,
                net.per_conn_bytes_reactor,
                net.per_conn_bytes_threaded,
                net.conn_ceiling_reactor,
                net.conn_ceiling_threaded,
                net.conn_ceiling_ratio,
                net.reactor_all_granted,
                fault.feeds,
                fault.cut_feeds,
                fault.resumes,
                fault.client_retries,
                fault.resume_latency_ms,
                fault.elapsed_s,
                fault.all_granted,
                continuous.sessions,
                continuous.insert_ns,
                continuous.advance_ns,
                continuous.fired,
                continuous.o1_insert_ratio,
                continuous.o1_advance_ratio,
                continuous.all_fired,
                alloc.frames_per_session,
                alloc.bytes_per_session_pooled,
                alloc.bytes_per_session_unpooled,
                alloc.allocs_per_frame_pooled,
                alloc.allocs_per_frame_unpooled,
                alloc.reduction_ratio
            );
            let _ = std::fs::write(path, patched);
        }
    }
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
