//! Micro-benchmarks of the computational hot paths: the 4096-point FFT,
//! Algorithm 2's normalized power, the full Algorithm 1 scan, signal
//! synthesis, and the channel renderer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano_core::config::ActionConfig;
use piano_core::detect::{Detector, SignalSignature};
use piano_core::signal::ReferenceSignal;
use piano_dsp::fft::FftPlan;
use piano_dsp::Complex64;

fn bench_micro(c: &mut Criterion) {
    let config = ActionConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let signal = ReferenceSignal::random(&config, &mut rng);
    let signature = SignalSignature::of(&signal, &config);
    let detector = Detector::new(&config);

    // FFT 4096 — the unit the paper's compute budget counts.
    let plan = FftPlan::new(4096);
    let wave = signal.waveform();
    c.bench_function("fft_4096", |b| {
        b.iter_batched(
            || wave.iter().map(|&x| Complex64::from_real(x)).collect::<Vec<_>>(),
            |mut buf| plan.forward(&mut buf),
            BatchSize::SmallInput,
        )
    });

    // Algorithm 2 on a precomputed spectrum.
    let spectrum = detector.window_spectrum(&wave);
    c.bench_function("norm_power_algorithm2", |b| {
        b.iter(|| detector.norm_power(&spectrum, &signature))
    });

    // Algorithm 1 over a realistic 2 s recording with the signal embedded.
    let mut recording = vec![0.0; (2.0 * config.sample_rate) as usize];
    for (i, &v) in wave.iter().enumerate() {
        recording[30_000 + i] = 0.25 * v;
    }
    let mut group = c.benchmark_group("detection");
    group.sample_size(20);
    group.bench_function("algorithm1_scan_2s", |b| {
        b.iter(|| detector.detect(&recording, &signature))
    });
    group.finish();

    // Step I synthesis.
    c.bench_function("reference_signal_synthesis", |b| b.iter(|| signal.waveform()));

    // Channel render: one recording with one emission in an office.
    c.bench_function("acoustic_render_1s", |b| {
        use piano_acoustics::field::Emission;
        use piano_acoustics::*;
        b.iter_batched(
            || {
                let mut field = AcousticField::new(Environment::office(), 3);
                field.emit(Emission {
                    waveform: wave.clone(),
                    start_world_s: 0.2,
                    sample_interval_s: 1.0 / 44_100.0,
                    position: Position::ORIGIN,
                });
                field
            },
            |mut field| {
                field.render_recording(
                    &MicrophoneModel::phone(1),
                    &DeviceClock::ideal(),
                    Position::new(1.0, 0.0, 0.0),
                    0.0,
                    44_100,
                    44_100.0,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
