//! Bench + regeneration of Fig. 1 (distance-estimation error bars).

use criterion::{criterion_group, criterion_main, Criterion};
use piano_bench::{print_artifact, BENCH_SEED, BENCH_TRIALS};

fn bench_fig1(c: &mut Criterion) {
    // Regenerate the paper artifact once at the paper's 10 trials/point.
    let full = piano_eval::fig1::run(piano_eval::PAPER_TRIALS_PER_POINT, BENCH_SEED);
    print_artifact("Fig. 1", &full.table().render());

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("distance_error_grid", |b| {
        b.iter(|| piano_eval::fig1::run(BENCH_TRIALS, BENCH_SEED))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
