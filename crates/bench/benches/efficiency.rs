//! Bench + regeneration of Sec. VI-D (efficiency) plus the wall and
//! maximum-range experiments of Sec. VI-B.

use criterion::{criterion_group, criterion_main, Criterion};
use piano_bench::{print_artifact, BENCH_SEED, BENCH_TRIALS};

fn bench_efficiency(c: &mut Criterion) {
    let eff = piano_eval::efficiency::run(BENCH_SEED);
    print_artifact("Sec. VI-D efficiency", &eff.table().render());

    let wall = piano_eval::wall::run(5, BENCH_SEED);
    print_artifact("Sec. VI-B wall", &wall.table().render());

    let range = piano_eval::range::run(4, BENCH_SEED);
    print_artifact("Sec. VI-B max range", &range.table().render());

    let mut group = c.benchmark_group("efficiency");
    group.sample_size(10);
    group.bench_function("one_authentication_end_to_end", |b| {
        use piano_eval::trials::{run_trial, TrialSetup};
        let setup = TrialSetup::new(piano_acoustics::Environment::office(), 1.0, BENCH_SEED);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            run_trial(&setup, i)
        })
    });
    group.bench_function("wall_experiment", |b| {
        b.iter(|| piano_eval::wall::run(BENCH_TRIALS, BENCH_SEED))
    });
    group.finish();
}

criterion_group!(benches, bench_efficiency);
criterion_main!(benches);
