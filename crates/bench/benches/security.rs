//! Bench + regeneration of the Sec. VI-E security experiment and the
//! Sec. V guessing analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use piano_bench::{print_artifact, BENCH_SEED, BENCH_TRIALS};

fn bench_security(c: &mut Criterion) {
    let sec = piano_eval::security::run(10, BENCH_SEED);
    print_artifact("Sec. VI-E attack trials", &sec.table().render());
    assert_eq!(
        sec.total_successes(),
        0,
        "an attack succeeded in the bench run"
    );

    let guess = piano_eval::guessing::run(50_000, BENCH_SEED);
    print_artifact("Sec. V guessing analysis", &guess.table().render());

    let mut group = c.benchmark_group("security");
    group.sample_size(10);
    group.bench_function("attack_batches", |b| {
        b.iter(|| piano_eval::security::run(BENCH_TRIALS, BENCH_SEED))
    });
    group.bench_function("guessing_monte_carlo", |b| {
        b.iter(|| piano_eval::guessing::run(10_000, BENCH_SEED))
    });
    group.finish();
}

criterion_group!(benches, bench_security);
criterion_main!(benches);
