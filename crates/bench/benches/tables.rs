//! Bench + regeneration of Tables I (FRR) and II (FAR).

use criterion::{criterion_group, criterion_main, Criterion};
use piano_bench::{print_artifact, BENCH_SEED, BENCH_TRIALS};

fn bench_tables(c: &mut Criterion) {
    let full = piano_eval::tables::run(piano_eval::PAPER_TRIALS_PER_POINT, BENCH_SEED);
    print_artifact("Table I", &full.table_frr().render());
    print_artifact("Table II", &full.table_far().render());

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("sigma_fit_and_rates", |b| {
        b.iter(|| piano_eval::tables::run(BENCH_TRIALS.max(2), BENCH_SEED))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
