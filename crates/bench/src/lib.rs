//! # piano-bench
//!
//! Criterion benchmark harness: one bench target per paper table/figure
//! (each also prints the regenerated rows/series before timing) plus
//! micro-benchmarks of the DSP/detection hot paths.
//!
//! ```text
//! cargo bench --workspace            # run everything
//! cargo bench -p piano-bench --bench fig1
//! ```
//!
//! The experiment functions live in [`piano_eval`]; these benches time
//! them at reduced trial counts and print their tables, so `cargo bench`
//! regenerates every paper artifact in one command.

#![forbid(unsafe_code)]

/// Trials per point used inside benchmark loops (kept small: Criterion
/// repeats the closure many times).
pub const BENCH_TRIALS: usize = 2;

/// A fixed seed for benchmark determinism.
pub const BENCH_SEED: u64 = 0xBE7C;

/// Prints a rendered table once, flagged so bench logs are greppable.
pub fn print_artifact(label: &str, rendered: &str) {
    println!("\n=== paper artifact: {label} ===\n{rendered}");
}
