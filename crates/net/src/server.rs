//! The ingest server loop: deadline-supervised thread-per-connection
//! ingestion over one shared [`AuthService`].
//!
//! [`ServerLoop`] is the gateway half of the fleet-ingestion picture
//! (see the [crate docs](crate)): it accepts connections, runs one
//! [`FrameReader`] + [`IngestFeed`] + voucher
//! [`piano_core::stream::AuthSession`] per connection, drains decoded
//! audio into the scan, routes each feed's Step V report into one shared
//! [`AuthService`], and writes `Busy`/`Credit`/`Decision` replies back on
//! the connection. The matching client half is
//! [`FeedHandle`](crate::client::FeedHandle).
//!
//! # Fault isolation
//!
//! A connection that violates the protocol — loses framing (the
//! [`FrameReader`] poisons, with [`FrameReader::poison_cause`] saying
//! why), skips sequence numbers, or ignores `Busy` past the
//! [`IngestFeed::hard_limit`] — is **dropped alone**:
//! [`ServerLoop::serve`] logs the cause, counts it under its
//! [`DropCause`] in [`ServiceStats::drops`], closes that connection's
//! session, and every other feed proceeds untouched. The legacy failure
//! mode (a poisoned reader silently wedging its loop) cannot occur: the
//! loop propagates the poison cause as an error by construction.
//!
//! # Deadlines
//!
//! Every blocking point in the connection loop is bounded: the handshake
//! must complete within [`ServerConfig::handshake_timeout`], a mid-stream
//! silence longer than [`ServerConfig::idle_timeout`] times the feed out,
//! a whole stream may not outlive [`ServerConfig::stream_timeout`], and a
//! connection waiting on the hub verdict gives up after
//! [`ServerConfig::decision_timeout`]. A timed-out connection is dropped
//! alone under [`DropCause::Timeout`] — one stalled feed can never wedge
//! [`ServerLoop::wait_for_reports`] or hold the service lock.
//!
//! # Reconnect and resume
//!
//! With [`ServerConfig::resume_window`] non-zero, a feed whose transport
//! dies mid-stream is *suspended* instead of dropped: its
//! [`IngestFeed`] + voucher state parks in a registry keyed by the wire
//! session id. A client that reconnects within the window and opens with
//! [`Message::Resume`] is answered by [`Message::ResumeAck`] carrying the
//! first sequence number the server never accepted, and the stream
//! continues exactly where it broke — the delivered sample stream is
//! byte-identical to an unbroken run. Suspensions that outlive the window
//! are dropped under [`DropCause::ResumeExpired`].
//!
//! # Overload shedding
//!
//! With [`ServerConfig::max_active_feeds`] set, a [`Message::Hello`]
//! arriving while that many feeds are already streaming is answered with
//! [`Message::Retry`] (carrying [`ServerConfig::retry_after_ms`]) and the
//! connection closes before any session state is allocated — admission
//! control degrades service gracefully instead of letting the backlog
//! grow without bound. Shed connections count in
//! [`ServiceStats::connections_shed`], not as drops.
//!
//! # One scan epoch
//!
//! An [`AuthService`] scan group's signature set is fixed once hub audio
//! flows, so a `ServerLoop` serves one *epoch*: connections arrive and
//! stream, the host calls [`ServerLoop::scan_and_decide`] with the hub
//! microphone's recording once every feed reported (see
//! [`ServerLoop::wait_for_reports`]), and the per-connection threads then
//! deliver the verdicts. Re-verification afterwards goes through
//! [`piano_core::continuous::ContinuousScheduler`] on the same service.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand_chacha::ChaCha8Rng;

use piano_core::error::PianoError;
use piano_core::piano::{AuthDecision, DenialReason};
use piano_core::stream::{AuthService, AuthSession, DropCause, ServiceStats, SessionId};
use piano_core::sync::OrderedMutex;
use piano_core::wire::{FrameReader, IngestFeed, Message, WireCodec};

use crate::codec;
use crate::framing::{io_transport, read_frame_deadline, READ_BUF_BYTES};
use crate::metrics::{audio_samples, Counters, FeedState};
use crate::transport::{Listener, Transport};

/// How often the report-waiting host re-checks the suspension registry
/// for expired resume windows while suspensions exist.
const SUSPEND_TICK: Duration = Duration::from_millis(25);

/// Tuning knobs of a [`ServerLoop`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-feed buffered-sample high-water mark ([`IngestFeed::new`]).
    pub high_water: usize,
    /// Samples drained from a feed into its voucher scan per loop turn —
    /// the server's simulated scan rate, which is what makes
    /// backpressure observable at all.
    pub drain_chunk: usize,
    /// Codecs this server accepts, in no particular order (the *client's*
    /// preference order wins among these).
    pub supported_codecs: Vec<WireCodec>,
    /// A connection must complete its opening exchange (`Hello` or
    /// `Resume`, through the challenge write) within this long.
    pub handshake_timeout: Duration,
    /// Longest mid-stream silence tolerated while the feed's backlog is
    /// empty; a feed quiet longer is dropped under [`DropCause::Timeout`].
    pub idle_timeout: Duration,
    /// Budget for a feed's whole stream, handshake to `StreamEnd`
    /// (spanning suspensions and resumes) — the slow-feed watchdog.
    pub stream_timeout: Duration,
    /// How long a reported connection waits for the hub scan's verdict
    /// before giving up.
    pub decision_timeout: Duration,
    /// How long a feed whose transport died may remain suspended awaiting
    /// a [`Message::Resume`]. `Duration::ZERO` (the default) disables
    /// resume: a lost transport drops the feed immediately.
    pub resume_window: Duration,
    /// Admission limit: a `Hello` arriving while this many feeds are
    /// actively streaming is shed with [`Message::Retry`].
    /// `usize::MAX` (the default) disables shedding.
    pub max_active_feeds: usize,
    /// The back-off hint written in the [`Message::Retry`] a shed
    /// connection receives.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            high_water: 6_000,
            drain_chunk: 2_048,
            supported_codecs: vec![WireCodec::Raw, WireCodec::I16Delta],
            handshake_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            stream_timeout: Duration::from_secs(300),
            decision_timeout: Duration::from_secs(300),
            resume_window: Duration::ZERO,
            max_active_feeds: usize::MAX,
            retry_after_ms: 50,
        }
    }
}

/// Cross-thread progress state guarded by one mutex (+ condvar).
#[derive(Debug, Default)]
struct Progress {
    /// Step V reports routed into the service so far.
    reports: usize,
    /// Connections dropped for protocol violations or deadline misses —
    /// counted here (not just in the stats) so
    /// [`ServerLoop::wait_for_reports`] can stop waiting for feeds that
    /// will never report.
    dropped: usize,
    /// Feeds attached and streaming right now — the admission-control
    /// population [`ServerConfig::max_active_feeds`] bounds.
    active: usize,
    /// The hub scan has started: sessions can no longer be closed.
    scan_started: bool,
    /// The hub scan finished: decisions are available.
    scan_done: bool,
}

/// What a suspended wire session is waiting to resume *into*.
#[derive(Debug)]
enum SuspendedState {
    /// Mid-stream: the feed continues from `state.feed.next_seq()`.
    Streaming(Box<FeedState>),
    /// The verdict is (or will be) available; a resume just re-delivers
    /// the `Decision` frame the client never received.
    Decided { id: SessionId },
}

/// One entry in the resume registry.
#[derive(Debug)]
struct Suspended {
    state: SuspendedState,
    expires: Instant,
}

/// How a connection concluded without being dropped.
enum ConnOutcome {
    /// Streamed, reported, and received its verdict.
    Done(SessionId, AuthDecision),
    /// Transport died; the feed parked in the resume registry.
    Suspended,
    /// Refused at admission with [`Message::Retry`].
    Shed,
}

/// A connection failure, classified for the drop counters.
struct ConnError {
    /// The service session to close, if one was opened.
    id: Option<SessionId>,
    cause: DropCause,
    err: PianoError,
    /// Do **not** count this failure in [`Progress::dropped`]: the feed it
    /// belongs to is already accounted for there (it reported, or it is
    /// still live elsewhere — e.g. a rejected `Resume` probe for a feed
    /// whose original thread has not parked it yet).
    waived: bool,
}

/// How the ingest loop failed, which decides the feed's fate.
enum StreamFailure {
    /// Protocol/deadline violation: drop the feed under `DropCause`.
    Fatal(DropCause, PianoError),
    /// The transport died but the protocol state is intact: suspend the
    /// feed if a resume window is configured, else drop it.
    Lost(PianoError),
}

/// The server's shared state, all locks ranked for
/// [`OrderedMutex`]'s debug-build order checker. The documented order is
/// `progress → service → rng` (ascending rank); `suspended` and `ids` are
/// leaf locks — nothing is acquired under them.
#[derive(Debug)]
struct Shared {
    service: OrderedMutex<AuthService>,
    rng: OrderedMutex<ChaCha8Rng>,
    cfg: ServerConfig,
    counters: Counters,
    progress: OrderedMutex<Progress>,
    progress_cv: Condvar,
    ids: OrderedMutex<Vec<SessionId>>,
    /// Resume registry: wire session id → parked feed, while
    /// [`ServerConfig::resume_window`] lasts.
    suspended: OrderedMutex<HashMap<u64, Suspended>>,
    /// Signaled by [`ServerLoop::park`] whenever a registry entry lands,
    /// so a `Resume` probe that raced ahead of the suspension wakes
    /// immediately instead of polling.
    suspended_cv: Condvar,
}

/// Lock ranks of the [`Shared`] mutexes: acquisition must ascend.
mod rank {
    pub(super) const PROGRESS: u32 = 10;
    pub(super) const SERVICE: u32 = 20;
    pub(super) const RNG: u32 = 30;
    pub(super) const SUSPENDED: u32 = 40;
    pub(super) const IDS: u32 = 50;
}

/// The thread-per-connection ingest server over one shared
/// [`AuthService`]. Cheap to clone (an `Arc` handle) — pass clones into
/// accept/connection threads.
#[derive(Clone, Debug)]
pub struct ServerLoop {
    shared: Arc<Shared>,
}

impl ServerLoop {
    /// A server loop over `service`, drawing session randomness from
    /// `rng` (connection handshakes draw in accept order, so a seeded rng
    /// makes a whole fleet run reproducible).
    pub fn new(service: AuthService, rng: ChaCha8Rng, cfg: ServerConfig) -> Self {
        ServerLoop {
            shared: Arc::new(Shared {
                service: OrderedMutex::new(rank::SERVICE, "server.service", service),
                rng: OrderedMutex::new(rank::RNG, "server.rng", rng),
                cfg,
                counters: Counters::default(),
                progress: OrderedMutex::new(rank::PROGRESS, "server.progress", Progress::default()),
                progress_cv: Condvar::new(),
                ids: OrderedMutex::new(rank::IDS, "server.ids", Vec::new()),
                suspended: OrderedMutex::new(rank::SUSPENDED, "server.suspended", HashMap::new()),
                suspended_cv: Condvar::new(),
            }),
        }
    }

    /// Runs `f` against the shared service (registration, waveform
    /// lookups, scheduler epilogues). Keep the closure short — every
    /// connection thread contends on this lock.
    pub fn with_service<R>(&self, f: impl FnOnce(&mut AuthService) -> R) -> R {
        f(&mut self.shared.service.lock())
    }

    /// Session ids opened by connections so far, in opening order
    /// (ascending — the service assigns ids sequentially, so sorting
    /// restores opening order even when handshakes raced).
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids = self.shared.ids.lock().clone();
        ids.sort();
        ids
    }

    /// Accepts `n` connections from `listener`, serving each on its own
    /// thread via [`serve`](Self::serve). Returns the connection thread
    /// handles; join them after [`scan_and_decide`](Self::scan_and_decide)
    /// to collect per-connection outcomes (`None` = dropped, shed, or
    /// suspended without a resume).
    pub fn accept_clients<L: Listener>(
        &self,
        listener: &mut L,
        n: usize,
    ) -> Vec<JoinHandle<Option<(SessionId, AuthDecision)>>> {
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            match listener.accept_conn() {
                Ok(conn) => {
                    let server = self.clone();
                    handles.push(std::thread::spawn(move || server.serve(conn)));
                }
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    break;
                }
            }
        }
        handles
    }

    /// Serves one connection, logging and absorbing any failure: the
    /// documented drop-only-this-connection path. Returns `None` when the
    /// connection did not carry a feed to its verdict — dropped (cause to
    /// stderr and [`ServiceStats::drops`]), shed at admission, or
    /// suspended into the resume registry (a later resumed connection
    /// delivers the verdict instead); the service and every other
    /// connection keep running.
    pub fn serve<T: Transport>(&self, transport: T) -> Option<(SessionId, AuthDecision)> {
        match self.handle_connection(transport) {
            Ok(ConnOutcome::Done(id, decision)) => Some((id, decision)),
            Ok(ConnOutcome::Suspended) | Ok(ConnOutcome::Shed) => None,
            Err(e) => {
                self.shared.counters.count_drop(e.cause);
                eprintln!(
                    "dropping connection{}: {} [{}]",
                    match e.id {
                        Some(id) => format!(" (session {id:?})"),
                        None => String::new(),
                    },
                    e.err,
                    e.cause,
                );
                if let Some(id) = e.id {
                    self.close_if_not_scanning(id);
                }
                if !e.waived {
                    // Count the drop where wait_for_reports can see it, so
                    // a host waiting on this feed's report unblocks instead
                    // of hanging forever.
                    let mut progress = self.shared.progress.lock();
                    progress.dropped += 1;
                    self.shared.progress_cv.notify_all();
                }
                None
            }
        }
    }

    /// Closes a dropped connection's service session, unless the hub scan
    /// already fixed the group's signature set (then the undecided
    /// session is simply left behind; it never reports, so it never
    /// decides). Lock order is progress → service, matching
    /// [`scan_and_decide`](Self::scan_and_decide), so the check cannot
    /// race the scan start.
    fn close_if_not_scanning(&self, id: SessionId) {
        let progress = self.shared.progress.lock();
        if !progress.scan_started {
            let mut service = self.shared.service.lock();
            let _ = service.close_session(id);
        }
    }

    /// Decrements the active-feed population (attach's inverse).
    fn dec_active(&self) {
        let mut progress = self.shared.progress.lock();
        progress.active = progress.active.saturating_sub(1);
    }

    /// The full per-connection protocol: opening exchange, then the feed
    /// lifecycle via [`run_feed`](Self::run_feed).
    fn handle_connection<T: Transport>(&self, mut t: T) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        sh.counters.connections.fetch_add(1, Ordering::Relaxed);
        let mut reader = FrameReader::new();
        let mut buf = vec![0u8; READ_BUF_BYTES];

        let hs_deadline = Instant::now() + sh.cfg.handshake_timeout;
        let first = read_frame_deadline(&mut t, &mut reader, &mut buf, hs_deadline, "handshake")
            .map_err(|(cause, err)| ConnError {
                id: None,
                cause,
                err,
                waived: false,
            })?;

        let state = match first {
            Message::Hello { codecs } => {
                // Admission control before any session state exists: shed
                // with a retry hint while the streaming population is at
                // the limit.
                {
                    let progress = sh.progress.lock();
                    if progress.active >= sh.cfg.max_active_feeds {
                        drop(progress);
                        sh.counters.connections_shed.fetch_add(1, Ordering::Relaxed);
                        let _ = t.write_all(
                            &Message::Retry {
                                retry_after_ms: sh.cfg.retry_after_ms,
                            }
                            .encode_framed(),
                        );
                        return Ok(ConnOutcome::Shed);
                    }
                }
                let codec = WireCodec::negotiate(&codecs, &sh.cfg.supported_codecs);
                let (id, challenge, detector) = {
                    let mut service = sh.service.lock();
                    let mut rng = sh.rng.lock();
                    let id = service.open_session(false, &mut rng);
                    // A freshly opened session always queues its Step II
                    // challenge; treat a missing one as a protocol-layer
                    // failure rather than a server panic.
                    match service.poll_transmit(id) {
                        Some(challenge) => (id, challenge, Arc::clone(service.detector())),
                        None => {
                            let _ = service.close_session(id);
                            return Err(ConnError {
                                id: None,
                                cause: DropCause::Protocol,
                                err: PianoError::Wire("opened session queued no challenge".into()),
                                waived: false,
                            });
                        }
                    }
                };
                sh.ids.lock().push(id);
                {
                    let mut progress = sh.progress.lock();
                    progress.active += 1;
                }
                // From the attach point on, every pre-report exit must
                // decrement `active` exactly once.
                let fail = |cause: DropCause, err: PianoError| {
                    self.dec_active();
                    ConnError {
                        id: Some(id),
                        cause,
                        err,
                        waived: false,
                    }
                };
                let mut voucher = AuthSession::voucher_with(detector);
                voucher
                    .handle_message(challenge.clone())
                    .map_err(|e| fail(DropCause::Protocol, e))?;
                let wire_session = voucher.session_id();
                t.write_all(
                    &Message::Accept {
                        session: wire_session,
                        codec: codec.id(),
                    }
                    .encode_framed(),
                )
                .map_err(|e| fail(DropCause::Disconnect, io_transport(e)))?;
                // The thin client must *play* S_V (Step III) even though
                // the gateway scans on its behalf, so it gets the Step II
                // challenge.
                t.write_all(&challenge.encode_framed())
                    .map_err(|e| fail(DropCause::Disconnect, io_transport(e)))?;
                Box::new(FeedState {
                    id,
                    wire_session,
                    voucher,
                    feed: IngestFeed::new(wire_session, sh.cfg.high_water),
                    ended: false,
                    started: Instant::now(),
                })
            }
            Message::Resume { session, next_seq } => {
                return self.resume_connection(t, reader, buf, session, next_seq, hs_deadline);
            }
            other => {
                return Err(ConnError {
                    id: None,
                    cause: DropCause::Protocol,
                    err: PianoError::Wire(format!("expected Hello or Resume, got {other:?}")),
                    waived: false,
                })
            }
        };
        self.run_feed(t, reader, buf, state)
    }

    /// Re-attaches a reconnecting client to its suspended feed.
    ///
    /// The registry entry may not exist *yet*: the dead connection's
    /// thread discovers the loss asynchronously (often only at its next
    /// write), so a prompt reconnect can beat the suspension. The lookup
    /// therefore waits on the registry condvar — woken the moment
    /// [`park`](Self::park) lands the entry — until the handshake
    /// deadline before rejecting.
    fn resume_connection<T: Transport>(
        &self,
        mut t: T,
        reader: FrameReader,
        buf: Vec<u8>,
        wire_session: u64,
        client_next_seq: u32,
        hs_deadline: Instant,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        let entry = loop {
            // Expiry first, so a lapsed entry for this session is dropped
            // under ResumeExpired rather than resurrected here. The
            // expiry pass takes the registry lock itself, so it must run
            // before this iteration's guard is taken.
            self.expire_suspended(Instant::now());
            // Check under the guard: park() inserts under this same
            // lock, so between here and the wait below no entry can slip
            // in unobserved.
            let mut registry = sh.suspended.lock();
            if let Some(e) = registry.remove(&wire_session) {
                break e;
            }
            let now = Instant::now();
            if now >= hs_deadline {
                return Err(ConnError {
                    id: None,
                    cause: DropCause::Protocol,
                    err: PianoError::Wire(format!(
                        "resume for unknown or expired session {wire_session:#x}"
                    )),
                    // The feed this probe hoped to resume is accounted
                    // for elsewhere (still live, already dropped, or
                    // never existed): never double-count it in the wait.
                    waived: true,
                });
            }
            drop(registry.wait_timeout(&sh.suspended_cv, hs_deadline - now).0);
        };
        sh.counters.resumes.fetch_add(1, Ordering::Relaxed);
        match entry.state {
            SuspendedState::Streaming(mut state) => {
                {
                    let mut progress = sh.progress.lock();
                    progress.active += 1;
                }
                // Flow-control replies queued for the dead transport are
                // stale; the ack below re-synchronizes both sides at the
                // feed's contiguity cursor.
                state.feed.resync_flow();
                // `client_next_seq` may trail the feed's cursor (the
                // client lost Credit bytes, not audio) or lead it (the
                // server lost audio in flight); either way the ack's
                // cursor wins and the client replays from there.
                let _ = client_next_seq;
                let ack = Message::ResumeAck {
                    session: wire_session,
                    ack_seq: state.feed.next_seq(),
                    ended: state.ended,
                };
                match t.write_all(&ack.encode_framed()) {
                    Ok(()) => {}
                    Err(e) => return self.suspend_streaming(state, io_transport(e)),
                }
                self.run_feed(t, reader, buf, state)
            }
            SuspendedState::Decided { id } => {
                let ack = Message::ResumeAck {
                    session: wire_session,
                    ack_seq: client_next_seq,
                    ended: true,
                };
                if let Err(e) = t.write_all(&ack.encode_framed()) {
                    // Park the verdict again for the next attempt.
                    self.park(
                        wire_session,
                        SuspendedState::Decided { id },
                        Instant::now() + sh.cfg.resume_window,
                    );
                    return Err(ConnError {
                        id: None,
                        cause: DropCause::Disconnect,
                        err: io_transport(e),
                        waived: true,
                    });
                }
                self.await_scan_and_deliver(&mut t, id, wire_session)
            }
        }
    }

    /// Inserts a registry entry, wakes any `Resume` probe blocked on the
    /// registry condvar, and nudges the report waiter so its tick loop
    /// starts watching this suspension's expiry.
    fn park(&self, wire_session: u64, state: SuspendedState, expires: Instant) {
        self.shared
            .suspended
            .lock()
            .insert(wire_session, Suspended { state, expires });
        self.shared.suspended_cv.notify_all();
        self.shared.progress_cv.notify_all();
    }

    /// Parks a mid-stream feed whose transport died — or drops it when no
    /// resume window is configured.
    fn suspend_streaming(
        &self,
        state: Box<FeedState>,
        err: PianoError,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        self.dec_active();
        if sh.cfg.resume_window.is_zero() {
            return Err(ConnError {
                id: Some(state.id),
                cause: DropCause::Disconnect,
                err,
                waived: false,
            });
        }
        sh.counters
            .connections_suspended
            .fetch_add(1, Ordering::Relaxed);
        let wire_session = state.wire_session;
        let expires = Instant::now() + sh.cfg.resume_window;
        self.park(wire_session, SuspendedState::Streaming(state), expires);
        Ok(ConnOutcome::Suspended)
    }

    /// Drops registry entries whose resume window has lapsed. Expired
    /// mid-stream feeds are dropped under [`DropCause::ResumeExpired`]
    /// (counted toward the report wait); expired verdict entries are
    /// forgotten silently — their feed already reported and decided.
    fn expire_suspended(&self, now: Instant) {
        let expired: Vec<Suspended> = {
            let mut map = self.shared.suspended.lock();
            if map.is_empty() {
                return;
            }
            let lapsed: Vec<u64> = map
                .iter()
                .filter(|(_, s)| s.expires <= now)
                .map(|(&k, _)| k)
                .collect();
            lapsed.into_iter().filter_map(|k| map.remove(&k)).collect()
        };
        for s in expired {
            match s.state {
                SuspendedState::Streaming(state) => {
                    self.shared.counters.count_drop(DropCause::ResumeExpired);
                    eprintln!(
                        "dropping connection (session {:?}): resume window expired [{}]",
                        state.id,
                        DropCause::ResumeExpired,
                    );
                    self.close_if_not_scanning(state.id);
                    let mut progress = self.shared.progress.lock();
                    progress.dropped += 1;
                    self.shared.progress_cv.notify_all();
                }
                SuspendedState::Decided { .. } => {}
            }
        }
    }

    /// The attached-feed lifecycle: ingest until `StreamEnd` + drained,
    /// route the Step V report, then wait out the hub scan and deliver
    /// the verdict.
    fn run_feed<T: Transport>(
        &self,
        mut t: T,
        mut reader: FrameReader,
        mut buf: Vec<u8>,
        mut state: Box<FeedState>,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        match self.ingest_loop(&mut t, &mut reader, &mut buf, &mut state) {
            Ok(()) => {}
            Err(StreamFailure::Fatal(cause, err)) => {
                self.dec_active();
                return Err(ConnError {
                    id: Some(state.id),
                    cause,
                    err,
                    waived: false,
                });
            }
            Err(StreamFailure::Lost(err)) => return self.suspend_streaming(state, err),
        }
        sh.counters.max_peak(state.feed.peak_buffered() as u64);

        // -- Conclude the voucher scan and route its Step V report.
        let _ = state.voucher.finish_audio();
        let report = match state.voucher.poll_transmit() {
            Some(r) => r,
            None => {
                self.dec_active();
                return Err(ConnError {
                    id: Some(state.id),
                    cause: DropCause::Protocol,
                    err: PianoError::Wire("voucher produced no report".into()),
                    waived: false,
                });
            }
        };
        if let Err(e) = sh.service.lock().handle_message(state.id, report) {
            self.dec_active();
            return Err(ConnError {
                id: Some(state.id),
                cause: DropCause::Protocol,
                err: e,
                waived: false,
            });
        }
        {
            let mut progress = sh.progress.lock();
            progress.reports += 1;
            progress.active = progress.active.saturating_sub(1);
            sh.progress_cv.notify_all();
        }
        self.await_scan_and_deliver(&mut t, state.id, state.wire_session)
    }

    /// Ingest: frames → feed accounting → voucher scan → replies, every
    /// blocking read bounded by the idle and whole-stream deadlines.
    fn ingest_loop<T: Transport>(
        &self,
        t: &mut T,
        reader: &mut FrameReader,
        buf: &mut [u8],
        state: &mut FeedState,
    ) -> Result<(), StreamFailure> {
        let sh = &*self.shared;
        let stream_deadline = state.started + sh.cfg.stream_timeout;
        loop {
            // Block for bytes only when there is no scan work pending;
            // otherwise poll, so a paused sender cannot stall the drain
            // that will eventually grant its credit. The blocking wait is
            // where both watchdogs bite: idle (nothing arrived lately) and
            // whole-stream (the budget since the handshake ran out).
            let n = if state.feed.buffered() == 0 && !state.ended {
                let now = Instant::now();
                if now >= stream_deadline {
                    return Err(StreamFailure::Fatal(
                        DropCause::Timeout,
                        PianoError::Timeout("stream budget exhausted mid-stream".into()),
                    ));
                }
                let wait = sh.cfg.idle_timeout.min(stream_deadline - now);
                match t.read_timeout(buf, wait) {
                    Ok(0) => {
                        return Err(StreamFailure::Lost(PianoError::Transport(
                            "connection closed before StreamEnd".into(),
                        )))
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                        return Err(StreamFailure::Fatal(
                            DropCause::Timeout,
                            PianoError::Timeout(format!("feed idle for {wait:?} mid-stream")),
                        ))
                    }
                    Err(e) => return Err(StreamFailure::Lost(io_transport(e))),
                }
            } else {
                match t.try_read(buf) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => 0,
                    Err(e) => return Err(StreamFailure::Lost(io_transport(e))),
                }
            };
            if n > 0 {
                reader.push(&buf[..n]);
            }
            loop {
                let before = reader.consumed();
                // A framing error propagates the reader's poison cause:
                // this connection is dropped, nothing else is.
                let msg = match reader.next_frame() {
                    Ok(Some(m)) => m,
                    Ok(None) => break,
                    Err(e) => return Err(StreamFailure::Fatal(DropCause::Framing, e)),
                };
                match msg {
                    m @ (Message::AudioChunk { .. }
                    | Message::AudioBatch { .. }
                    | Message::AudioBatchI16 { .. }) => {
                        // `accept` enforces sequence contiguity and the
                        // backlog hard limit; violating either drops the
                        // connection here. Classify the hard-limit breach
                        // (a sender ignoring Busy) apart from the rest.
                        let overrun =
                            state.feed.buffered() + audio_samples(&m) > state.feed.hard_limit();
                        if let Err(e) = state.feed.accept(&m) {
                            let cause = if overrun {
                                DropCause::Overrun
                            } else {
                                DropCause::Protocol
                            };
                            return Err(StreamFailure::Fatal(cause, e));
                        }
                        sh.counters.frames_decoded.fetch_add(1, Ordering::Relaxed);
                        sh.counters
                            .wire_audio_bytes
                            .fetch_add(reader.consumed() - before, Ordering::Relaxed);
                        sh.counters
                            .raw_audio_bytes
                            .fetch_add(codec::raw_framed_audio_bytes(&m), Ordering::Relaxed);
                    }
                    Message::StreamEnd { session: s } if s == state.wire_session => {
                        state.ended = true;
                    }
                    other => {
                        return Err(StreamFailure::Fatal(
                            DropCause::Protocol,
                            PianoError::Wire(format!("unexpected mid-stream message {other:?}")),
                        ))
                    }
                }
            }
            let samples = state.feed.take_pending(sh.cfg.drain_chunk);
            if !samples.is_empty() {
                let _ = state.voucher.push_audio(&samples);
            }
            while let Some(reply) = state.feed.poll_reply() {
                match &reply {
                    Message::Busy { .. } => {
                        sh.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    Message::Credit { .. } => {
                        sh.counters.credit_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                t.write_all(&reply.encode_framed())
                    .map_err(|e| StreamFailure::Lost(io_transport(e)))?;
            }
            if state.ended && state.feed.buffered() == 0 {
                return Ok(());
            }
        }
    }

    /// Waits (bounded by [`ServerConfig::decision_timeout`]) for the hub
    /// scan, then delivers the verdict. With a resume window configured,
    /// the verdict is parked in the registry *before* the write, so a
    /// client that loses the connection with the `Decision` frame in
    /// flight can reconnect and have it re-sent.
    fn await_scan_and_deliver<T: Transport>(
        &self,
        t: &mut T,
        id: SessionId,
        wire_session: u64,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        let deadline = Instant::now() + sh.cfg.decision_timeout;
        // Post-report failures are waived: this feed already counted in
        // Progress::reports, so adding it to Progress::dropped would make
        // the wait see one feed twice.
        {
            let mut progress = sh.progress.lock();
            while !progress.scan_done {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ConnError {
                        id: Some(id),
                        cause: DropCause::Timeout,
                        err: PianoError::Timeout(
                            "hub scan did not conclude within the decision deadline".into(),
                        ),
                        waived: true,
                    });
                }
                let (guard, _) = progress.wait_timeout(&sh.progress_cv, deadline - now);
                progress = guard;
            }
        }
        let decision = sh
            .service
            .lock()
            .decision(id)
            .cloned()
            .unwrap_or(AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure(
                    "session undecided after the hub scan".into(),
                ),
            });
        if !sh.cfg.resume_window.is_zero() {
            self.park(
                wire_session,
                SuspendedState::Decided { id },
                Instant::now() + sh.cfg.resume_window,
            );
        }
        match t.write_all(
            &Message::Decision {
                session: wire_session,
                decision: decision.clone(),
            }
            .encode_framed(),
        ) {
            Ok(()) => Ok(ConnOutcome::Done(id, decision)),
            Err(e) if !sh.cfg.resume_window.is_zero() => {
                // The Decided entry parked above lets the client resume
                // and re-read the verdict; this thread's work is done.
                let _ = e;
                Ok(ConnOutcome::Suspended)
            }
            Err(e) => Err(ConnError {
                id: Some(id),
                cause: DropCause::Disconnect,
                err: io_transport(e),
                waived: true,
            }),
        }
    }

    /// Blocks until each of `n` accepted connections has either routed
    /// its Step V report or been dropped — the signal that every healthy
    /// connection finished streaming and the host may scan the hub
    /// recording. Returns the number that actually reported, so partial
    /// failure is observable instead of hanging the host forever.
    ///
    /// Feeds sitting in the resume registry count as neither until they
    /// resume (and report) or their window expires (and they drop): the
    /// wait ticks while suspensions exist, so an abandoned feed holds the
    /// scan up for at most its resume window.
    ///
    /// Unbounded — a test-only convenience. Production hosts should call
    /// [`wait_for_reports_timeout`](Self::wait_for_reports_timeout).
    pub fn wait_for_reports(&self, n: usize) -> usize {
        self.wait_reports_deadline(n, None)
            .expect("unbounded wait cannot time out")
    }

    /// [`wait_for_reports`](Self::wait_for_reports) bounded by `timeout`.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds have reported or
    /// dropped within `timeout`.
    pub fn wait_for_reports_timeout(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<usize, PianoError> {
        self.wait_reports_deadline(n, Some(Instant::now() + timeout))
    }

    fn wait_reports_deadline(
        &self,
        n: usize,
        deadline: Option<Instant>,
    ) -> Result<usize, PianoError> {
        let sh = &*self.shared;
        loop {
            self.expire_suspended(Instant::now());
            let suspensions = !sh.suspended.lock().is_empty();
            let progress = sh.progress.lock();
            if progress.reports + progress.dropped >= n {
                return Ok(progress.reports);
            }
            let now = Instant::now();
            if let Some(d) = deadline {
                if now >= d {
                    return Err(PianoError::Timeout(format!(
                        "{} of {n} feeds concluded before the report deadline",
                        progress.reports + progress.dropped
                    )));
                }
            }
            let tick = match (suspensions, deadline) {
                (false, None) => None,
                (true, None) => Some(SUSPEND_TICK),
                (false, Some(d)) => Some(d - now),
                (true, Some(d)) => Some(SUSPEND_TICK.min(d - now)),
            };
            match tick {
                None => drop(progress.wait(&sh.progress_cv)),
                Some(wait) => drop(progress.wait_timeout(&sh.progress_cv, wait).0),
            }
        }
    }

    /// Streams the hub microphone's recording through the service in
    /// `tick`-sample chunks, concludes every scan group, releases the
    /// waiting connection threads to deliver their verdicts, and returns
    /// the number of sessions that decided.
    pub fn scan_and_decide(&self, hub_audio: &[f64], tick: usize) -> usize {
        let decided;
        {
            // progress → service, the crate-wide lock order.
            let mut progress = self.shared.progress.lock();
            let mut service = self.shared.service.lock();
            progress.scan_started = true;
            drop(progress);
            for chunk in hub_audio.chunks(tick.max(1)) {
                let _ = service.push_audio(chunk);
            }
            let _ = service.finish_audio();
            decided = service.sessions_decided();
        }
        let mut progress = self.shared.progress.lock();
        progress.scan_done = true;
        self.shared.progress_cv.notify_all();
        drop(progress);
        decided
    }

    /// A point-in-time [`ServiceStats`] snapshot across every connection
    /// served so far.
    pub fn stats(&self) -> ServiceStats {
        self.shared
            .counters
            .snapshot(self.with_service(|s| s.sessions_decided()) as u64)
    }
}
