//! The ingest server loop and the client-side feed handle.
//!
//! [`ServerLoop`] is the gateway half of the fleet-ingestion picture
//! (see the [crate docs](crate)): it accepts connections, runs one
//! [`FrameReader`] + [`IngestFeed`] + voucher
//! [`piano_core::stream::AuthSession`] per connection, drains decoded
//! audio into the scan, routes each feed's Step V report into one shared
//! [`AuthService`], and writes `Busy`/`Credit`/`Decision` replies back on
//! the connection. [`FeedHandle`] is the matching client: it negotiates a
//! codec, streams a recording as framed batches, pauses on `Busy`,
//! resumes on `Credit`, and waits for the verdict.
//!
//! # Fault isolation
//!
//! A connection that violates the protocol — loses framing (the
//! [`FrameReader`] poisons, with [`FrameReader::poison_cause`] saying
//! why), skips sequence numbers, or ignores `Busy` past the
//! [`IngestFeed::hard_limit`] — is **dropped alone**:
//! [`ServerLoop::serve`] logs the cause, counts it in
//! [`ServiceStats::connections_dropped`], closes that connection's
//! session, and every other feed proceeds untouched. The legacy failure
//! mode (a poisoned reader silently wedging its loop) cannot occur: the
//! loop propagates the poison cause as an error by construction.
//!
//! # One scan epoch
//!
//! An [`AuthService`] scan group's signature set is fixed once hub audio
//! flows, so a `ServerLoop` serves one *epoch*: connections arrive and
//! stream, the host calls [`ServerLoop::scan_and_decide`] with the hub
//! microphone's recording once every feed reported (see
//! [`ServerLoop::wait_for_reports`]), and the per-connection threads then
//! deliver the verdicts. Re-verification afterwards goes through
//! [`piano_core::continuous::ContinuousScheduler`] on the same service.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rand_chacha::ChaCha8Rng;

use piano_core::error::PianoError;
use piano_core::piano::{AuthDecision, DenialReason};
use piano_core::stream::{AuthService, AuthSession, ServiceStats, SessionId};
use piano_core::wire::{FrameReader, IngestFeed, Message, WireCodec};

use crate::codec;
use crate::transport::{Listener, Transport};

/// Read-buffer size for connection loops: large enough that one read
/// turn can outpace the per-turn drain even for raw `f64` frames, so
/// watermark backpressure is observable under either codec.
const READ_BUF_BYTES: usize = 64 * 1024;

/// Maps a transport I/O failure into the wire error domain.
fn io_wire(e: io::Error) -> PianoError {
    PianoError::Wire(format!("transport I/O failure: {e}"))
}

/// Blocks until one complete frame arrives on `t`.
fn read_frame<T: Transport>(
    t: &mut T,
    reader: &mut FrameReader,
    buf: &mut [u8],
) -> Result<Message, PianoError> {
    loop {
        if let Some(msg) = reader.next_frame()? {
            return Ok(msg);
        }
        match t.read_some(buf) {
            Ok(0) => return Err(PianoError::Wire("connection closed mid-frame".into())),
            Ok(n) => reader.push(&buf[..n]),
            Err(e) => return Err(io_wire(e)),
        }
    }
}

/// Tuning knobs of a [`ServerLoop`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-feed buffered-sample high-water mark ([`IngestFeed::new`]).
    pub high_water: usize,
    /// Samples drained from a feed into its voucher scan per loop turn —
    /// the server's simulated scan rate, which is what makes
    /// backpressure observable at all.
    pub drain_chunk: usize,
    /// Codecs this server accepts, in no particular order (the *client's*
    /// preference order wins among these).
    pub supported_codecs: Vec<WireCodec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            high_water: 6_000,
            drain_chunk: 2_048,
            supported_codecs: vec![WireCodec::Raw, WireCodec::I16Delta],
        }
    }
}

/// Atomic ingestion counters, aggregated across connection threads.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    connections_dropped: AtomicU64,
    frames_decoded: AtomicU64,
    wire_audio_bytes: AtomicU64,
    raw_audio_bytes: AtomicU64,
    peak_feed_backlog: AtomicU64,
    busy_replies: AtomicU64,
    credit_replies: AtomicU64,
}

impl Counters {
    fn max_peak(&self, candidate: u64) {
        self.peak_feed_backlog
            .fetch_max(candidate, Ordering::Relaxed);
    }
}

/// Cross-thread progress state guarded by one mutex (+ condvar).
#[derive(Debug, Default)]
struct Progress {
    /// Step V reports routed into the service so far.
    reports: usize,
    /// Connections dropped for protocol violations — counted here (not
    /// just in the stats) so [`ServerLoop::wait_for_reports`] can stop
    /// waiting for feeds that will never report.
    dropped: usize,
    /// The hub scan has started: sessions can no longer be closed.
    scan_started: bool,
    /// The hub scan finished: decisions are available.
    scan_done: bool,
}

#[derive(Debug)]
struct Shared {
    service: Mutex<AuthService>,
    rng: Mutex<ChaCha8Rng>,
    cfg: ServerConfig,
    counters: Counters,
    progress: Mutex<Progress>,
    progress_cv: Condvar,
    ids: Mutex<Vec<SessionId>>,
}

/// The thread-per-connection ingest server over one shared
/// [`AuthService`]. Cheap to clone (an `Arc` handle) — pass clones into
/// accept/connection threads.
#[derive(Clone, Debug)]
pub struct ServerLoop {
    shared: Arc<Shared>,
}

impl ServerLoop {
    /// A server loop over `service`, drawing session randomness from
    /// `rng` (connection handshakes draw in accept order, so a seeded rng
    /// makes a whole fleet run reproducible).
    pub fn new(service: AuthService, rng: ChaCha8Rng, cfg: ServerConfig) -> Self {
        ServerLoop {
            shared: Arc::new(Shared {
                service: Mutex::new(service),
                rng: Mutex::new(rng),
                cfg,
                counters: Counters::default(),
                progress: Mutex::new(Progress::default()),
                progress_cv: Condvar::new(),
                ids: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Runs `f` against the shared service (registration, waveform
    /// lookups, scheduler epilogues). Keep the closure short — every
    /// connection thread contends on this lock.
    pub fn with_service<R>(&self, f: impl FnOnce(&mut AuthService) -> R) -> R {
        f(&mut self.shared.service.lock().expect("service lock"))
    }

    /// Session ids opened by connections so far, in opening order
    /// (ascending — the service assigns ids sequentially, so sorting
    /// restores opening order even when handshakes raced).
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids = self.shared.ids.lock().expect("ids lock").clone();
        ids.sort();
        ids
    }

    /// Accepts `n` connections from `listener`, serving each on its own
    /// thread via [`serve`](Self::serve). Returns the connection thread
    /// handles; join them after [`scan_and_decide`](Self::scan_and_decide)
    /// to collect per-connection outcomes (`None` = dropped).
    pub fn accept_clients<L: Listener>(
        &self,
        listener: &mut L,
        n: usize,
    ) -> Vec<JoinHandle<Option<(SessionId, AuthDecision)>>> {
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            match listener.accept_conn() {
                Ok(conn) => {
                    let server = self.clone();
                    handles.push(std::thread::spawn(move || server.serve(conn)));
                }
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    break;
                }
            }
        }
        handles
    }

    /// Serves one connection, logging and absorbing any protocol failure:
    /// the documented drop-only-this-connection path. Returns `None` when
    /// the connection was dropped (its cause goes to stderr and
    /// [`ServiceStats::connections_dropped`]); the service and every
    /// other connection keep running.
    pub fn serve<T: Transport>(&self, transport: T) -> Option<(SessionId, AuthDecision)> {
        match self.handle_connection(transport) {
            Ok(out) => Some(out),
            Err((id, e)) => {
                self.shared
                    .counters
                    .connections_dropped
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "dropping connection{}: {e}",
                    match id {
                        Some(id) => format!(" (session {id:?})"),
                        None => String::new(),
                    }
                );
                if let Some(id) = id {
                    self.close_if_not_scanning(id);
                }
                // Count the drop where wait_for_reports can see it, so a
                // host waiting on this feed's report unblocks instead of
                // hanging forever.
                let mut progress = self.shared.progress.lock().expect("progress lock");
                progress.dropped += 1;
                self.shared.progress_cv.notify_all();
                None
            }
        }
    }

    /// Closes a dropped connection's service session, unless the hub scan
    /// already fixed the group's signature set (then the undecided
    /// session is simply left behind; it never reports, so it never
    /// decides). Lock order is progress → service, matching
    /// [`scan_and_decide`](Self::scan_and_decide), so the check cannot
    /// race the scan start.
    fn close_if_not_scanning(&self, id: SessionId) {
        let progress = self.shared.progress.lock().expect("progress lock");
        if !progress.scan_started {
            let mut service = self.shared.service.lock().expect("service lock");
            let _ = service.close_session(id);
        }
    }

    /// The full per-connection protocol. On error, returns the session id
    /// (if one was opened) so [`serve`](Self::serve) can clean it up.
    #[allow(clippy::type_complexity)]
    fn handle_connection<T: Transport>(
        &self,
        mut t: T,
    ) -> Result<(SessionId, AuthDecision), (Option<SessionId>, PianoError)> {
        let sh = &*self.shared;
        sh.counters.connections.fetch_add(1, Ordering::Relaxed);
        let mut reader = FrameReader::new();
        let mut buf = vec![0u8; READ_BUF_BYTES];

        // -- Handshake: Hello → negotiate → open session → Accept + challenge.
        let hello = read_frame(&mut t, &mut reader, &mut buf).map_err(|e| (None, e))?;
        let Message::Hello { codecs } = hello else {
            return Err((
                None,
                PianoError::Wire(format!("expected Hello, got {hello:?}")),
            ));
        };
        let codec = WireCodec::negotiate(&codecs, &sh.cfg.supported_codecs);
        let (id, challenge, detector) = {
            let mut service = sh.service.lock().expect("service lock");
            let mut rng = sh.rng.lock().expect("rng lock");
            let id = service.open_session(false, &mut rng);
            let challenge = service.poll_transmit(id).expect("challenge queued");
            (id, challenge, Arc::clone(service.detector()))
        };
        sh.ids.lock().expect("ids lock").push(id);
        let fail = |e: PianoError| (Some(id), e);
        let mut voucher = AuthSession::voucher_with(detector);
        voucher.handle_message(challenge.clone()).map_err(fail)?;
        let session = voucher.session_id();
        t.write_all(
            &Message::Accept {
                session,
                codec: codec.id(),
            }
            .encode_framed(),
        )
        .map_err(|e| fail(io_wire(e)))?;
        // The thin client must *play* S_V (Step III) even though the
        // gateway scans on its behalf, so it gets the Step II challenge.
        t.write_all(&challenge.encode_framed())
            .map_err(|e| fail(io_wire(e)))?;

        // -- Ingest: frames → feed accounting → voucher scan → replies.
        let mut feed = IngestFeed::new(session, sh.cfg.high_water);
        let mut ended = false;
        loop {
            // Block for bytes only when there is no scan work pending;
            // otherwise poll, so a paused sender cannot stall the drain
            // that will eventually grant its credit.
            let n = if feed.buffered() == 0 && !ended {
                match t.read_some(&mut buf) {
                    Ok(0) => {
                        return Err(fail(PianoError::Wire(
                            "connection closed before StreamEnd".into(),
                        )))
                    }
                    Ok(n) => n,
                    Err(e) => return Err(fail(io_wire(e))),
                }
            } else {
                match t.try_read(&mut buf) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => 0,
                    Err(e) => return Err(fail(io_wire(e))),
                }
            };
            if n > 0 {
                reader.push(&buf[..n]);
            }
            loop {
                let before = reader.consumed();
                // A framing error propagates the reader's poison cause:
                // this connection is dropped, nothing else is.
                let msg = match reader.next_frame().map_err(fail)? {
                    Some(m) => m,
                    None => break,
                };
                match msg {
                    m @ (Message::AudioChunk { .. }
                    | Message::AudioBatch { .. }
                    | Message::AudioBatchI16 { .. }) => {
                        // `accept` enforces sequence contiguity and the
                        // backlog hard limit; violating either drops the
                        // connection here.
                        feed.accept(&m).map_err(fail)?;
                        sh.counters.frames_decoded.fetch_add(1, Ordering::Relaxed);
                        sh.counters
                            .wire_audio_bytes
                            .fetch_add(reader.consumed() - before, Ordering::Relaxed);
                        sh.counters
                            .raw_audio_bytes
                            .fetch_add(codec::raw_framed_audio_bytes(&m), Ordering::Relaxed);
                    }
                    Message::StreamEnd { session: s } if s == session => ended = true,
                    other => {
                        return Err(fail(PianoError::Wire(format!(
                            "unexpected mid-stream message {other:?}"
                        ))))
                    }
                }
            }
            let samples = feed.take_pending(sh.cfg.drain_chunk);
            if !samples.is_empty() {
                let _ = voucher.push_audio(&samples);
            }
            while let Some(reply) = feed.poll_reply() {
                match &reply {
                    Message::Busy { .. } => {
                        sh.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    Message::Credit { .. } => {
                        sh.counters.credit_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                t.write_all(&reply.encode_framed())
                    .map_err(|e| fail(io_wire(e)))?;
            }
            if ended && feed.buffered() == 0 {
                break;
            }
        }
        sh.counters.max_peak(feed.peak_buffered() as u64);

        // -- Conclude the voucher scan and route its Step V report.
        let _ = voucher.finish_audio();
        let report = voucher
            .poll_transmit()
            .ok_or_else(|| fail(PianoError::Wire("voucher produced no report".into())))?;
        sh.service
            .lock()
            .expect("service lock")
            .handle_message(id, report)
            .map_err(fail)?;
        {
            let mut progress = sh.progress.lock().expect("progress lock");
            progress.reports += 1;
            sh.progress_cv.notify_all();
        }

        // -- Wait for the hub scan, then deliver the verdict.
        {
            let mut progress = sh.progress.lock().expect("progress lock");
            while !progress.scan_done {
                progress = sh.progress_cv.wait(progress).expect("progress lock");
            }
        }
        let decision = sh
            .service
            .lock()
            .expect("service lock")
            .decision(id)
            .cloned()
            .unwrap_or(AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure(
                    "session undecided after the hub scan".into(),
                ),
            });
        t.write_all(
            &Message::Decision {
                session,
                decision: decision.clone(),
            }
            .encode_framed(),
        )
        .map_err(|e| fail(io_wire(e)))?;
        Ok((id, decision))
    }

    /// Blocks until each of `n` accepted connections has either routed
    /// its Step V report or been dropped — the signal that every healthy
    /// connection finished streaming and the host may scan the hub
    /// recording. Returns the number that actually reported, so partial
    /// failure is observable instead of hanging the host forever.
    pub fn wait_for_reports(&self, n: usize) -> usize {
        let mut progress = self.shared.progress.lock().expect("progress lock");
        while progress.reports + progress.dropped < n {
            progress = self
                .shared
                .progress_cv
                .wait(progress)
                .expect("progress lock");
        }
        progress.reports
    }

    /// Streams the hub microphone's recording through the service in
    /// `tick`-sample chunks, concludes every scan group, releases the
    /// waiting connection threads to deliver their verdicts, and returns
    /// the number of sessions that decided.
    pub fn scan_and_decide(&self, hub_audio: &[f64], tick: usize) -> usize {
        let decided;
        {
            // progress → service, the crate-wide lock order.
            let mut progress = self.shared.progress.lock().expect("progress lock");
            let mut service = self.shared.service.lock().expect("service lock");
            progress.scan_started = true;
            drop(progress);
            for chunk in hub_audio.chunks(tick.max(1)) {
                let _ = service.push_audio(chunk);
            }
            let _ = service.finish_audio();
            decided = service.sessions_decided();
        }
        let mut progress = self.shared.progress.lock().expect("progress lock");
        progress.scan_done = true;
        self.shared.progress_cv.notify_all();
        drop(progress);
        decided
    }

    /// A point-in-time [`ServiceStats`] snapshot across every connection
    /// served so far.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        ServiceStats {
            connections: c.connections.load(Ordering::Relaxed),
            connections_dropped: c.connections_dropped.load(Ordering::Relaxed),
            frames_decoded: c.frames_decoded.load(Ordering::Relaxed),
            wire_audio_bytes: c.wire_audio_bytes.load(Ordering::Relaxed),
            raw_audio_bytes: c.raw_audio_bytes.load(Ordering::Relaxed),
            peak_feed_backlog: c.peak_feed_backlog.load(Ordering::Relaxed),
            busy_replies: c.busy_replies.load(Ordering::Relaxed),
            credit_replies: c.credit_replies.load(Ordering::Relaxed),
            sessions_decided: self.with_service(|s| s.sessions_decided()) as u64,
        }
    }
}

/// The client half of one feed: codec negotiation, credit-paced batch
/// streaming, and verdict delivery over any [`Transport`].
#[derive(Debug)]
pub struct FeedHandle<T: Transport> {
    t: T,
    reader: FrameReader,
    buf: Vec<u8>,
    session: u64,
    codec: WireCodec,
    challenge: Message,
    next_seq: u32,
    paused: bool,
    wire_audio_bytes: u64,
    raw_audio_bytes: u64,
    busy_seen: u64,
    credit_seen: u64,
}

impl<T: Transport> FeedHandle<T> {
    /// Performs the client handshake: offers `offered` (preference
    /// order), reads the server's [`Message::Accept`] and the Step II
    /// challenge.
    ///
    /// # Errors
    ///
    /// [`PianoError::Wire`] if the transport fails or the server answers
    /// out of protocol.
    pub fn connect(mut t: T, offered: &[WireCodec]) -> Result<Self, PianoError> {
        let hello = Message::Hello {
            codecs: offered.iter().map(|c| c.id()).collect(),
        };
        t.write_all(&hello.encode_framed()).map_err(io_wire)?;
        let mut reader = FrameReader::new();
        let mut buf = vec![0u8; READ_BUF_BYTES];
        let accept = read_frame(&mut t, &mut reader, &mut buf)?;
        let Message::Accept { session, codec } = accept else {
            return Err(PianoError::Wire(format!("expected Accept, got {accept:?}")));
        };
        let codec = WireCodec::from_id(codec)
            .ok_or_else(|| PianoError::Wire(format!("server accepted unknown codec {codec}")))?;
        let challenge = read_frame(&mut t, &mut reader, &mut buf)?;
        match &challenge {
            Message::ReferenceSignals { session: s, .. } if *s == session => {}
            other => {
                return Err(PianoError::Wire(format!(
                    "expected the session {session:#x} challenge, got {other:?}"
                )))
            }
        }
        Ok(FeedHandle {
            t,
            reader,
            buf,
            session,
            codec,
            challenge,
            next_seq: 0,
            paused: false,
            wire_audio_bytes: 0,
            raw_audio_bytes: 0,
            busy_seen: 0,
            credit_seen: 0,
        })
    }

    /// The wire session id the server assigned.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The negotiated audio codec.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// The Step II challenge ([`Message::ReferenceSignals`]) — the thin
    /// device reconstructs its playback signal `S_V` from this.
    pub fn challenge(&self) -> &Message {
        &self.challenge
    }

    /// Unwraps the underlying transport, abandoning the handle's pacing
    /// state. Misbehaving-sender tests use this to write raw bytes the
    /// handle would never produce.
    pub fn into_transport(self) -> T {
        self.t
    }

    /// Audio bytes this handle has put on the wire (framed, post-codec).
    pub fn wire_audio_bytes(&self) -> u64 {
        self.wire_audio_bytes
    }

    /// What the same audio would have cost raw (framed `f64` batches).
    pub fn raw_audio_bytes(&self) -> u64 {
        self.raw_audio_bytes
    }

    /// `Busy` replies received so far.
    pub fn busy_seen(&self) -> u64 {
        self.busy_seen
    }

    /// `Credit` replies received so far.
    pub fn credit_seen(&self) -> u64 {
        self.credit_seen
    }

    /// Consumes pending flow-control replies. With `block_for_credit`,
    /// blocks until the outstanding `Busy` is answered — the pacing that
    /// keeps a cooperating sender under the receiver's hard limit.
    fn drain_replies(&mut self, block_for_credit: bool) -> Result<(), PianoError> {
        loop {
            while let Some(msg) = self.reader.next_frame()? {
                match msg {
                    Message::Busy { .. } => {
                        self.busy_seen += 1;
                        self.paused = true;
                    }
                    Message::Credit { .. } => {
                        self.credit_seen += 1;
                        self.paused = false;
                    }
                    other => {
                        return Err(PianoError::Wire(format!(
                            "unexpected reply while streaming: {other:?}"
                        )))
                    }
                }
            }
            if block_for_credit && self.paused {
                match self.t.read_some(&mut self.buf) {
                    Ok(0) => {
                        return Err(PianoError::Wire(
                            "server closed while the feed awaited credit".into(),
                        ))
                    }
                    Ok(n) => {
                        let chunk = &self.buf[..n];
                        self.reader.push(chunk);
                    }
                    Err(e) => return Err(io_wire(e)),
                }
                continue;
            }
            match self.t.try_read(&mut self.buf) {
                Ok(0) => return Ok(()), // EOF: surfaced by the next blocking read
                Ok(n) => {
                    let chunk = &self.buf[..n];
                    self.reader.push(chunk);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(io_wire(e)),
            }
        }
    }

    /// Sends one batch of consecutive chunks under the negotiated codec,
    /// first honoring any outstanding `Busy` (blocking until `Credit`).
    pub fn send_batch(&mut self, chunks: &[Vec<f64>]) -> Result<(), PianoError> {
        self.drain_replies(false)?;
        if self.paused {
            self.drain_replies(true)?;
        }
        let msg = codec::encode_audio_batch(self.codec, self.session, self.next_seq, chunks);
        self.next_seq += chunks.len() as u32;
        let framed = msg.encode_framed();
        self.wire_audio_bytes += framed.len() as u64;
        self.raw_audio_bytes += codec::raw_framed_audio_bytes(&msg);
        self.t.write_all(&framed).map_err(io_wire)
    }

    /// Streams a whole recording: `chunk_len`-sample chunks,
    /// `chunks_per_batch` chunks per frame, credit-paced.
    pub fn send_recording(
        &mut self,
        recording: &[f64],
        chunk_len: usize,
        chunks_per_batch: usize,
    ) -> Result<(), PianoError> {
        let chunks: Vec<Vec<f64>> = recording
            .chunks(chunk_len.max(1))
            .map(<[f64]>::to_vec)
            .collect();
        for batch in chunks.chunks(chunks_per_batch.max(1)) {
            self.send_batch(batch)?;
        }
        Ok(())
    }

    /// Signals end-of-recording for this feed.
    pub fn finish(&mut self) -> Result<(), PianoError> {
        self.t
            .write_all(
                &Message::StreamEnd {
                    session: self.session,
                }
                .encode_framed(),
            )
            .map_err(io_wire)
    }

    /// Blocks until the server delivers this session's verdict (late
    /// flow-control replies in between are absorbed).
    pub fn await_decision(&mut self) -> Result<AuthDecision, PianoError> {
        loop {
            let msg = match self.reader.next_frame()? {
                Some(m) => m,
                None => match self.t.read_some(&mut self.buf) {
                    Ok(0) => {
                        return Err(PianoError::Wire(
                            "server closed before delivering a decision".into(),
                        ))
                    }
                    Ok(n) => {
                        let chunk = &self.buf[..n];
                        self.reader.push(chunk);
                        continue;
                    }
                    Err(e) => return Err(io_wire(e)),
                },
            };
            match msg {
                Message::Decision { session, decision } if session == self.session => {
                    return Ok(decision)
                }
                Message::Busy { .. } => self.busy_seen += 1,
                Message::Credit { .. } => self.credit_seen += 1,
                other => {
                    return Err(PianoError::Wire(format!(
                        "expected Decision, got {other:?}"
                    )))
                }
            }
        }
    }
}
