//! The ingest server loop: deadline-supervised thread-per-connection
//! ingestion over one shared [`AuthService`].
//!
//! [`ServerLoop`] is the gateway half of the fleet-ingestion picture
//! (see the [crate docs](crate)): it accepts connections, runs one
//! [`FrameReader`] + [`IngestFeed`] + voucher
//! [`piano_core::stream::AuthSession`] per connection, drains decoded
//! audio into the scan, routes each feed's Step V report into one shared
//! [`AuthService`], and writes `Busy`/`Credit`/`Decision` replies back on
//! the connection. The matching client half is
//! [`FeedHandle`](crate::client::FeedHandle).
//!
//! # Fault isolation
//!
//! A connection that violates the protocol — loses framing (the
//! [`FrameReader`] poisons, with [`FrameReader::poison_cause`] saying
//! why), skips sequence numbers, or ignores `Busy` past the
//! [`IngestFeed::hard_limit`] — is **dropped alone**:
//! [`ServerLoop::serve`] logs the cause, counts it under its
//! [`DropCause`] in [`ServiceStats::drops`], closes that connection's
//! session, and every other feed proceeds untouched. The legacy failure
//! mode (a poisoned reader silently wedging its loop) cannot occur: the
//! loop propagates the poison cause as an error by construction.
//!
//! # Deadlines
//!
//! Every blocking point in the connection loop is bounded: the handshake
//! must complete within [`ServerConfig::handshake_timeout`], a mid-stream
//! silence longer than [`ServerConfig::idle_timeout`] times the feed out,
//! a whole stream may not outlive [`ServerConfig::stream_timeout`], and a
//! connection waiting on the hub verdict gives up after
//! [`ServerConfig::decision_timeout`]. A timed-out connection is dropped
//! alone under [`DropCause::Timeout`] — one stalled feed can never wedge
//! [`ServerLoop::wait_for_reports`] or hold the service lock.
//!
//! # Reconnect and resume
//!
//! With [`ServerConfig::resume_window`] non-zero, a feed whose transport
//! dies mid-stream is *suspended* instead of dropped: its
//! [`IngestFeed`] + voucher state parks in a registry keyed by the wire
//! session id. A client that reconnects within the window and opens with
//! [`Message::Resume`] is answered by [`Message::ResumeAck`] carrying the
//! first sequence number the server never accepted, and the stream
//! continues exactly where it broke — the delivered sample stream is
//! byte-identical to an unbroken run. Suspensions that outlive the window
//! are dropped under [`DropCause::ResumeExpired`].
//!
//! # Overload shedding
//!
//! With [`ServerConfig::max_active_feeds`] set, a [`Message::Hello`]
//! arriving while that many feeds are already streaming is answered with
//! [`Message::Retry`] (carrying [`ServerConfig::retry_after_ms`]) and the
//! connection closes before any session state is allocated — admission
//! control degrades service gracefully instead of letting the backlog
//! grow without bound. Shed connections count in
//! [`ServiceStats::connections_shed`], not as drops.
//!
//! # One scan epoch
//!
//! An [`AuthService`] scan group's signature set is fixed once hub audio
//! flows, so a `ServerLoop` serves one *epoch*: connections arrive and
//! stream, the host calls [`ServerLoop::scan_and_decide`] with the hub
//! microphone's recording once every feed reported (see
//! [`ServerLoop::wait_for_reports`]), and the per-connection threads then
//! deliver the verdicts. Re-verification afterwards goes through
//! [`piano_core::continuous::ContinuousScheduler`] on the same service.
//!
//! # Standing sessions and wire re-challenge
//!
//! With [`ServerConfig::standing`] set, a granted feed does **not** close
//! after its `Decision` frame: the connection parks in a *standing loop*,
//! and the host re-verifies the whole fleet over the live connections —
//! no reconnects — in batched *re-challenge rounds* driven by
//! [`ServerLoop::begin_recheck_round`]. Each round replays the PIANO
//! protocol end to end on a **fresh** per-round service session: the
//! server writes [`Message::Recheck`] (fresh Step II reference signals
//! under the feed's original wire session id), the client plays and
//! records, streams the recording back as [`Message::RecheckAudio`]
//! frames, the gateway voucher re-ranges and routes a fresh Step V
//! report, the host scans one hub recording for the whole round
//! ([`ServerLoop::recheck_scan_and_decide`] — one coarse pass for every
//! standing feed, the batching the hierarchical scan group makes cheap),
//! and the connection delivers [`Message::RecheckVerdict`]. Rounds repeat
//! until [`ServerLoop::end_standing`]. Risk-adaptive round *timing* is
//! the host's job — drive it from
//! [`piano_core::continuum::Continuum`]'s timer wheel.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand_chacha::ChaCha8Rng;

use piano_core::error::PianoError;
use piano_core::piano::{AuthDecision, DenialReason};
use piano_core::stream::{AuthService, AuthSession, DropCause, ServiceStats, SessionId};
use piano_core::sync::OrderedMutex;
use piano_core::pool::FramePool;
use piano_core::wire::{FrameReader, IngestFeed, Message, WireCodec};

use crate::codec;
use crate::framing::{io_transport, read_frame_deadline, READ_BUF_BYTES};
use crate::metrics::{audio_samples, Counters, FeedState};
use crate::transport::{Listener, Transport};

/// How often the report-waiting host re-checks the suspension registry
/// for expired resume windows while suspensions exist.
const SUSPEND_TICK: Duration = Duration::from_millis(25);

/// Tuning knobs of a [`ServerLoop`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-feed buffered-sample high-water mark ([`IngestFeed::new`]).
    pub high_water: usize,
    /// Samples drained from a feed into its voucher scan per loop turn —
    /// the server's simulated scan rate, which is what makes
    /// backpressure observable at all.
    pub drain_chunk: usize,
    /// Codecs this server accepts, in no particular order (the *client's*
    /// preference order wins among these).
    pub supported_codecs: Vec<WireCodec>,
    /// A connection must complete its opening exchange (`Hello` or
    /// `Resume`, through the challenge write) within this long.
    pub handshake_timeout: Duration,
    /// Longest mid-stream silence tolerated while the feed's backlog is
    /// empty; a feed quiet longer is dropped under [`DropCause::Timeout`].
    pub idle_timeout: Duration,
    /// Budget for a feed's whole stream, handshake to `StreamEnd`
    /// (spanning suspensions and resumes) — the slow-feed watchdog.
    pub stream_timeout: Duration,
    /// How long a reported connection waits for the hub scan's verdict
    /// before giving up.
    pub decision_timeout: Duration,
    /// How long a feed whose transport died may remain suspended awaiting
    /// a [`Message::Resume`]. `Duration::ZERO` (the default) disables
    /// resume: a lost transport drops the feed immediately.
    pub resume_window: Duration,
    /// Admission limit: a `Hello` arriving while this many feeds are
    /// actively streaming is shed with [`Message::Retry`].
    /// `usize::MAX` (the default) disables shedding.
    pub max_active_feeds: usize,
    /// The back-off hint written in the [`Message::Retry`] a shed
    /// connection receives.
    pub retry_after_ms: u64,
    /// Keep granted feeds connected as *standing* sessions after their
    /// verdict, serving wire re-challenge rounds
    /// ([`Message::Recheck`] → [`Message::RecheckAudio`] →
    /// [`Message::RecheckVerdict`]) until [`ServerLoop::end_standing`].
    /// Off by default: the classic one-epoch flow delivers the verdict
    /// and closes.
    pub standing: bool,
    /// Budget for one re-challenge round's client half: from the
    /// [`Message::Recheck`] write until the round's final
    /// [`Message::RecheckAudio`] arrives.
    pub recheck_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            high_water: 6_000,
            drain_chunk: 2_048,
            supported_codecs: vec![WireCodec::Raw, WireCodec::I16Delta],
            handshake_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            stream_timeout: Duration::from_secs(300),
            decision_timeout: Duration::from_secs(300),
            resume_window: Duration::ZERO,
            max_active_feeds: usize::MAX,
            retry_after_ms: 50,
            standing: false,
            recheck_timeout: Duration::from_secs(30),
        }
    }
}

/// Cross-thread progress state guarded by one mutex (+ condvar).
#[derive(Debug, Default)]
struct Progress {
    /// Step V reports routed into the service so far.
    reports: usize,
    /// Connections dropped for protocol violations or deadline misses —
    /// counted here (not just in the stats) so
    /// [`ServerLoop::wait_for_reports`] can stop waiting for feeds that
    /// will never report.
    dropped: usize,
    /// Feeds attached and streaming right now — the admission-control
    /// population [`ServerConfig::max_active_feeds`] bounds.
    active: usize,
    /// The hub scan has started: sessions can no longer be closed.
    scan_started: bool,
    /// The hub scan finished: decisions are available.
    scan_done: bool,
    /// Granted feeds parked in the standing loop, awaiting re-challenge
    /// rounds.
    standing: usize,
    /// The re-check round the host last commanded (0 = none yet).
    recheck_round: u64,
    /// Standing feeds that routed their report for the current round.
    recheck_ready: usize,
    /// Standing feeds that failed out of the current round (their report
    /// will never arrive — the recheck wait counts them so it cannot
    /// hang).
    recheck_dropped: usize,
    /// The last round whose hub scan concluded (verdicts available).
    recheck_scanned: u64,
    /// Per-round service sessions opened by standing feeds, cleared by
    /// each round's scan.
    recheck_ids: Vec<SessionId>,
    /// The host ended standing service: parked feeds exit and close.
    standing_over: bool,
}

/// What a suspended wire session is waiting to resume *into*.
#[derive(Debug)]
enum SuspendedState {
    /// Mid-stream: the feed continues from `state.feed.next_seq()`.
    Streaming(Box<FeedState>),
    /// The verdict is (or will be) available; a resume just re-delivers
    /// the `Decision` frame the client never received.
    Decided { id: SessionId },
}

/// One entry in the resume registry.
#[derive(Debug)]
struct Suspended {
    state: SuspendedState,
    expires: Instant,
}

/// How a connection concluded without being dropped.
enum ConnOutcome {
    /// Streamed, reported, and received its verdict.
    Done(SessionId, AuthDecision),
    /// Transport died; the feed parked in the resume registry.
    Suspended,
    /// Refused at admission with [`Message::Retry`].
    Shed,
}

/// A connection failure, classified for the drop counters.
struct ConnError {
    /// The service session to close, if one was opened.
    id: Option<SessionId>,
    cause: DropCause,
    err: PianoError,
    /// Do **not** count this failure in [`Progress::dropped`]: the feed it
    /// belongs to is already accounted for there (it reported, or it is
    /// still live elsewhere — e.g. a rejected `Resume` probe for a feed
    /// whose original thread has not parked it yet).
    waived: bool,
}

/// How the ingest loop failed, which decides the feed's fate.
enum StreamFailure {
    /// Protocol/deadline violation: drop the feed under `DropCause`.
    Fatal(DropCause, PianoError),
    /// The transport died but the protocol state is intact: suspend the
    /// feed if a resume window is configured, else drop it.
    Lost(PianoError),
}

/// The server's shared state, all locks ranked for
/// [`OrderedMutex`]'s debug-build order checker. The documented order is
/// `progress → service → rng` (ascending rank); `suspended` and `ids` are
/// leaf locks — nothing is acquired under them.
#[derive(Debug)]
struct Shared {
    service: OrderedMutex<AuthService>,
    rng: OrderedMutex<ChaCha8Rng>,
    cfg: ServerConfig,
    counters: Counters,
    progress: OrderedMutex<Progress>,
    progress_cv: Condvar,
    ids: OrderedMutex<Vec<SessionId>>,
    /// Resume registry: wire session id → parked feed, while
    /// [`ServerConfig::resume_window`] lasts.
    suspended: OrderedMutex<HashMap<u64, Suspended>>,
    /// Signaled by [`ServerLoop::park`] whenever a registry entry lands,
    /// so a `Resume` probe that raced ahead of the suspension wakes
    /// immediately instead of polling.
    suspended_cv: Condvar,
    /// Server-wide slab pool audio frames decode into: every
    /// connection's [`FrameReader`] and [`IngestFeed`] draw from (and
    /// recycle to) this one pool, so steady-state ingestion reuses a
    /// bounded working set instead of allocating per frame.
    pool: FramePool,
}

/// Lock ranks of the [`Shared`] mutexes: acquisition must ascend.
mod rank {
    pub(super) const PROGRESS: u32 = 10;
    pub(super) const SERVICE: u32 = 20;
    pub(super) const RNG: u32 = 30;
    pub(super) const SUSPENDED: u32 = 40;
    pub(super) const IDS: u32 = 50;
}

/// The thread-per-connection ingest server over one shared
/// [`AuthService`]. Cheap to clone (an `Arc` handle) — pass clones into
/// accept/connection threads.
#[derive(Clone, Debug)]
pub struct ServerLoop {
    shared: Arc<Shared>,
}

impl ServerLoop {
    /// A server loop over `service`, drawing session randomness from
    /// `rng` (connection handshakes draw in accept order, so a seeded rng
    /// makes a whole fleet run reproducible).
    pub fn new(service: AuthService, rng: ChaCha8Rng, cfg: ServerConfig) -> Self {
        ServerLoop {
            shared: Arc::new(Shared {
                service: OrderedMutex::new(rank::SERVICE, "server.service", service),
                rng: OrderedMutex::new(rank::RNG, "server.rng", rng),
                cfg,
                counters: Counters::default(),
                progress: OrderedMutex::new(rank::PROGRESS, "server.progress", Progress::default()),
                progress_cv: Condvar::new(),
                ids: OrderedMutex::new(rank::IDS, "server.ids", Vec::new()),
                suspended: OrderedMutex::new(rank::SUSPENDED, "server.suspended", HashMap::new()),
                suspended_cv: Condvar::new(),
                pool: FramePool::new(),
            }),
        }
    }

    /// Runs `f` against the shared service (registration, waveform
    /// lookups, scheduler epilogues). Keep the closure short — every
    /// connection thread contends on this lock.
    pub fn with_service<R>(&self, f: impl FnOnce(&mut AuthService) -> R) -> R {
        f(&mut self.shared.service.lock())
    }

    /// Session ids opened by connections so far, in opening order
    /// (ascending — the service assigns ids sequentially, so sorting
    /// restores opening order even when handshakes raced).
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids = self.shared.ids.lock().clone();
        ids.sort();
        ids
    }

    /// Accepts `n` connections from `listener`, serving each on its own
    /// thread via [`serve`](Self::serve). Returns the connection thread
    /// handles; join them after [`scan_and_decide`](Self::scan_and_decide)
    /// to collect per-connection outcomes (`None` = dropped, shed, or
    /// suspended without a resume).
    pub fn accept_clients<L: Listener>(
        &self,
        listener: &mut L,
        n: usize,
    ) -> Vec<JoinHandle<Option<(SessionId, AuthDecision)>>> {
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            match listener.accept_conn() {
                Ok(conn) => {
                    let server = self.clone();
                    handles.push(std::thread::spawn(move || server.serve(conn)));
                }
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    break;
                }
            }
        }
        handles
    }

    /// Serves one connection, logging and absorbing any failure: the
    /// documented drop-only-this-connection path. Returns `None` when the
    /// connection did not carry a feed to its verdict — dropped (cause to
    /// stderr and [`ServiceStats::drops`]), shed at admission, or
    /// suspended into the resume registry (a later resumed connection
    /// delivers the verdict instead); the service and every other
    /// connection keep running.
    pub fn serve<T: Transport>(&self, transport: T) -> Option<(SessionId, AuthDecision)> {
        match self.handle_connection(transport) {
            Ok(ConnOutcome::Done(id, decision)) => Some((id, decision)),
            Ok(ConnOutcome::Suspended) | Ok(ConnOutcome::Shed) => None,
            Err(e) => {
                self.shared.counters.count_drop(e.cause);
                eprintln!(
                    "dropping connection{}: {} [{}]",
                    match e.id {
                        Some(id) => format!(" (session {id:?})"),
                        None => String::new(),
                    },
                    e.err,
                    e.cause,
                );
                if let Some(id) = e.id {
                    self.close_if_not_scanning(id);
                }
                if !e.waived {
                    // Count the drop where wait_for_reports can see it, so
                    // a host waiting on this feed's report unblocks instead
                    // of hanging forever.
                    let mut progress = self.shared.progress.lock();
                    progress.dropped += 1;
                    self.shared.progress_cv.notify_all();
                }
                None
            }
        }
    }

    /// Closes a dropped connection's service session, unless the hub scan
    /// already fixed the group's signature set (then the undecided
    /// session is simply left behind; it never reports, so it never
    /// decides). Lock order is progress → service, matching
    /// [`scan_and_decide`](Self::scan_and_decide), so the check cannot
    /// race the scan start.
    fn close_if_not_scanning(&self, id: SessionId) {
        let progress = self.shared.progress.lock();
        if !progress.scan_started {
            let mut service = self.shared.service.lock();
            let _ = service.close_session(id);
        }
    }

    /// Decrements the active-feed population (attach's inverse).
    fn dec_active(&self) {
        let mut progress = self.shared.progress.lock();
        progress.active = progress.active.saturating_sub(1);
    }

    /// The full per-connection protocol: opening exchange, then the feed
    /// lifecycle via [`run_feed`](Self::run_feed).
    fn handle_connection<T: Transport>(&self, mut t: T) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        sh.counters.connections.fetch_add(1, Ordering::Relaxed);
        let mut reader = FrameReader::with_pool(sh.pool.clone());
        let mut buf = vec![0u8; READ_BUF_BYTES];

        let hs_deadline = Instant::now() + sh.cfg.handshake_timeout;
        let first = read_frame_deadline(&mut t, &mut reader, &mut buf, hs_deadline, "handshake")
            .map_err(|(cause, err)| ConnError {
                id: None,
                cause,
                err,
                waived: false,
            })?;

        let state = match first {
            Message::Hello { codecs } => {
                // Admission control before any session state exists: shed
                // with a retry hint while the streaming population is at
                // the limit.
                {
                    let progress = sh.progress.lock();
                    if progress.active >= sh.cfg.max_active_feeds {
                        drop(progress);
                        sh.counters.connections_shed.fetch_add(1, Ordering::Relaxed);
                        let _ = t.write_all(
                            &Message::Retry {
                                retry_after_ms: sh.cfg.retry_after_ms,
                            }
                            .encode_framed(),
                        );
                        return Ok(ConnOutcome::Shed);
                    }
                }
                let codec = WireCodec::negotiate(&codecs, &sh.cfg.supported_codecs);
                let (id, challenge, detector) = {
                    let mut service = sh.service.lock();
                    let mut rng = sh.rng.lock();
                    let id = service.open_session(false, &mut rng);
                    // A freshly opened session always queues its Step II
                    // challenge; treat a missing one as a protocol-layer
                    // failure rather than a server panic.
                    match service.poll_transmit(id) {
                        Some(challenge) => (id, challenge, Arc::clone(service.detector())),
                        None => {
                            let _ = service.close_session(id);
                            return Err(ConnError {
                                id: None,
                                cause: DropCause::Protocol,
                                err: PianoError::Wire("opened session queued no challenge".into()),
                                waived: false,
                            });
                        }
                    }
                };
                sh.ids.lock().push(id);
                {
                    let mut progress = sh.progress.lock();
                    progress.active += 1;
                }
                // From the attach point on, every pre-report exit must
                // decrement `active` exactly once.
                let fail = |cause: DropCause, err: PianoError| {
                    self.dec_active();
                    ConnError {
                        id: Some(id),
                        cause,
                        err,
                        waived: false,
                    }
                };
                let mut voucher = AuthSession::voucher_with(detector);
                voucher
                    .handle_message(challenge.clone())
                    .map_err(|e| fail(DropCause::Protocol, e))?;
                let wire_session = voucher.session_id();
                t.write_all(
                    &Message::Accept {
                        session: wire_session,
                        codec: codec.id(),
                    }
                    .encode_framed(),
                )
                .map_err(|e| fail(DropCause::Disconnect, io_transport(e)))?;
                // The thin client must *play* S_V (Step III) even though
                // the gateway scans on its behalf, so it gets the Step II
                // challenge.
                t.write_all(&challenge.encode_framed())
                    .map_err(|e| fail(DropCause::Disconnect, io_transport(e)))?;
                Box::new(FeedState {
                    id,
                    wire_session,
                    voucher,
                    feed: {
                        let mut feed = IngestFeed::new(wire_session, sh.cfg.high_water);
                        feed.set_pool(sh.pool.clone());
                        feed
                    },
                    ended: false,
                    started: Instant::now(),
                })
            }
            Message::Resume { session, next_seq } => {
                return self.resume_connection(t, reader, buf, session, next_seq, hs_deadline);
            }
            other => {
                return Err(ConnError {
                    id: None,
                    cause: DropCause::Protocol,
                    err: PianoError::Wire(format!("expected Hello or Resume, got {other:?}")),
                    waived: false,
                })
            }
        };
        self.run_feed(t, reader, buf, state)
    }

    /// Re-attaches a reconnecting client to its suspended feed.
    ///
    /// The registry entry may not exist *yet*: the dead connection's
    /// thread discovers the loss asynchronously (often only at its next
    /// write), so a prompt reconnect can beat the suspension. The lookup
    /// therefore waits on the registry condvar — woken the moment
    /// [`park`](Self::park) lands the entry — until the handshake
    /// deadline before rejecting.
    fn resume_connection<T: Transport>(
        &self,
        mut t: T,
        mut reader: FrameReader,
        mut buf: Vec<u8>,
        wire_session: u64,
        client_next_seq: u32,
        hs_deadline: Instant,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        let entry = loop {
            // Expiry first, so a lapsed entry for this session is dropped
            // under ResumeExpired rather than resurrected here. The
            // expiry pass takes the registry lock itself, so it must run
            // before this iteration's guard is taken.
            self.expire_suspended(Instant::now());
            // Check under the guard: park() inserts under this same
            // lock, so between here and the wait below no entry can slip
            // in unobserved.
            let mut registry = sh.suspended.lock();
            if let Some(e) = registry.remove(&wire_session) {
                break e;
            }
            let now = Instant::now();
            if now >= hs_deadline {
                return Err(ConnError {
                    id: None,
                    cause: DropCause::Protocol,
                    err: PianoError::Wire(format!(
                        "resume for unknown or expired session {wire_session:#x}"
                    )),
                    // The feed this probe hoped to resume is accounted
                    // for elsewhere (still live, already dropped, or
                    // never existed): never double-count it in the wait.
                    waived: true,
                });
            }
            drop(registry.wait_timeout(&sh.suspended_cv, hs_deadline - now).0);
        };
        sh.counters.resumes.fetch_add(1, Ordering::Relaxed);
        match entry.state {
            SuspendedState::Streaming(mut state) => {
                {
                    let mut progress = sh.progress.lock();
                    progress.active += 1;
                }
                // Flow-control replies queued for the dead transport are
                // stale; the ack below re-synchronizes both sides at the
                // feed's contiguity cursor.
                state.feed.resync_flow();
                // `client_next_seq` may trail the feed's cursor (the
                // client lost Credit bytes, not audio) or lead it (the
                // server lost audio in flight); either way the ack's
                // cursor wins and the client replays from there.
                let _ = client_next_seq;
                let ack = Message::ResumeAck {
                    session: wire_session,
                    ack_seq: state.feed.next_seq(),
                    ended: state.ended,
                };
                match t.write_all(&ack.encode_framed()) {
                    Ok(()) => {}
                    Err(e) => return self.suspend_streaming(state, io_transport(e)),
                }
                self.run_feed(t, reader, buf, state)
            }
            SuspendedState::Decided { id } => {
                let ack = Message::ResumeAck {
                    session: wire_session,
                    ack_seq: client_next_seq,
                    ended: true,
                };
                if let Err(e) = t.write_all(&ack.encode_framed()) {
                    // Park the verdict again for the next attempt.
                    self.park(
                        wire_session,
                        SuspendedState::Decided { id },
                        Instant::now() + sh.cfg.resume_window,
                    );
                    return Err(ConnError {
                        id: None,
                        cause: DropCause::Disconnect,
                        err: io_transport(e),
                        waived: true,
                    });
                }
                self.await_scan_and_deliver(&mut t, &mut reader, &mut buf, id, wire_session)
            }
        }
    }

    /// Inserts a registry entry, wakes any `Resume` probe blocked on the
    /// registry condvar, and nudges the report waiter so its tick loop
    /// starts watching this suspension's expiry.
    fn park(&self, wire_session: u64, state: SuspendedState, expires: Instant) {
        self.shared
            .suspended
            .lock()
            .insert(wire_session, Suspended { state, expires });
        self.shared.suspended_cv.notify_all();
        self.shared.progress_cv.notify_all();
    }

    /// Parks a mid-stream feed whose transport died — or drops it when no
    /// resume window is configured.
    fn suspend_streaming(
        &self,
        state: Box<FeedState>,
        err: PianoError,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        self.dec_active();
        if sh.cfg.resume_window.is_zero() {
            return Err(ConnError {
                id: Some(state.id),
                cause: DropCause::Disconnect,
                err,
                waived: false,
            });
        }
        sh.counters
            .connections_suspended
            .fetch_add(1, Ordering::Relaxed);
        let wire_session = state.wire_session;
        let expires = Instant::now() + sh.cfg.resume_window;
        self.park(wire_session, SuspendedState::Streaming(state), expires);
        Ok(ConnOutcome::Suspended)
    }

    /// Drops registry entries whose resume window has lapsed. Expired
    /// mid-stream feeds are dropped under [`DropCause::ResumeExpired`]
    /// (counted toward the report wait); expired verdict entries are
    /// forgotten silently — their feed already reported and decided.
    fn expire_suspended(&self, now: Instant) {
        let expired: Vec<Suspended> = {
            let mut map = self.shared.suspended.lock();
            if map.is_empty() {
                return;
            }
            let lapsed: Vec<u64> = map
                .iter()
                .filter(|(_, s)| s.expires <= now)
                .map(|(&k, _)| k)
                .collect();
            lapsed.into_iter().filter_map(|k| map.remove(&k)).collect()
        };
        for s in expired {
            match s.state {
                SuspendedState::Streaming(state) => {
                    self.shared.counters.count_drop(DropCause::ResumeExpired);
                    eprintln!(
                        "dropping connection (session {:?}): resume window expired [{}]",
                        state.id,
                        DropCause::ResumeExpired,
                    );
                    self.close_if_not_scanning(state.id);
                    let mut progress = self.shared.progress.lock();
                    progress.dropped += 1;
                    self.shared.progress_cv.notify_all();
                }
                SuspendedState::Decided { .. } => {}
            }
        }
    }

    /// The attached-feed lifecycle: ingest until `StreamEnd` + drained,
    /// route the Step V report, then wait out the hub scan and deliver
    /// the verdict.
    fn run_feed<T: Transport>(
        &self,
        mut t: T,
        mut reader: FrameReader,
        mut buf: Vec<u8>,
        mut state: Box<FeedState>,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        match self.ingest_loop(&mut t, &mut reader, &mut buf, &mut state) {
            Ok(()) => {}
            Err(StreamFailure::Fatal(cause, err)) => {
                self.dec_active();
                return Err(ConnError {
                    id: Some(state.id),
                    cause,
                    err,
                    waived: false,
                });
            }
            Err(StreamFailure::Lost(err)) => return self.suspend_streaming(state, err),
        }
        sh.counters.max_peak(state.feed.peak_buffered() as u64);

        // -- Conclude the voucher scan and route its Step V report.
        let _ = state.voucher.finish_audio();
        let report = match state.voucher.poll_transmit() {
            Some(r) => r,
            None => {
                self.dec_active();
                return Err(ConnError {
                    id: Some(state.id),
                    cause: DropCause::Protocol,
                    err: PianoError::Wire("voucher produced no report".into()),
                    waived: false,
                });
            }
        };
        if let Err(e) = sh.service.lock().handle_message(state.id, report) {
            self.dec_active();
            return Err(ConnError {
                id: Some(state.id),
                cause: DropCause::Protocol,
                err: e,
                waived: false,
            });
        }
        {
            let mut progress = sh.progress.lock();
            progress.reports += 1;
            progress.active = progress.active.saturating_sub(1);
            sh.progress_cv.notify_all();
        }
        self.await_scan_and_deliver(&mut t, &mut reader, &mut buf, state.id, state.wire_session)
    }

    /// Ingest: frames → feed accounting → voucher scan → replies, every
    /// blocking read bounded by the idle and whole-stream deadlines.
    fn ingest_loop<T: Transport>(
        &self,
        t: &mut T,
        reader: &mut FrameReader,
        buf: &mut [u8],
        state: &mut FeedState,
    ) -> Result<(), StreamFailure> {
        let sh = &*self.shared;
        let stream_deadline = state.started + sh.cfg.stream_timeout;
        loop {
            // Block for bytes only when there is no scan work pending;
            // otherwise poll, so a paused sender cannot stall the drain
            // that will eventually grant its credit. The blocking wait is
            // where both watchdogs bite: idle (nothing arrived lately) and
            // whole-stream (the budget since the handshake ran out).
            let n = if state.feed.buffered() == 0 && !state.ended {
                let now = Instant::now();
                if now >= stream_deadline {
                    return Err(StreamFailure::Fatal(
                        DropCause::Timeout,
                        PianoError::Timeout("stream budget exhausted mid-stream".into()),
                    ));
                }
                let wait = sh.cfg.idle_timeout.min(stream_deadline - now);
                match t.read_timeout(buf, wait) {
                    Ok(0) => {
                        return Err(StreamFailure::Lost(PianoError::Transport(
                            "connection closed before StreamEnd".into(),
                        )))
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                        return Err(StreamFailure::Fatal(
                            DropCause::Timeout,
                            PianoError::Timeout(format!("feed idle for {wait:?} mid-stream")),
                        ))
                    }
                    Err(e) => return Err(StreamFailure::Lost(io_transport(e))),
                }
            } else {
                match t.try_read(buf) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => 0,
                    Err(e) => return Err(StreamFailure::Lost(io_transport(e))),
                }
            };
            if n > 0 {
                reader.push(&buf[..n]);
            }
            loop {
                let before = reader.consumed();
                // A framing error propagates the reader's poison cause:
                // this connection is dropped, nothing else is.
                let msg = match reader.next_frame() {
                    Ok(Some(m)) => m,
                    Ok(None) => break,
                    Err(e) => return Err(StreamFailure::Fatal(DropCause::Framing, e)),
                };
                match msg {
                    m @ (Message::AudioChunk { .. }
                    | Message::AudioBatch { .. }
                    | Message::AudioBatchI16 { .. }) => {
                        // `accept` enforces sequence contiguity and the
                        // backlog hard limit; violating either drops the
                        // connection here. Classify the hard-limit breach
                        // (a sender ignoring Busy) apart from the rest.
                        let overrun =
                            state.feed.buffered() + audio_samples(&m) > state.feed.hard_limit();
                        if let Err(e) = state.feed.accept(&m) {
                            let cause = if overrun {
                                DropCause::Overrun
                            } else {
                                DropCause::Protocol
                            };
                            return Err(StreamFailure::Fatal(cause, e));
                        }
                        sh.counters.frames_decoded.fetch_add(1, Ordering::Relaxed);
                        sh.counters
                            .wire_audio_bytes
                            .fetch_add(reader.consumed() - before, Ordering::Relaxed);
                        sh.counters
                            .raw_audio_bytes
                            .fetch_add(codec::raw_framed_audio_bytes(&m), Ordering::Relaxed);
                    }
                    Message::StreamEnd { session: s } if s == state.wire_session => {
                        state.ended = true;
                    }
                    other => {
                        return Err(StreamFailure::Fatal(
                            DropCause::Protocol,
                            PianoError::Wire(format!("unexpected mid-stream message {other:?}")),
                        ))
                    }
                }
            }
            // Drain straight from the feed's pooled segments into the
            // voucher — no staging copy. Segment boundaries only affect
            // chunking, which the scan is invariant to.
            let st = &mut *state;
            let voucher = &mut st.voucher;
            st.feed.drain_pending(sh.cfg.drain_chunk, |run| {
                let _ = voucher.push_audio(run);
            });
            while let Some(reply) = state.feed.poll_reply() {
                match &reply {
                    Message::Busy { .. } => {
                        sh.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    Message::Credit { .. } => {
                        sh.counters.credit_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                t.write_all(&reply.encode_framed())
                    .map_err(|e| StreamFailure::Lost(io_transport(e)))?;
            }
            if state.ended && state.feed.buffered() == 0 {
                return Ok(());
            }
        }
    }

    /// Waits (bounded by [`ServerConfig::decision_timeout`]) for the hub
    /// scan, then delivers the verdict. With a resume window configured,
    /// the verdict is parked in the registry *before* the write, so a
    /// client that loses the connection with the `Decision` frame in
    /// flight can reconnect and have it re-sent. With
    /// [`ServerConfig::standing`] set, a granted feed then parks in
    /// [`standing_loop`](Self::standing_loop) instead of closing.
    fn await_scan_and_deliver<T: Transport>(
        &self,
        t: &mut T,
        reader: &mut FrameReader,
        buf: &mut [u8],
        id: SessionId,
        wire_session: u64,
    ) -> Result<ConnOutcome, ConnError> {
        let sh = &*self.shared;
        let deadline = Instant::now() + sh.cfg.decision_timeout;
        // Post-report failures are waived: this feed already counted in
        // Progress::reports, so adding it to Progress::dropped would make
        // the wait see one feed twice.
        {
            let mut progress = sh.progress.lock();
            while !progress.scan_done {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ConnError {
                        id: Some(id),
                        cause: DropCause::Timeout,
                        err: PianoError::Timeout(
                            "hub scan did not conclude within the decision deadline".into(),
                        ),
                        waived: true,
                    });
                }
                let (guard, _) = progress.wait_timeout(&sh.progress_cv, deadline - now);
                progress = guard;
            }
        }
        let decision = sh
            .service
            .lock()
            .decision(id)
            .cloned()
            .unwrap_or(AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure(
                    "session undecided after the hub scan".into(),
                ),
            });
        if !sh.cfg.resume_window.is_zero() {
            self.park(
                wire_session,
                SuspendedState::Decided { id },
                Instant::now() + sh.cfg.resume_window,
            );
        }
        match t.write_all(
            &Message::Decision {
                session: wire_session,
                decision: decision.clone(),
            }
            .encode_framed(),
        ) {
            Ok(()) => {
                if sh.cfg.standing && decision.is_granted() {
                    self.standing_loop(t, reader, buf, wire_session)?;
                }
                Ok(ConnOutcome::Done(id, decision))
            }
            Err(e) if !sh.cfg.resume_window.is_zero() => {
                // The Decided entry parked above lets the client resume
                // and re-read the verdict; this thread's work is done.
                let _ = e;
                Ok(ConnOutcome::Suspended)
            }
            Err(e) => Err(ConnError {
                id: Some(id),
                cause: DropCause::Disconnect,
                err: io_transport(e),
                waived: true,
            }),
        }
    }

    /// Parks a granted feed between re-challenge rounds: waits on the
    /// progress condvar for the host to command a round
    /// ([`begin_recheck_round`](Self::begin_recheck_round)) or end
    /// standing service ([`end_standing`](Self::end_standing)), running
    /// [`recheck_round`](Self::recheck_round) for each. While parked the
    /// thread holds no locks and reads nothing — a standing feed whose
    /// transport silently dies is discovered (and accounted under
    /// [`Progress::recheck_dropped`]) at its next round.
    fn standing_loop<T: Transport>(
        &self,
        t: &mut T,
        reader: &mut FrameReader,
        buf: &mut [u8],
        wire_session: u64,
    ) -> Result<(), ConnError> {
        let sh = &*self.shared;
        {
            let mut progress = sh.progress.lock();
            progress.standing += 1;
            sh.progress_cv.notify_all();
        }
        let mut last_round = 0u64;
        let result = loop {
            let round = {
                let mut progress = sh.progress.lock();
                loop {
                    if progress.standing_over {
                        break None;
                    }
                    if progress.recheck_round > last_round {
                        break Some(progress.recheck_round);
                    }
                    progress = progress.wait(&sh.progress_cv);
                }
            };
            let Some(round) = round else { break Ok(()) };
            last_round = round;
            if let Err(e) = self.recheck_round(t, reader, buf, wire_session, round) {
                break Err(e);
            }
        };
        let mut progress = sh.progress.lock();
        progress.standing = progress.standing.saturating_sub(1);
        sh.progress_cv.notify_all();
        drop(progress);
        result
    }

    /// One wire re-challenge round for one standing feed: open a fresh
    /// per-round service session, send its Step II signals to the client
    /// as [`Message::Recheck`] (under the feed's *original* wire session
    /// id), ingest the round's [`Message::RecheckAudio`] stream into a
    /// fresh voucher (bounded by [`ServerConfig::recheck_timeout`]),
    /// route the Step V report, wait out the round's hub scan, and
    /// deliver [`Message::RecheckVerdict`]. The per-round session is
    /// closed once scanned, so standing service never accumulates
    /// service-side state across rounds.
    fn recheck_round<T: Transport>(
        &self,
        t: &mut T,
        reader: &mut FrameReader,
        buf: &mut [u8],
        wire_session: u64,
        round: u64,
    ) -> Result<(), ConnError> {
        let sh = &*self.shared;
        let (id, challenge, detector) = {
            let mut service = sh.service.lock();
            let mut rng = sh.rng.lock();
            let id = service.open_session(false, &mut rng);
            match service.poll_transmit(id) {
                Some(challenge) => (id, challenge, Arc::clone(service.detector())),
                None => {
                    let _ = service.close_session(id);
                    return Err(self.recheck_fail(
                        None,
                        DropCause::Protocol,
                        PianoError::Wire("recheck session queued no challenge".into()),
                    ));
                }
            }
        };
        sh.progress.lock().recheck_ids.push(id);
        let mut voucher = AuthSession::voucher_with(detector);
        if let Err(e) = voucher.handle_message(challenge.clone()) {
            return Err(self.recheck_fail(Some(id), DropCause::Protocol, e));
        }
        let (sa, sv) = match challenge {
            Message::ReferenceSignals { sa, sv, .. } => (sa, sv),
            other => {
                return Err(self.recheck_fail(
                    Some(id),
                    DropCause::Protocol,
                    PianoError::Wire(format!("recheck session queued {other:?}, not a challenge")),
                ));
            }
        };
        // The frame addresses the feed's standing identity; the signals
        // are this round's fresh challenge. Wire rounds are u32: the
        // round counter is host-driven and sequential, so truncation
        // would need four billion rounds on one connection.
        let wire_round = round as u32;
        let frame = Message::Recheck {
            session: wire_session,
            round: wire_round,
            sa,
            sv,
        }
        .encode_framed();
        if let Err(e) = t.write_all(&frame) {
            return Err(self.recheck_fail(Some(id), DropCause::Disconnect, io_transport(e)));
        }
        let deadline = Instant::now() + sh.cfg.recheck_timeout;
        let mut next_seq = 0u32;
        loop {
            let msg = match read_frame_deadline(t, reader, buf, deadline, "recheck audio") {
                Ok(m) => m,
                Err((cause, err)) => return Err(self.recheck_fail(Some(id), cause, err)),
            };
            match msg {
                Message::RecheckAudio {
                    session,
                    round: r,
                    seq,
                    done,
                    samples,
                } if session == wire_session && r == wire_round => {
                    if seq != next_seq {
                        return Err(self.recheck_fail(
                            Some(id),
                            DropCause::Protocol,
                            PianoError::Wire(format!(
                                "recheck audio arrived with seq {seq}, expected {next_seq}"
                            )),
                        ));
                    }
                    next_seq = next_seq.wrapping_add(1);
                    if !samples.is_empty() {
                        let _ = voucher.push_audio(&samples);
                    }
                    if done {
                        break;
                    }
                }
                other => {
                    return Err(self.recheck_fail(
                        Some(id),
                        DropCause::Protocol,
                        PianoError::Wire(format!(
                            "expected RecheckAudio for round {round}, got {other:?}"
                        )),
                    ));
                }
            }
        }
        let _ = voucher.finish_audio();
        let report = match voucher.poll_transmit() {
            Some(r) => r,
            None => {
                return Err(self.recheck_fail(
                    Some(id),
                    DropCause::Protocol,
                    PianoError::Wire("recheck voucher produced no report".into()),
                ));
            }
        };
        if let Err(e) = sh.service.lock().handle_message(id, report) {
            return Err(self.recheck_fail(Some(id), DropCause::Protocol, e));
        }
        {
            let mut progress = sh.progress.lock();
            progress.recheck_ready += 1;
            sh.progress_cv.notify_all();
        }
        // Wait out this round's hub scan. Post-ready failures are waived
        // and not counted dropped: the host's round accounting already saw
        // this feed.
        let scan_deadline = Instant::now() + sh.cfg.decision_timeout;
        {
            let mut progress = sh.progress.lock();
            while progress.recheck_scanned < round {
                if progress.standing_over {
                    // Standing ended mid-round; the outer loop exits and
                    // the client learns from the connection close.
                    return Ok(());
                }
                let now = Instant::now();
                if now >= scan_deadline {
                    return Err(ConnError {
                        id: None,
                        cause: DropCause::Timeout,
                        err: PianoError::Timeout(
                            "recheck scan did not conclude within the decision deadline".into(),
                        ),
                        waived: true,
                    });
                }
                let (guard, _) = progress.wait_timeout(&sh.progress_cv, scan_deadline - now);
                progress = guard;
            }
        }
        let decision = {
            let mut service = sh.service.lock();
            let d = service
                .decision(id)
                .cloned()
                .unwrap_or(AuthDecision::Denied {
                    reason: DenialReason::ProtocolFailure(
                        "recheck session undecided after the hub scan".into(),
                    ),
                });
            let _ = service.close_session(id);
            d
        };
        t.write_all(
            &Message::RecheckVerdict {
                session: wire_session,
                round: wire_round,
                decision,
            }
            .encode_framed(),
        )
        .map_err(|e| ConnError {
            id: None,
            cause: DropCause::Disconnect,
            err: io_transport(e),
            waived: true,
        })?;
        Ok(())
    }

    /// Accounts a standing feed's pre-report round failure: counts it
    /// under [`Progress::recheck_dropped`] (so
    /// [`wait_for_recheck_reports`](Self::wait_for_recheck_reports)
    /// cannot hang on a report that will never arrive) and withdraws its
    /// per-round session — removed from the pending round and closed,
    /// but only while the host has not yet snapshotted the round's ids
    /// for its scan (afterwards the scan owns the session; unreported, it
    /// never decides and is left behind like any dropped feed's). The
    /// returned error is waived: the feed's original connection already
    /// reported in the main epoch.
    fn recheck_fail(&self, id: Option<SessionId>, cause: DropCause, err: PianoError) -> ConnError {
        let sh = &*self.shared;
        let close = {
            let mut progress = sh.progress.lock();
            progress.recheck_dropped += 1;
            sh.progress_cv.notify_all();
            match id {
                Some(id) => {
                    if let Some(pos) = progress.recheck_ids.iter().position(|&x| x == id) {
                        progress.recheck_ids.swap_remove(pos);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        };
        if close {
            if let Some(id) = id {
                let _ = sh.service.lock().close_session(id);
            }
        }
        ConnError {
            id: None,
            cause,
            err,
            waived: true,
        }
    }

    /// Blocks until each of `n` accepted connections has either routed
    /// its Step V report or been dropped — the signal that every healthy
    /// connection finished streaming and the host may scan the hub
    /// recording. Returns the number that actually reported, so partial
    /// failure is observable instead of hanging the host forever.
    ///
    /// Feeds sitting in the resume registry count as neither until they
    /// resume (and report) or their window expires (and they drop): the
    /// wait ticks while suspensions exist, so an abandoned feed holds the
    /// scan up for at most its resume window.
    ///
    /// Unbounded — a test-only convenience. Production hosts should call
    /// [`wait_for_reports_timeout`](Self::wait_for_reports_timeout).
    pub fn wait_for_reports(&self, n: usize) -> usize {
        self.wait_reports_deadline(n, None)
            .expect("unbounded wait cannot time out")
    }

    /// [`wait_for_reports`](Self::wait_for_reports) bounded by `timeout`.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds have reported or
    /// dropped within `timeout`.
    pub fn wait_for_reports_timeout(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<usize, PianoError> {
        self.wait_reports_deadline(n, Some(Instant::now() + timeout))
    }

    fn wait_reports_deadline(
        &self,
        n: usize,
        deadline: Option<Instant>,
    ) -> Result<usize, PianoError> {
        let sh = &*self.shared;
        loop {
            self.expire_suspended(Instant::now());
            let suspensions = !sh.suspended.lock().is_empty();
            let progress = sh.progress.lock();
            if progress.reports + progress.dropped >= n {
                return Ok(progress.reports);
            }
            let now = Instant::now();
            if let Some(d) = deadline {
                if now >= d {
                    return Err(PianoError::Timeout(format!(
                        "{} of {n} feeds concluded before the report deadline",
                        progress.reports + progress.dropped
                    )));
                }
            }
            let tick = match (suspensions, deadline) {
                (false, None) => None,
                (true, None) => Some(SUSPEND_TICK),
                (false, Some(d)) => Some(d - now),
                (true, Some(d)) => Some(SUSPEND_TICK.min(d - now)),
            };
            match tick {
                None => drop(progress.wait(&sh.progress_cv)),
                Some(wait) => drop(progress.wait_timeout(&sh.progress_cv, wait).0),
            }
        }
    }

    /// Streams the hub microphone's recording through the service in
    /// `tick`-sample chunks, concludes every scan group, releases the
    /// waiting connection threads to deliver their verdicts, and returns
    /// the number of sessions that decided.
    pub fn scan_and_decide(&self, hub_audio: &[f64], tick: usize) -> usize {
        let decided;
        {
            // progress → service, the crate-wide lock order.
            let mut progress = self.shared.progress.lock();
            let mut service = self.shared.service.lock();
            progress.scan_started = true;
            drop(progress);
            for chunk in hub_audio.chunks(tick.max(1)) {
                let _ = service.push_audio(chunk);
            }
            let _ = service.finish_audio();
            decided = service.sessions_decided();
        }
        let mut progress = self.shared.progress.lock();
        progress.scan_done = true;
        self.shared.progress_cv.notify_all();
        drop(progress);
        decided
    }

    /// Blocks until `n` granted feeds are parked in the standing loop
    /// (requires [`ServerConfig::standing`]). Returns the standing
    /// population.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds are standing
    /// within `timeout`.
    pub fn wait_for_standing(&self, n: usize, timeout: Duration) -> Result<usize, PianoError> {
        let sh = &*self.shared;
        let deadline = Instant::now() + timeout;
        let mut progress = sh.progress.lock();
        loop {
            if progress.standing >= n {
                return Ok(progress.standing);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PianoError::Timeout(format!(
                    "{} of {n} feeds standing before the deadline",
                    progress.standing
                )));
            }
            let (guard, _) = progress.wait_timeout(&sh.progress_cv, deadline - now);
            progress = guard;
        }
    }

    /// Commands the next re-challenge round: every standing feed opens a
    /// fresh per-round session and sends its client a
    /// [`Message::Recheck`]. Returns the round number. Drive one round to
    /// completion ([`wait_for_recheck_reports`](Self::wait_for_recheck_reports)
    /// → [`recheck_session_ids`](Self::recheck_session_ids) →
    /// [`recheck_scan_and_decide`](Self::recheck_scan_and_decide)) before
    /// commanding the next.
    pub fn begin_recheck_round(&self) -> u64 {
        let sh = &*self.shared;
        let mut progress = sh.progress.lock();
        progress.recheck_round += 1;
        progress.recheck_ready = 0;
        progress.recheck_dropped = 0;
        progress.recheck_ids.clear();
        let round = progress.recheck_round;
        sh.progress_cv.notify_all();
        round
    }

    /// Blocks until each of `n` standing feeds has either routed its
    /// re-check report for the current round or failed out of the round.
    /// Returns the number that actually reported.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds have concluded
    /// the round within `timeout`.
    pub fn wait_for_recheck_reports(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<usize, PianoError> {
        let sh = &*self.shared;
        let deadline = Instant::now() + timeout;
        let mut progress = sh.progress.lock();
        loop {
            if progress.recheck_ready + progress.recheck_dropped >= n {
                return Ok(progress.recheck_ready);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PianoError::Timeout(format!(
                    "{} of {n} standing feeds concluded the recheck round before the deadline",
                    progress.recheck_ready + progress.recheck_dropped
                )));
            }
            let (guard, _) = progress.wait_timeout(&sh.progress_cv, deadline - now);
            progress = guard;
        }
    }

    /// The current round's per-round service session ids, ascending —
    /// what the host builds the round's hub recording over. Call after
    /// [`wait_for_recheck_reports`](Self::wait_for_recheck_reports) and
    /// *before* [`recheck_scan_and_decide`](Self::recheck_scan_and_decide)
    /// (the scan consumes the round's id list).
    pub fn recheck_session_ids(&self) -> Vec<SessionId> {
        let mut ids = self.shared.progress.lock().recheck_ids.clone();
        ids.sort();
        ids
    }

    /// Streams the round's hub recording through the service — one coarse
    /// pass re-verifies every standing feed's per-round session — then
    /// releases the standing threads to deliver their
    /// [`Message::RecheckVerdict`]s. Returns how many of the round's
    /// sessions decided.
    pub fn recheck_scan_and_decide(&self, hub_audio: &[f64], tick: usize) -> usize {
        let decided;
        let round;
        {
            // progress → service, the crate-wide lock order.
            let mut progress = self.shared.progress.lock();
            round = progress.recheck_round;
            let ids = std::mem::take(&mut progress.recheck_ids);
            let mut service = self.shared.service.lock();
            drop(progress);
            for chunk in hub_audio.chunks(tick.max(1)) {
                let _ = service.push_audio(chunk);
            }
            let _ = service.finish_audio();
            decided = ids
                .iter()
                .filter(|&&id| service.decision(id).is_some())
                .count();
        }
        let mut progress = self.shared.progress.lock();
        progress.recheck_scanned = round;
        self.shared.progress_cv.notify_all();
        drop(progress);
        decided
    }

    /// Ends standing service: parked feeds exit their loops, their
    /// connection threads return, and the transports close. Permanent —
    /// a `ServerLoop` serves one standing era.
    pub fn end_standing(&self) {
        let mut progress = self.shared.progress.lock();
        progress.standing_over = true;
        self.shared.progress_cv.notify_all();
    }

    /// A point-in-time [`ServiceStats`] snapshot across every connection
    /// served so far.
    pub fn stats(&self) -> ServiceStats {
        self.shared
            .counters
            .snapshot(self.with_service(|s| s.sessions_decided()) as u64)
    }
}
