//! Crate-internal helpers binding [`FrameReader`] to a [`Transport`]:
//! blocking and deadline-bounded "read one frame" loops shared by the
//! server loop and the client feed handle, plus the error mapping from
//! transport I/O failures into [`PianoError::Transport`].

use std::io;
use std::time::Instant;

use piano_core::error::PianoError;
use piano_core::stream::DropCause;
use piano_core::wire::{FrameReader, Message};

use crate::transport::Transport;

/// Read-buffer size for connection loops: large enough that one read
/// turn can outpace the per-turn drain even for raw `f64` frames, so
/// watermark backpressure is observable under either codec.
pub(crate) const READ_BUF_BYTES: usize = 64 * 1024;

/// Maps a transport I/O failure into the transport error domain.
pub(crate) fn io_transport(e: io::Error) -> PianoError {
    PianoError::Transport(format!("transport I/O failure: {e}"))
}

/// Blocks until one complete frame arrives on `t`.
pub(crate) fn read_frame<T: Transport>(
    t: &mut T,
    reader: &mut FrameReader,
    buf: &mut [u8],
) -> Result<Message, PianoError> {
    loop {
        if let Some(msg) = reader.next_frame()? {
            return Ok(msg);
        }
        match t.read_some(buf) {
            Ok(0) => return Err(PianoError::Transport("connection closed mid-frame".into())),
            Ok(n) => reader.push(&buf[..n]),
            Err(e) => return Err(io_transport(e)),
        }
    }
}

/// [`read_frame`] bounded by a deadline. Errors carry the [`DropCause`]
/// a connection supervisor should count the failure under.
pub(crate) fn read_frame_deadline<T: Transport>(
    t: &mut T,
    reader: &mut FrameReader,
    buf: &mut [u8],
    deadline: Instant,
    what: &str,
) -> Result<Message, (DropCause, PianoError)> {
    loop {
        match reader.next_frame() {
            Ok(Some(msg)) => return Ok(msg),
            Ok(None) => {}
            Err(e) => return Err((DropCause::Framing, e)),
        }
        let now = Instant::now();
        if now >= deadline {
            return Err((
                DropCause::Timeout,
                PianoError::Timeout(format!("{what} deadline elapsed")),
            ));
        }
        match t.read_timeout(buf, deadline - now) {
            Ok(0) => {
                return Err((
                    DropCause::Disconnect,
                    PianoError::Transport(format!("connection closed during {what}")),
                ))
            }
            // piano-lint: allow(wire-no-panic, reason = "Transport::read_timeout returns n <= buf.len() by contract, so the prefix slice is in bounds")
            Ok(n) => reader.push(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                return Err((
                    DropCause::Timeout,
                    PianoError::Timeout(format!("{what} deadline elapsed")),
                ))
            }
            Err(e) => return Err((DropCause::Disconnect, io_transport(e))),
        }
    }
}

/// Deadline-bounded wait for a read when the caller may have an
/// `Option`al deadline: `None` blocks indefinitely.
pub(crate) fn read_more<T: Transport>(
    t: &mut T,
    buf: &mut [u8],
    deadline: Option<Instant>,
    what: &str,
) -> Result<usize, PianoError> {
    match deadline {
        None => t.read_some(buf).map_err(io_transport),
        Some(d) => {
            let now = Instant::now();
            if now >= d {
                return Err(PianoError::Timeout(format!("{what} deadline elapsed")));
            }
            match t.read_timeout(buf, d - now) {
                Ok(n) => Ok(n),
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    Err(PianoError::Timeout(format!("{what} deadline elapsed")))
                }
                Err(e) => Err(io_transport(e)),
            }
        }
    }
}
