//! Deterministic fault injection for [`Transport`] byte streams.
//!
//! [`FaultyTransport`] wraps any transport and perturbs it the way flaky
//! links do — short reads and writes at arbitrary split points,
//! per-operation latency, one-shot stalls, and mid-stream disconnects
//! that truncate a frame at an arbitrary byte — while never corrupting,
//! reordering, or duplicating the bytes that *do* get through. That
//! invariant is what makes chaos testing against the conformance suite
//! meaningful: any divergence a fault run produces is a real
//! fault-handling bug, not an artifact of the injector.
//!
//! Faults are configured per direction by a [`FaultPlan`] and drawn from
//! a ChaCha stream seeded by [`FaultPlan::seed`], so an entire chaos
//! schedule replays from one `u64`. Disconnects cut at fixed *byte
//! offsets* (not random draws), so the set of delivered bytes — and
//! therefore every protocol-visible outcome — is independent of how the
//! race between reader and writer threads interleaves the RNG.

use std::io;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::transport::Transport;

/// A one-shot stall: once `after_bytes` have moved in the direction the
/// spec is attached to, the next operation sleeps `duration` before
/// touching the inner transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// Direction byte count that arms the stall.
    pub after_bytes: u64,
    /// How long the stalled operation sleeps.
    pub duration: Duration,
}

/// Fault knobs for one direction of a [`FaultyTransport`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that an operation is split short: a read
    /// is capped to a random prefix of the requested buffer, a write is
    /// delivered in random segments. Exercises every reassembly path
    /// without changing the byte stream.
    pub short_op_prob: f64,
    /// Ceiling on uniform random per-operation latency (zero = none).
    /// Applied to blocking operations only; `try_read` stays prompt.
    pub max_latency: Duration,
    /// Optional one-shot stall.
    pub stall: Option<StallSpec>,
    /// Kill this direction's transport after exactly this many bytes:
    /// a write delivers the prefix up to the cut (truncating the frame
    /// mid-flight) and then fails `BrokenPipe`; a read returns the bytes
    /// below the cut and then end-of-stream. The first cut in either
    /// direction drops the inner transport, so the peer sees the loss
    /// too.
    pub disconnect_after: Option<u64>,
}

/// A seeded, replayable fault schedule for one connection.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the ChaCha stream all random choices draw from.
    pub seed: u64,
    /// Faults on the read (inbound) direction.
    pub read: LinkFaults,
    /// Faults on the write (outbound) direction.
    pub write: LinkFaults,
}

impl FaultPlan {
    /// A plan that injects nothing — the wrapped transport behaves
    /// exactly like the bare one.
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            read: LinkFaults::default(),
            write: LinkFaults::default(),
        }
    }

    /// A survivable chaos mix derived entirely from `seed`: short
    /// reads/writes with seed-chosen probabilities and up to ~2 ms of
    /// per-op latency, no stalls, no disconnects. Safe under any sane
    /// deadline configuration; compose disconnects and stalls on top
    /// with the `with_*` builders.
    pub fn chaos(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA07_F1A7);
        let dir = |rng: &mut ChaCha8Rng| LinkFaults {
            short_op_prob: if rng.gen::<f64>() < 0.5 {
                rng.gen_range(0.05..0.5)
            } else {
                0.0
            },
            max_latency: if rng.gen::<f64>() < 0.3 {
                Duration::from_micros(rng.gen_range(50..2_000))
            } else {
                Duration::ZERO
            },
            stall: None,
            disconnect_after: None,
        };
        let read = dir(&mut rng);
        let write = dir(&mut rng);
        FaultPlan { seed, read, write }
    }

    /// Adds a one-shot read-direction stall.
    pub fn with_read_stall(mut self, after_bytes: u64, duration: Duration) -> Self {
        self.read.stall = Some(StallSpec {
            after_bytes,
            duration,
        });
        self
    }

    /// Adds a read-direction disconnect at a byte offset.
    pub fn with_read_disconnect(mut self, after_bytes: u64) -> Self {
        self.read.disconnect_after = Some(after_bytes);
        self
    }

    /// Adds a write-direction disconnect at a byte offset.
    pub fn with_write_disconnect(mut self, after_bytes: u64) -> Self {
        self.write.disconnect_after = Some(after_bytes);
        self
    }
}

/// Counts of faults actually injected — what a chaos harness asserts on
/// to make sure a schedule exercised what it meant to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Reads capped short of the available buffer.
    pub short_reads: u64,
    /// Writes split into more than one segment.
    pub short_writes: u64,
    /// Operations that slept a one-shot stall (in part or whole).
    pub stalled_ops: u64,
    /// Operations that slept injected latency.
    pub delayed_ops: u64,
    /// Whether the plan's disconnect fired (either direction).
    pub disconnects: u64,
}

/// A [`Transport`] wrapper injecting the faults of a [`FaultPlan`].
///
/// Dropping the inner transport on disconnect is what propagates the
/// failure to the peer: for [`crate::transport::MemoryStream`] both pipe
/// directions close (the server sees end-of-stream / `BrokenPipe`),
/// matching what a dead TCP connection does.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: Option<T>,
    plan: FaultPlan,
    rng: ChaCha8Rng,
    read_bytes: u64,
    write_bytes: u64,
    /// Remaining sleep of the read-direction stall (consumed possibly
    /// across several deadline-bounded reads); `None` once spent.
    read_stall_left: Option<Duration>,
    write_stall_pending: bool,
    log: FaultLog,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            read_stall_left: plan.read.stall.map(|s| s.duration),
            write_stall_pending: plan.write.stall.is_some(),
            inner: Some(inner),
            plan,
            read_bytes: 0,
            write_bytes: 0,
            log: FaultLog::default(),
        }
    }

    /// Bytes delivered to the caller so far (read direction).
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes pushed into the inner transport so far (write direction).
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// What the injector has actually done so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Whether an injected disconnect has severed the transport.
    pub fn is_disconnected(&self) -> bool {
        self.inner.is_none()
    }

    /// (Re)arms the read-direction disconnect at an absolute byte
    /// offset. Chaos harnesses use this to place a cut *relative to
    /// observed traffic* — e.g. "just past the handshake" — which a
    /// static plan cannot know in advance.
    pub fn set_read_disconnect(&mut self, after_bytes: u64) {
        self.plan.read.disconnect_after = Some(after_bytes);
    }

    /// (Re)arms the write-direction disconnect at an absolute byte
    /// offset.
    pub fn set_write_disconnect(&mut self, after_bytes: u64) {
        self.plan.write.disconnect_after = Some(after_bytes);
    }

    fn sever(&mut self) -> io::Error {
        if self.inner.take().is_some() {
            self.log.disconnects += 1;
        }
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            "injected disconnect severed the transport",
        )
    }

    fn maybe_write_latency(&mut self) {
        let cap = self.plan.write.max_latency;
        if cap > Duration::ZERO {
            let ns = self.rng.gen_range(0..=cap.as_nanos() as u64);
            self.log.delayed_ops += 1;
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }

    fn maybe_read_latency(&mut self) {
        let cap = self.plan.read.max_latency;
        if cap > Duration::ZERO {
            let ns = self.rng.gen_range(0..=cap.as_nanos() as u64);
            self.log.delayed_ops += 1;
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }

    /// Sleeps the armed read stall, bounded by `budget` when given.
    /// Returns the time actually slept.
    fn serve_read_stall(&mut self, budget: Option<Duration>) -> Duration {
        let armed = matches!(self.plan.read.stall, Some(s) if self.read_bytes >= s.after_bytes);
        if !armed {
            return Duration::ZERO;
        }
        let Some(left) = self.read_stall_left else {
            return Duration::ZERO;
        };
        let sleep = budget.map_or(left, |b| left.min(b));
        let remaining = left - sleep;
        self.read_stall_left = (remaining > Duration::ZERO).then_some(remaining);
        self.log.stalled_ops += 1;
        std::thread::sleep(sleep);
        sleep
    }

    fn serve_write_stall(&mut self) {
        if let Some(s) = self.plan.write.stall {
            if self.write_stall_pending && self.write_bytes >= s.after_bytes {
                self.write_stall_pending = false;
                self.log.stalled_ops += 1;
                std::thread::sleep(s.duration);
            }
        }
    }

    /// Caps a read length by the short-read draw and the disconnect cut.
    /// `Err` means the cut is already behind us: sever and report EOF.
    fn read_len(&mut self, want: usize) -> Result<usize, ()> {
        let mut len = want;
        if let Some(cut) = self.plan.read.disconnect_after {
            let left = cut.saturating_sub(self.read_bytes);
            if left == 0 {
                return Err(());
            }
            len = len.min(left as usize);
        }
        if len > 1 && self.rng.gen::<f64>() < self.plan.read.short_op_prob {
            len = self.rng.gen_range(1..len);
            self.log.short_reads += 1;
        }
        Ok(len.max(1))
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut rest = bytes;
        while !rest.is_empty() {
            if self.inner.is_none() {
                return Err(self.sever());
            }
            self.maybe_write_latency();
            self.serve_write_stall();
            let mut n = rest.len();
            if n > 1 && self.rng.gen::<f64>() < self.plan.write.short_op_prob {
                n = self.rng.gen_range(1..n);
                self.log.short_writes += 1;
            }
            if let Some(cut) = self.plan.write.disconnect_after {
                let left = cut.saturating_sub(self.write_bytes) as usize;
                if left == 0 {
                    return Err(self.sever());
                }
                if n >= left {
                    // Deliver the prefix up to the cut — truncating
                    // whatever frame it lands inside — then die.
                    if let Some(inner) = self.inner.as_mut() {
                        let _ = inner.write_all(&rest[..left]);
                        self.write_bytes += left as u64;
                    }
                    return Err(self.sever());
                }
            }
            let Some(inner) = self.inner.as_mut() else {
                return Err(self.sever());
            };
            inner.write_all(&rest[..n])?;
            self.write_bytes += n as u64;
            rest = &rest[n..];
        }
        Ok(())
    }

    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.inner.is_none() {
            return Ok(0); // severed = peer gone = end-of-stream
        }
        self.maybe_read_latency();
        self.serve_read_stall(None);
        let len = match self.read_len(buf.len()) {
            Ok(len) => len,
            Err(()) => {
                let _ = self.sever();
                return Ok(0);
            }
        };
        let Some(inner) = self.inner.as_mut() else {
            return Ok(0);
        };
        let n = inner.read_some(&mut buf[..len])?;
        self.read_bytes += n as u64;
        Ok(n)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() || self.inner.is_none() {
            return Ok(0);
        }
        let len = match self.read_len(buf.len()) {
            Ok(len) => len,
            Err(()) => {
                let _ = self.sever();
                return Ok(0);
            }
        };
        let Some(inner) = self.inner.as_mut() else {
            return Ok(0);
        };
        let n = inner.try_read(&mut buf[..len])?;
        self.read_bytes += n as u64;
        Ok(n)
    }

    fn read_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.inner.is_none() {
            return Ok(0);
        }
        self.maybe_read_latency();
        // A stall longer than the deadline must surface as a timeout —
        // that is exactly the watchdog scenario — while a shorter stall
        // just eats into the budget.
        let slept = self.serve_read_stall(Some(timeout));
        let budget = timeout.saturating_sub(slept);
        if budget.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected stall outlasted the read deadline",
            ));
        }
        let len = match self.read_len(buf.len()) {
            Ok(len) => len,
            Err(()) => {
                let _ = self.sever();
                return Ok(0);
            }
        };
        let Some(inner) = self.inner.as_mut() else {
            return Ok(0);
        };
        let n = inner.read_timeout(&mut buf[..len], budget)?;
        self.read_bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::memory_pair;

    #[test]
    fn clean_plan_is_transparent() {
        let (client, mut server) = memory_pair();
        let mut client = FaultyTransport::new(client, FaultPlan::clean(1));
        client.write_all(b"hello there").unwrap();
        let mut buf = [0u8; 32];
        let n = server.read_some(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello there");
        server.write_all(b"ack").unwrap();
        let n = client.read_some(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ack");
        assert_eq!(*client.log(), FaultLog::default());
    }

    #[test]
    fn short_ops_preserve_the_byte_stream() {
        let plan = FaultPlan {
            seed: 7,
            read: LinkFaults {
                short_op_prob: 1.0,
                ..LinkFaults::default()
            },
            write: LinkFaults {
                short_op_prob: 1.0,
                ..LinkFaults::default()
            },
        };
        let (client, mut server) = memory_pair();
        let mut client = FaultyTransport::new(client, plan);
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        client.write_all(&payload).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        while got.len() < payload.len() {
            let n = server.read_some(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, payload, "segmentation must not corrupt bytes");
        assert!(client.log().short_writes > 0, "splits actually happened");
        // And the same on the read side.
        server.write_all(&payload).unwrap();
        let mut got = Vec::new();
        while got.len() < payload.len() {
            let n = client.read_some(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, payload);
        assert!(client.log().short_reads > 0);
    }

    #[test]
    fn write_disconnect_truncates_at_the_exact_byte() {
        let (client, mut server) = memory_pair();
        let mut client =
            FaultyTransport::new(client, FaultPlan::clean(3).with_write_disconnect(10));
        let err = client.write_all(&[9u8; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(client.is_disconnected());
        let mut buf = [0u8; 64];
        let n = server.read_some(&mut buf).unwrap();
        assert_eq!(n, 10, "exactly the prefix below the cut arrived");
        // The drop of the inner stream closed the peer's side too.
        assert_eq!(server.read_some(&mut buf).unwrap(), 0);
        // Every later write fails; every later read is EOF.
        assert!(client.write_all(&[1]).is_err());
        assert_eq!(client.read_some(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_disconnect_delivers_the_prefix_then_eof() {
        let (client, server) = memory_pair();
        let mut client = FaultyTransport::new(client, FaultPlan::clean(4).with_read_disconnect(6));
        let mut server = server;
        server.write_all(b"0123456789").unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            let n = client.read_some(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"012345", "bytes below the cut, then EOF");
        assert!(client.is_disconnected());
        assert_eq!(client.log().disconnects, 1);
    }

    #[test]
    fn stall_consumes_the_deadline_then_times_out() {
        let (client, _server) = memory_pair();
        let mut client = FaultyTransport::new(
            client,
            FaultPlan::clean(5).with_read_stall(0, Duration::from_millis(40)),
        );
        let mut buf = [0u8; 8];
        let t0 = std::time::Instant::now();
        let err = client
            .read_timeout(&mut buf, Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "the deadline bounds the stall"
        );
        assert_eq!(client.log().stalled_ops, 1);
    }

    #[test]
    fn chaos_plans_replay_from_one_seed() {
        assert_eq!(FaultPlan::chaos(42), FaultPlan::chaos(42));
        assert_ne!(FaultPlan::chaos(42), FaultPlan::chaos(43));
    }
}
