//! # piano-net
//!
//! The transport subsystem: everything that moves PIANO's wire protocol
//! over real byte streams. The protocol logic itself is sans-IO
//! ([`piano_core::stream`] state machines, [`piano_core::wire`] framing
//! and backpressure); this crate binds those pieces to transports and
//! runs the fleet-scale ingest loop on top:
//!
//! ```text
//!  client (thin voucher device)                 server (gateway)
//!  ───────────────────────────                  ────────────────
//!  FeedHandle                                   ServerLoop
//!    Hello(codecs) ───────────────────────────▶   negotiate codec
//!    ◀─────────────────── Accept(session,codec)   open AuthService session
//!    ◀────────────── ReferenceSignals challenge   build voucher AuthSession
//!    AudioBatch/I16 frames ───────────────────▶   FrameReader → IngestFeed
//!    ◀──────────────────────────── Busy/Credit    (watermark backpressure)
//!    StreamEnd ───────────────────────────────▶   finish voucher, route
//!                                                 Step V report to service
//!                 (host scans the hub microphone: scan_and_decide)
//!    ◀─────────────────────────────── Decision    per-session verdict
//! ```
//!
//! * [`transport`] — the [`transport::Transport`]/[`transport::Listener`]
//!   abstraction with two bindings: a deterministic in-memory duplex
//!   (always available; what tests and benches use) and a loopback
//!   `std::net::TcpListener` (auto-skipped where sockets are
//!   unavailable).
//! * [`server`] — [`server::ServerLoop`], the thread-per-connection
//!   model: blocking ingestion into one shared
//!   [`piano_core::stream::AuthService`], with per-phase deadlines, a
//!   suspend/resume registry, and admission-control shedding.
//! * [`reactor`] — [`reactor::ReactorServer`], the readiness-reactor
//!   model: the same wire protocol and drop accounting served by one
//!   event-loop thread over nonblocking reads, with phase deadlines on a
//!   timer wheel and service state sharded per scan group
//!   ([`piano_core::stream::ShardedAuthService`]). Connection cost is
//!   bytes of state instead of an OS thread.
//! * [`client`] — the client-side [`client::FeedHandle`] that paces sends
//!   on credit, and [`client::ResilientFeed`], which redials and resumes
//!   the wire session when the transport dies.
//! * [`codec`] — the `f64` ⇄ i16 quantization layer over the wire codec
//!   ([`piano_core::wire::Message::AudioBatchI16`]) and the byte
//!   accounting used by [`piano_core::stream::ServiceStats`].
//! * [`fault`] — [`fault::FaultyTransport`], a seeded fault-injection
//!   wrapper over any transport (short reads/writes, latency, stalls,
//!   mid-stream disconnects), replayable from one `u64` via
//!   [`fault::FaultPlan`].
//!
//! # Determinism guarantee
//!
//! The transport moves bytes; it never changes results. A recording
//! ingested through any [`transport::Transport`], under any segmentation
//! of the byte stream, any interleaving of connections, and either codec,
//! produces decisions identical to feeding the same (quantized) samples
//! to the [`piano_core::stream::AuthService`] directly: framing is
//! exact, the i16 codec is lossless past quantization, and the scan
//! layers underneath are chunking- and worker-count-invariant
//! (`tests/net_transport.rs` pins the end-to-end conformance for 100
//! concurrent feeds, codec on and off). The guarantee extends across
//! faults: a stream broken by a survivable disconnect and resumed via
//! `Resume`/`ResumeAck` delivers a sample stream byte-identical to the
//! unbroken run (`tests/fault_injection.rs`).

#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod fault;
pub mod fixtures;
mod framing;
mod metrics;
pub mod reactor;
pub mod server;
pub mod transport;
mod wheel;

pub use client::{FeedHandle, FeedStats, ResilientFeed, RetryPolicy};
pub use codec::{quantize, quantize_samples};
pub use fault::{FaultLog, FaultPlan, FaultyTransport, LinkFaults, StallSpec};
pub use reactor::ReactorServer;
pub use server::{ServerConfig, ServerLoop};
pub use transport::{
    memory_hub, memory_pair, Listener, MemoryStream, ReadySet, ReadySignal, Transport,
};
