//! Byte-stream transports: the blocking duplex abstraction, a
//! deterministic in-memory implementation, and the loopback TCP binding.
//!
//! The wire layer ([`piano_core::wire::FrameReader`]) reassembles frames
//! from *any* segmentation of a byte stream, so a transport only needs
//! three operations: write bytes, read bytes (blocking), and read bytes
//! without blocking (for opportunistic reply draining). Everything above
//! — framing, codecs, backpressure, sessions — is transport-agnostic.

use std::collections::{BTreeSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Readiness
// ---------------------------------------------------------------------------

/// Shared state of a [`ReadySet`].
#[derive(Debug, Default)]
struct ReadyState {
    /// Tokens whose transports reported readable bytes (or EOF).
    ready: BTreeSet<usize>,
    /// A tokenless wakeup was requested (new connection injected, scan
    /// concluded, shutdown) — the waiter should re-check its mailboxes.
    kicked: bool,
}

/// A wait-drain readiness queue: the reactor side of the
/// [`Transport::register_ready`] surface. Transports (via their
/// [`ReadySignal`]s) push tokens; one event loop drains them, sleeping on
/// the internal condvar when nothing is pending.
#[derive(Debug, Default)]
pub struct ReadySet {
    state: Mutex<ReadyState>,
    cv: Condvar,
}

impl ReadySet {
    /// An empty set.
    pub fn new() -> Self {
        ReadySet::default()
    }

    /// A signal that marks `token` ready when notified. Hand one to each
    /// connection's [`Transport::register_ready`].
    pub fn signal(self: &Arc<Self>, token: usize) -> ReadySignal {
        ReadySignal {
            set: Arc::clone(self),
            token,
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, ReadyState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks `token` ready and wakes the waiter.
    pub fn push(&self, token: usize) {
        let mut s = self.lock_state();
        s.ready.insert(token);
        self.cv.notify_all();
    }

    /// Requests a tokenless wakeup (the waiter should re-check whatever
    /// out-of-band mailboxes it watches).
    pub fn kick(&self) {
        let mut s = self.lock_state();
        s.kicked = true;
        self.cv.notify_all();
    }

    /// Drains the ready tokens, waiting up to `timeout` (`None` = forever)
    /// for the first event. Returns the ready tokens (ascending) and
    /// whether a [`kick`](Self::kick) was absorbed. A `Some(ZERO)` timeout
    /// polls without sleeping.
    pub fn drain_wait(&self, timeout: Option<Duration>) -> (Vec<usize>, bool) {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut s = self.lock_state();
        while s.ready.is_empty() && !s.kicked {
            match deadline {
                None => {
                    s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(s, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    s = guard;
                }
            }
        }
        let kicked = std::mem::take(&mut s.kicked);
        (std::mem::take(&mut s.ready).into_iter().collect(), kicked)
    }
}

/// One connection's readiness callback: cloneable, send-safe, and cheap.
/// A transport that accepted one via [`Transport::register_ready`] calls
/// [`notify`](Self::notify) whenever bytes (or end-of-stream) become
/// readable — edge delivery into a level-consumed set, so duplicate
/// notifies coalesce.
#[derive(Clone, Debug)]
pub struct ReadySignal {
    set: Arc<ReadySet>,
    token: usize,
}

impl ReadySignal {
    /// Marks this connection ready in its owning [`ReadySet`].
    pub fn notify(&self) {
        self.set.push(self.token);
    }

    /// The token this signal marks ready.
    pub fn token(&self) -> usize {
        self.token
    }
}

/// A blocking, bidirectional byte stream between two endpoints.
///
/// Implementations must deliver bytes reliably and in order (the framing
/// layer detects corruption but cannot recover from it). `Ok(0)` from
/// [`read_some`](Self::read_some) means the peer closed the stream.
pub trait Transport: Send {
    /// Writes the whole buffer.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Reads at least one byte, blocking until data arrives; `Ok(0)`
    /// means end-of-stream (peer closed).
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Reads whatever is available *now*: `Err(WouldBlock)` when nothing
    /// is pending, `Ok(0)` at end-of-stream. Used to drain flow-control
    /// replies opportunistically between sends.
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// [`read_some`](Self::read_some) with a deadline: blocks at most
    /// `timeout` for the first byte, then returns
    /// `Err(io::ErrorKind::TimedOut)` if nothing arrived. `Ok(0)` still
    /// means end-of-stream. This is what deadline-aware server loops use
    /// so a silent peer cannot pin a connection thread forever.
    fn read_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<usize>;

    /// Registers a readiness signal: the transport arranges for
    /// `signal.notify()` to fire whenever readable bytes (or end-of-
    /// stream) become available, and returns `true`. The default — and
    /// any transport that cannot deliver edge notifications — returns
    /// `false`, telling the caller to fall back to *probing*: periodic
    /// [`try_read`](Self::try_read) polls (level-triggered emulation).
    ///
    /// A `true` implementation must also notify immediately when data is
    /// already pending at registration time, so no edge is lost to the
    /// registration race.
    fn register_ready(&mut self, signal: ReadySignal) -> bool {
        let _ = signal;
        false
    }
}

/// An acceptor of inbound [`Transport`] connections.
pub trait Listener: Send {
    /// The connection type this listener produces.
    type Conn: Transport + 'static;

    /// Blocks until the next connection arrives.
    fn accept_conn(&mut self) -> io::Result<Self::Conn>;
}

// ---------------------------------------------------------------------------
// In-memory duplex
// ---------------------------------------------------------------------------

/// One direction of an in-memory duplex: a byte queue with a close flag.
#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
    /// Readiness signal of the reading endpoint's reactor, if registered:
    /// notified on every write and on close.
    waker: Option<ReadySignal>,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

impl Pipe {
    /// Locks the queue state, recovering a poisoned lock: the byte queue
    /// and close flag are consistent after every mutation, so a panic on
    /// one endpoint's thread must not also break its peer's stream.
    fn lock_state(&self) -> MutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Copies up to `buf.len()` queued bytes out of `s` into `buf`.
    fn drain_into(s: &mut PipeState, buf: &mut [u8]) -> usize {
        let n = buf.len().min(s.buf.len());
        for (dst, src) in buf.iter_mut().zip(s.buf.drain(..n)) {
            *dst = src;
        }
        n
    }

    fn write(&self, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.lock_state();
        if s.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the in-memory stream",
            ));
        }
        s.buf.extend(bytes.iter().copied());
        self.readable.notify_all();
        if let Some(w) = &s.waker {
            w.notify();
        }
        Ok(())
    }

    fn read(&self, buf: &mut [u8], block: bool) -> io::Result<usize> {
        let mut s = self.lock_state();
        while s.buf.is_empty() {
            if s.closed {
                return Ok(0);
            }
            if !block {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "no bytes pending",
                ));
            }
            s = self
                .readable
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Ok(Self::drain_into(&mut s, buf))
    }

    fn read_deadline(&self, buf: &mut [u8], timeout: Duration) -> io::Result<usize> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock_state();
        while s.buf.is_empty() {
            if s.closed {
                return Ok(0);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no bytes within the read deadline",
                ));
            }
            let (guard, _) = self
                .readable
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
        Ok(Self::drain_into(&mut s, buf))
    }

    fn close(&self) {
        let mut s = self.lock_state();
        s.closed = true;
        self.readable.notify_all();
        if let Some(w) = &s.waker {
            w.notify();
        }
    }

    /// Installs (or clears) the reading side's readiness signal,
    /// notifying immediately if bytes or EOF are already pending so the
    /// registration race loses no edge.
    fn set_waker(&self, waker: Option<ReadySignal>) {
        let mut s = self.lock_state();
        let pending = !s.buf.is_empty() || s.closed;
        if let (Some(w), true) = (&waker, pending) {
            w.notify();
        }
        s.waker = waker;
    }
}

/// One endpoint of a deterministic in-memory duplex connection.
///
/// Always available (no sockets, no OS permissions), reliable, ordered,
/// and unbounded — the reference transport the conformance tests and
/// benches run on. Dropping an endpoint closes both directions: the
/// peer's reads return end-of-stream and its writes fail with
/// `BrokenPipe`.
#[derive(Debug)]
pub struct MemoryStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl Drop for MemoryStream {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Transport for MemoryStream {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.tx.write(bytes)
    }

    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf, true)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf, false)
    }

    fn read_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<usize> {
        self.rx.read_deadline(buf, timeout)
    }

    fn register_ready(&mut self, signal: ReadySignal) -> bool {
        self.rx.set_waker(Some(signal));
        true
    }
}

/// A connected pair of [`MemoryStream`] endpoints (client, server).
pub fn memory_pair() -> (MemoryStream, MemoryStream) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        MemoryStream {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        MemoryStream { rx: b, tx: a },
    )
}

/// The dial side of an in-memory hub: [`connect`](Self::connect) creates
/// a fresh duplex and hands the server end to the hub's
/// [`MemoryListener`]. Clone one per client thread.
#[derive(Clone, Debug)]
pub struct MemoryConnector {
    tx: Sender<MemoryStream>,
}

impl MemoryConnector {
    /// Establishes a new connection, returning the client endpoint.
    pub fn connect(&self) -> io::Result<MemoryStream> {
        let (client, server) = memory_pair();
        self.tx.send(server).map_err(|_| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "memory listener closed")
        })?;
        Ok(client)
    }
}

/// The accept side of an in-memory hub.
#[derive(Debug)]
pub struct MemoryListener {
    rx: Receiver<MemoryStream>,
}

impl Listener for MemoryListener {
    type Conn = MemoryStream;

    fn accept_conn(&mut self) -> io::Result<MemoryStream> {
        self.rx.recv().map_err(|_| {
            io::Error::new(io::ErrorKind::BrokenPipe, "every memory connector dropped")
        })
    }
}

/// An in-memory connect/accept hub: many clients dial the connector, the
/// listener accepts them in dial order.
pub fn memory_hub() -> (MemoryConnector, MemoryListener) {
    let (tx, rx) = channel();
    (MemoryConnector { tx }, MemoryListener { rx })
}

// ---------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------

impl Transport for TcpStream {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, bytes)
    }

    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.set_nonblocking(true)?;
        let r = io::Read::read(self, buf);
        self.set_nonblocking(false)?;
        r
    }

    fn read_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<usize> {
        // A zero socket timeout means "block forever" to the OS — clamp
        // up so a zero/expired deadline still returns promptly.
        self.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let r = io::Read::read(self, buf);
        self.set_read_timeout(None)?;
        r.map_err(|e| {
            // Platforms disagree on the expiry kind; normalize to TimedOut.
            if e.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(io::ErrorKind::TimedOut, e)
            } else {
                e
            }
        })
    }

    /// Loopback TCP has no edge-notification path in std (no epoll/kqueue
    /// without platform code, and this crate forbids `unsafe`), so TCP
    /// connections run in probe mode: the reactor level-polls them with
    /// [`Transport::try_read`] on its probe tick. Honest `false` beats a
    /// fake `true` that would strand the connection.
    fn register_ready(&mut self, signal: ReadySignal) -> bool {
        let _ = signal;
        false
    }
}

impl Listener for TcpListener {
    type Conn = TcpStream;

    fn accept_conn(&mut self) -> io::Result<TcpStream> {
        let (stream, _) = self.accept()?;
        // Frames are small relative to socket buffers; latency matters
        // more than coalescing for Busy/Credit round-trips.
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }
}

/// Environment variable that force-disables the TCP binding (`1`/`true`)
/// even where loopback sockets work — for sandboxes that allow binding
/// but not traffic.
pub const TCP_DISABLE_ENV: &str = "PIANO_NET_DISABLE_TCP";

/// Binds a loopback TCP listener on an ephemeral port, or `None` where
/// sockets are unavailable (sandboxed environments) or disabled via
/// [`TCP_DISABLE_ENV`]. Callers degrade to the in-memory transport — the
/// suite must pass with no network stack at all.
pub fn tcp_loopback() -> Option<(TcpListener, SocketAddr)> {
    if let Ok(v) = std::env::var(TCP_DISABLE_ENV) {
        let v = v.trim();
        if v == "1" || v.eq_ignore_ascii_case("true") {
            return None;
        }
    }
    let listener = TcpListener::bind(("127.0.0.1", 0)).ok()?;
    let addr = listener.local_addr().ok()?;
    Some((listener, addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pair_moves_bytes_both_ways() {
        let (mut client, mut server) = memory_pair();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server.read_some(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        server.write_all(b"pong!").unwrap();
        assert_eq!(client.read_some(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"pong!");
    }

    #[test]
    fn try_read_would_block_then_delivers() {
        let (mut client, mut server) = memory_pair();
        let mut buf = [0u8; 8];
        let err = server.try_read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        client.write_all(&[7, 8]).unwrap();
        assert_eq!(server.try_read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[7, 8]);
    }

    #[test]
    fn drop_closes_the_stream() {
        let (mut client, server) = memory_pair();
        drop(server);
        let mut buf = [0u8; 8];
        assert_eq!(client.read_some(&mut buf).unwrap(), 0, "EOF after drop");
        assert_eq!(
            client.write_all(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn blocking_read_waits_for_a_writer_thread() {
        let (mut client, mut server) = memory_pair();
        let writer = std::thread::spawn(move || {
            client.write_all(b"later").unwrap();
            client // keep alive until the write lands
        });
        let mut buf = [0u8; 8];
        let n = server.read_some(&mut buf).unwrap();
        assert_eq!(&buf[..n], &b"later"[..n]);
        drop(writer.join().unwrap());
    }

    #[test]
    fn read_timeout_expires_then_delivers() {
        let (mut client, mut server) = memory_pair();
        let mut buf = [0u8; 8];
        let err = server
            .read_timeout(&mut buf, Duration::from_millis(5))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        client.write_all(&[1, 2, 3]).unwrap();
        let n = server
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..n], &[1, 2, 3]);
        drop(client);
        assert_eq!(
            server
                .read_timeout(&mut buf, Duration::from_secs(5))
                .unwrap(),
            0,
            "EOF beats the deadline"
        );
    }

    #[test]
    fn memory_hub_accepts_in_dial_order() {
        let (connector, mut listener) = memory_hub();
        let mut c1 = connector.connect().unwrap();
        let mut c2 = connector.connect().unwrap();
        c1.write_all(b"one").unwrap();
        c2.write_all(b"two").unwrap();
        let mut buf = [0u8; 8];
        let mut s1 = listener.accept_conn().unwrap();
        let n = s1.read_some(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"one");
        let mut s2 = listener.accept_conn().unwrap();
        let n = s2.read_some(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"two");
    }

    #[test]
    fn tcp_loopback_roundtrip_or_skip() {
        let Some((mut listener, addr)) = tcp_loopback() else {
            eprintln!("skipping: loopback TCP unavailable here");
            return;
        };
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect loopback");
            s.write_all(b"tcp ping").unwrap();
            let mut buf = [0u8; 16];
            let n = s.read_some(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ack");
        });
        let mut conn = listener.accept_conn().unwrap();
        let mut buf = [0u8; 16];
        let n = conn.read_some(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"tcp ping");
        conn.write_all(b"ack").unwrap();
        client.join().unwrap();
    }
}
