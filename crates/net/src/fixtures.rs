//! The shared 0.50 m fleet-simulation geometry.
//!
//! The transport conformance tests, `examples/fleet_ingest.rs`, and the
//! micro bench's `net_ingest` measurement all drive the same scenario:
//! every feed's voucher "hears" the session's two reference signals
//! 5 871 samples apart, the gateway's hub microphone hears them 6 000
//! apart, and Eq. 3 yields `d = ½·(6000−5871)/44100·343 ≈ 0.50 m`.
//! Keeping the recording builders here means a change to the geometry
//! (or the quantization step) reaches all three surfaces at once —
//! otherwise the test, the example, and the bench would silently start
//! measuring different scenarios.

use piano_core::config::ActionConfig;
use piano_core::stream::{AuthService, SessionId, ShardedAuthService, SignalRole};
use piano_core::wire::Message;

use crate::codec::quantize_samples;
use crate::reactor::ReactorServer;
use crate::server::ServerLoop;

/// Samples between consecutive sessions' signals in the hub recording.
pub const STRIDE: usize = 12_288;

/// Per-feed voucher recording length, in samples.
pub const FEED_REC_LEN: usize = 16_384;

/// Offset of `S_A` in a feed recording (and, per session base, the hub).
pub const FEED_SA_OFFSET: usize = 2_000;

/// Offset of `S_V` in a feed recording: 5 871 samples after `S_A`.
pub const FEED_SV_OFFSET: usize = 7_871;

/// Offset of `S_V` past a session's base in the hub recording: 6 000
/// samples after `S_A`.
pub const HUB_SV_OFFSET: usize = 8_000;

/// Adds a scaled copy of `wave` into `rec` at `offset`.
pub fn embed(rec: &mut [f64], wave: &[f64], offset: usize, gain: f64) {
    for (i, &v) in wave.iter().enumerate() {
        rec[offset + i] += v * gain;
    }
}

/// The voucher-side recording for one session, synthesized from its
/// Step II challenge: `S_A` at [`FEED_SA_OFFSET`], `S_V` at
/// [`FEED_SV_OFFSET`] — quantized to the i16 grid, as a real 16-bit mic
/// would deliver it (which is also what makes transport-vs-direct
/// decision comparisons exact under either codec).
///
/// # Panics
///
/// Panics if `challenge` is not a valid [`Message::ReferenceSignals`]
/// under `config` — fixtures are for simulation hosts that just built
/// the challenge themselves.
pub fn feed_recording(challenge: &Message, config: &ActionConfig) -> Vec<f64> {
    let Message::ReferenceSignals { sa, sv, .. } = challenge else {
        panic!("expected the Step II challenge, got {challenge:?}");
    };
    let wave_a = sa.reconstruct(config).expect("valid spec").waveform();
    let wave_v = sv.reconstruct(config).expect("valid spec").waveform();
    let mut rec = vec![0.0f64; FEED_REC_LEN];
    embed(&mut rec, &wave_a, FEED_SA_OFFSET, 0.3);
    embed(&mut rec, &wave_v, FEED_SV_OFFSET, 0.4);
    quantize_samples(&rec)
}

/// The voucher-side recording answering one wire re-challenge round,
/// synthesized from its [`Message::Recheck`]: identical geometry to
/// [`feed_recording`] (`S_A` at [`FEED_SA_OFFSET`], `S_V` at
/// [`FEED_SV_OFFSET`], i16-quantized), so every re-check round re-ranges
/// the same 0.50 m scenario the original epoch granted.
///
/// # Panics
///
/// Panics if `recheck` is not a valid [`Message::Recheck`] under
/// `config` — fixtures are for simulation hosts whose server just built
/// the challenge.
pub fn recheck_recording(recheck: &Message, config: &ActionConfig) -> Vec<f64> {
    let Message::Recheck { sa, sv, .. } = recheck else {
        panic!("expected a re-challenge, got {recheck:?}");
    };
    let wave_a = sa.reconstruct(config).expect("valid spec").waveform();
    let wave_v = sv.reconstruct(config).expect("valid spec").waveform();
    let mut rec = vec![0.0f64; FEED_REC_LEN];
    embed(&mut rec, &wave_a, FEED_SA_OFFSET, 0.3);
    embed(&mut rec, &wave_v, FEED_SV_OFFSET, 0.4);
    quantize_samples(&rec)
}

/// The gateway's hub recording over `ids`' open sessions (in the given
/// order, one [`STRIDE`] apart): each session's `S_A` at
/// `base + `[`FEED_SA_OFFSET`], `S_V` at `base + `[`HUB_SV_OFFSET`].
/// Ids whose session no longer exists (dropped connections) are skipped.
pub fn hub_recording_for(service: &AuthService, ids: &[SessionId]) -> Vec<f64> {
    let live: Vec<_> = ids.iter().filter_map(|id| service.session(*id)).collect();
    let mut hub = vec![0.0f64; live.len() * STRIDE + FEED_REC_LEN];
    for (i, session) in live.iter().enumerate() {
        let wave_a = session.waveform_of(SignalRole::Auth).expect("S_A known");
        let wave_v = session.waveform_of(SignalRole::Vouch).expect("S_V known");
        let base = i * STRIDE;
        embed(&mut hub, &wave_a, base + FEED_SA_OFFSET, 0.4);
        embed(&mut hub, &wave_v, base + HUB_SV_OFFSET, 0.3);
    }
    hub
}

/// [`hub_recording_for`] over every session a [`ServerLoop`]'s
/// connections opened, in opening order.
pub fn hub_recording(server: &ServerLoop) -> Vec<f64> {
    let ids = server.session_ids();
    server.with_service(|service| hub_recording_for(service, &ids))
}

/// [`hub_recording_for`] over a sharded service: identical geometry,
/// with each session's waveforms fetched from its owning shard. `ids`
/// must be in opening order — shard-strided ids interleave, so sorting
/// would scramble the geometry.
pub fn hub_recording_sharded(service: &ShardedAuthService, ids: &[SessionId]) -> Vec<f64> {
    let live: Vec<(Vec<f64>, Vec<f64>)> = ids
        .iter()
        .filter_map(|&id| {
            service.with_session(id, |session| {
                let wave_a = session.waveform_of(SignalRole::Auth).expect("S_A known");
                let wave_v = session.waveform_of(SignalRole::Vouch).expect("S_V known");
                (wave_a, wave_v)
            })
        })
        .collect();
    let mut hub = vec![0.0f64; live.len() * STRIDE + FEED_REC_LEN];
    for (i, (wave_a, wave_v)) in live.iter().enumerate() {
        let base = i * STRIDE;
        embed(&mut hub, wave_a, base + FEED_SA_OFFSET, 0.4);
        embed(&mut hub, wave_v, base + HUB_SV_OFFSET, 0.3);
    }
    hub
}

/// [`hub_recording_sharded`] over every session a [`ReactorServer`]'s
/// connections opened, in opening order.
pub fn hub_recording_reactor(server: &ReactorServer) -> Vec<f64> {
    hub_recording_sharded(server.service(), &server.session_ids())
}
