//! The reactor's deadline timer: a thin clock-bearing adapter over the
//! shared hierarchical [`TickWheel`] in `piano-core::continuum`.
//!
//! Every connection phase (handshake, mid-stream idle, whole-stream
//! budget, decision wait, standing re-challenge) and every suspension's
//! resume window is one wheel entry instead of a blocking `read_timeout`
//! on a dedicated thread. This module owns the only clock-facing part:
//! mapping `Instant`s onto the wheel's abstract ticks (rounding
//! deadlines *up* so a timer never fires early). Hashing, cascading
//! across levels, round counting for far-future deadlines, and
//! deterministic expiry order all live in the shared implementation —
//! the same one `Continuum` uses to schedule millions of standing
//! sessions.
//!
//! Cancellation is *lazy*: callers never remove an entry. Instead every
//! timer-bearing owner keeps a generation counter, bumps it whenever the
//! deadline it cares about changes (e.g. the idle deadline resets on
//! every received byte), and ignores expirations that surface a stale
//! generation. Insertion and expiry are O(1) amortized; stale entries
//! cost one compare when their slot comes around.

use std::time::{Duration, Instant};

use piano_core::continuum::TickWheel;

/// What a timer entry identifies when it fires. The `gen` fields make
/// lazy cancellation work: the owner compares against its current
/// generation and drops stale firings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimerKey {
    /// A connection's current phase deadline.
    Conn { token: usize, gen: u64 },
    /// A suspension's resume-window expiry.
    Suspended { wire_session: u64, gen: u64 },
}

/// The adapter: an origin instant + tick duration over the shared wheel.
/// One per reactor, owned by the reactor thread — no locking anywhere.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    origin: Instant,
    tick: Duration,
    wheel: TickWheel<TimerKey>,
}

impl TimerWheel {
    /// A wheel with `tick` resolution starting now. Deadlines round *up*
    /// to the next tick boundary, so a timer never fires early.
    pub(crate) fn new(tick: Duration) -> Self {
        TimerWheel {
            origin: Instant::now(),
            tick: tick.max(Duration::from_micros(100)),
            wheel: TickWheel::new(),
        }
    }

    /// The absolute tick containing `t`, rounded up.
    fn tick_of(&self, t: Instant) -> u64 {
        let since = t.saturating_duration_since(self.origin);
        let ticks = since.as_nanos() / self.tick.as_nanos().max(1);
        // +1: round up so expiry checks run after the deadline, never at
        // or before it.
        (ticks as u64).saturating_add(1)
    }

    /// Arms a timer for `key` at `deadline`.
    pub(crate) fn insert(&mut self, deadline: Instant, key: TimerKey) {
        let at_tick = self.tick_of(deadline);
        self.wheel.insert(at_tick, key);
    }

    /// The earliest instant any stored entry could fire, for sleep
    /// bounding; `None` when the wheel is empty.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let at = self.wheel.next_tick()?;
        Some(self.origin + self.tick.saturating_mul(at.min(u32::MAX as u64) as u32))
    }

    /// Sweeps every slot whose tick has passed, collecting expired keys
    /// in deterministic (tick, insertion) order. Callers filter stale
    /// generations themselves.
    pub(crate) fn advance(&mut self, now: Instant) -> Vec<TimerKey> {
        let now_tick = self.tick_of(now).saturating_sub(1); // ticks fully elapsed
        self.wheel.advance(now_tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline_not_before() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(5),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        assert!(w.advance(now).is_empty(), "must not fire early");
        let fired = w.advance(now + Duration::from_millis(10));
        assert_eq!(fired, vec![TimerKey::Conn { token: 1, gen: 0 }]);
        assert!(
            w.next_deadline().is_none(),
            "wheel must disarm after firing"
        );
    }

    #[test]
    fn long_deadlines_survive_many_rotations() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        // ~2 s with 1 ms ticks: beyond one level-0 rotation of the
        // hierarchical wheel, so the entry parks coarse and cascades.
        w.insert(
            now + Duration::from_millis(2_000),
            TimerKey::Suspended {
                wire_session: 7,
                gen: 3,
            },
        );
        for step in 1..8 {
            assert!(
                w.advance(now + Duration::from_millis(step * 250))
                    .is_empty(),
                "fired {} ms early",
                2_000 - step * 250
            );
        }
        let fired = w.advance(now + Duration::from_millis(2_010));
        assert_eq!(
            fired,
            vec![TimerKey::Suspended {
                wire_session: 7,
                gen: 3
            }]
        );
    }

    #[test]
    fn stale_generations_are_the_callers_problem_but_order_is_stable() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(9),
            TimerKey::Conn { token: 2, gen: 0 },
        );
        w.insert(
            now + Duration::from_millis(3),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        let fired = w.advance(now + Duration::from_millis(20));
        assert_eq!(
            fired,
            vec![
                TimerKey::Conn { token: 1, gen: 0 },
                TimerKey::Conn { token: 2, gen: 0 }
            ],
            "expiry order follows deadlines, not insertion"
        );
    }

    #[test]
    fn next_deadline_bounds_the_sleep() {
        let mut w = TimerWheel::new(Duration::from_millis(2));
        assert!(w.next_deadline().is_none());
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(50),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        let nd = w.next_deadline().expect("armed");
        assert!(nd >= now + Duration::from_millis(50) - Duration::from_millis(4));
        assert!(nd <= now + Duration::from_millis(60));
    }

    #[test]
    fn unswept_earlier_entries_still_bound_next_deadline() {
        // Regression for the single-level wheel's lazy `soonest` bug: an
        // entry armed *behind* another entry's slot (but earlier in
        // time) must still be reflected by next_deadline and fire on
        // time.
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(400),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        // Sweep partway; then arm an earlier deadline.
        assert!(w.advance(now + Duration::from_millis(100)).is_empty());
        w.insert(
            now + Duration::from_millis(150),
            TimerKey::Conn { token: 2, gen: 0 },
        );
        let nd = w.next_deadline().expect("armed");
        assert!(
            nd <= now + Duration::from_millis(160),
            "sleep bound must see the earlier entry"
        );
        let fired = w.advance(now + Duration::from_millis(160));
        assert_eq!(fired, vec![TimerKey::Conn { token: 2, gen: 0 }]);
    }
}
