//! A hashed timer wheel for the reactor's phase deadlines.
//!
//! Every connection phase (handshake, mid-stream idle, whole-stream
//! budget, decision wait) and every suspension's resume window is one
//! entry here instead of a blocking `read_timeout` on a dedicated
//! thread. Entries hash into `SLOTS` buckets by expiry tick; an entry
//! whose expiry lies beyond one rotation simply stays in its bucket
//! until the wheel has swept past it enough times (round counting via
//! the absolute expiry tick — no per-entry round field needed).
//!
//! Cancellation is *lazy*: callers never remove an entry. Instead every
//! timer-bearing owner keeps a generation counter, bumps it whenever the
//! deadline it cares about changes (e.g. the idle deadline resets on
//! every received byte), and ignores expirations that surface a stale
//! generation. Insertion and expiry are O(1) amortized; stale entries
//! cost one compare when their slot comes around.

use std::time::{Duration, Instant};

/// Bucket count. With the default tick this spans ~1 s per rotation;
/// longer deadlines just survive extra sweeps.
const SLOTS: usize = 256;

/// What a timer entry identifies when it fires. The `gen` fields make
/// lazy cancellation work: the owner compares against its current
/// generation and drops stale firings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimerKey {
    /// A connection's current phase deadline.
    Conn { token: usize, gen: u64 },
    /// A suspension's resume-window expiry.
    Suspended { wire_session: u64, gen: u64 },
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Absolute expiry, in ticks since the wheel's origin.
    at_tick: u64,
    key: TimerKey,
}

/// The wheel itself. One per reactor, owned by the reactor thread — no
/// locking anywhere.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    origin: Instant,
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// The next tick `advance` will sweep (everything before it has been
    /// swept already).
    cursor: u64,
    /// Live entry count (stale entries included — they are still stored).
    armed: usize,
    /// Lower bound on the earliest `at_tick` of any stored entry, for
    /// cheap sleep computation; refreshed lazily by `advance`.
    soonest: u64,
}

impl TimerWheel {
    /// A wheel with `tick` resolution starting now. Deadlines round *up*
    /// to the next tick boundary, so a timer never fires early.
    pub(crate) fn new(tick: Duration) -> Self {
        TimerWheel {
            origin: Instant::now(),
            tick: tick.max(Duration::from_micros(100)),
            slots: vec![Vec::new(); SLOTS],
            cursor: 0,
            armed: 0,
            soonest: u64::MAX,
        }
    }

    /// The absolute tick containing `t`, rounded up.
    fn tick_of(&self, t: Instant) -> u64 {
        let since = t.saturating_duration_since(self.origin);
        let ticks = since.as_nanos() / self.tick.as_nanos().max(1);
        // +1: round up so expiry checks run after the deadline, never at
        // or before it.
        (ticks as u64).saturating_add(1)
    }

    /// Arms a timer for `key` at `deadline`.
    pub(crate) fn insert(&mut self, deadline: Instant, key: TimerKey) {
        let at_tick = self.tick_of(deadline).max(self.cursor);
        if let Some(slot) = self.slots.get_mut((at_tick % SLOTS as u64) as usize) {
            slot.push(Entry { at_tick, key });
            self.armed += 1;
            self.soonest = self.soonest.min(at_tick);
        }
    }

    /// The earliest instant any stored entry could fire, for sleep
    /// bounding; `None` when the wheel is empty.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        if self.armed == 0 {
            return None;
        }
        let at = self.soonest.max(self.cursor);
        Some(self.origin + self.tick.saturating_mul(at.min(u32::MAX as u64) as u32))
    }

    /// Sweeps every slot whose tick has passed, collecting expired keys
    /// in deterministic (tick, insertion) order. Callers filter stale
    /// generations themselves.
    pub(crate) fn advance(&mut self, now: Instant) -> Vec<TimerKey> {
        let now_tick = self.tick_of(now).saturating_sub(1); // ticks fully elapsed
        let mut fired: Vec<(u64, TimerKey)> = Vec::new();
        if self.armed == 0 || now_tick < self.cursor || now_tick < self.soonest {
            return Vec::new();
        }
        // Sweep at most one full rotation: beyond that every slot has
        // been visited once and entries keyed further out are retained
        // by the `at_tick` comparison anyway.
        let sweep_to = now_tick.min(self.cursor + SLOTS as u64);
        let mut soonest = u64::MAX;
        for t in self.cursor..=sweep_to {
            if let Some(slot) = self.slots.get_mut((t % SLOTS as u64) as usize) {
                let mut kept = Vec::new();
                for e in slot.drain(..) {
                    if e.at_tick <= now_tick {
                        fired.push((e.at_tick, e.key));
                    } else {
                        soonest = soonest.min(e.at_tick);
                        kept.push(e);
                    }
                }
                *slot = kept;
            }
        }
        self.cursor = sweep_to + 1;
        // Entries in unswept slots may still precede `soonest`; scan the
        // remainder only when the cheap bound was consumed.
        if soonest == u64::MAX {
            for slot in &self.slots {
                for e in slot {
                    soonest = soonest.min(e.at_tick);
                }
            }
        }
        self.soonest = soonest;
        self.armed = self.armed.saturating_sub(fired.len());
        fired.sort_by_key(|&(at, _)| at);
        fired.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline_not_before() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(5),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        assert!(w.advance(now).is_empty(), "must not fire early");
        let fired = w.advance(now + Duration::from_millis(10));
        assert_eq!(fired, vec![TimerKey::Conn { token: 1, gen: 0 }]);
        assert!(
            w.next_deadline().is_none(),
            "wheel must disarm after firing"
        );
    }

    #[test]
    fn long_deadlines_survive_many_rotations() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        // ~2 s with 256 × 1 ms slots: ~8 rotations.
        w.insert(
            now + Duration::from_millis(2_000),
            TimerKey::Suspended {
                wire_session: 7,
                gen: 3,
            },
        );
        for step in 1..8 {
            assert!(
                w.advance(now + Duration::from_millis(step * 250))
                    .is_empty(),
                "fired {} ms early",
                2_000 - step * 250
            );
        }
        let fired = w.advance(now + Duration::from_millis(2_010));
        assert_eq!(
            fired,
            vec![TimerKey::Suspended {
                wire_session: 7,
                gen: 3
            }]
        );
    }

    #[test]
    fn stale_generations_are_the_callers_problem_but_order_is_stable() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(9),
            TimerKey::Conn { token: 2, gen: 0 },
        );
        w.insert(
            now + Duration::from_millis(3),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        let fired = w.advance(now + Duration::from_millis(20));
        assert_eq!(
            fired,
            vec![
                TimerKey::Conn { token: 1, gen: 0 },
                TimerKey::Conn { token: 2, gen: 0 }
            ],
            "expiry order follows deadlines, not insertion"
        );
    }

    #[test]
    fn next_deadline_bounds_the_sleep() {
        let mut w = TimerWheel::new(Duration::from_millis(2));
        assert!(w.next_deadline().is_none());
        let now = Instant::now();
        w.insert(
            now + Duration::from_millis(50),
            TimerKey::Conn { token: 1, gen: 0 },
        );
        let nd = w.next_deadline().expect("armed");
        assert!(nd >= now + Duration::from_millis(50) - Duration::from_millis(4));
        assert!(nd <= now + Duration::from_millis(60));
    }
}
