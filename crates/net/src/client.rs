//! The client half of a feed: codec negotiation, credit-paced batch
//! streaming, verdict delivery — and the resilience layer that survives
//! a faulty link.
//!
//! [`FeedHandle`] is the bare protocol client over any [`Transport`]: it
//! offers codecs, streams a recording as framed batches, pauses on
//! `Busy`, resumes on `Credit`, and waits for the verdict. One handle
//! drives one connection; when the transport dies, the handle is dead
//! too.
//!
//! [`ResilientFeed`] wraps a handle with a redial function and a
//! [`RetryPolicy`]: a lost transport triggers reconnect-with-backoff and
//! a [`Message::Resume`] handshake, after which streaming continues from
//! the first chunk the server never accepted (the
//! [`Message::ResumeAck`] cursor). Replay costs no extra memory — chunks
//! are re-cut deterministically from the source recording — and the
//! resumed sample stream is byte-identical to an unbroken run. An
//! admission-control [`Message::Retry`] (the server shedding load)
//! surfaces as [`PianoError::Overloaded`] and is retried after the
//! server's hint plus backoff.

use std::io;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use piano_core::error::PianoError;
use piano_core::piano::AuthDecision;
use piano_core::wire::{FrameReader, Message, WireCodec};

use crate::codec;
use crate::framing::{io_transport, read_frame, read_more, READ_BUF_BYTES};
use crate::transport::Transport;

/// The client half of one feed: codec negotiation, credit-paced batch
/// streaming, and verdict delivery over any [`Transport`].
#[derive(Debug)]
pub struct FeedHandle<T: Transport> {
    t: T,
    reader: FrameReader,
    buf: Vec<u8>,
    session: u64,
    codec: WireCodec,
    /// `None` on a resumed handle: the challenge was delivered on the
    /// original connection.
    challenge: Option<Message>,
    next_seq: u32,
    paused: bool,
    wire_audio_bytes: u64,
    raw_audio_bytes: u64,
    busy_seen: u64,
    credit_seen: u64,
}

impl<T: Transport> FeedHandle<T> {
    /// Performs the client handshake: offers `offered` (preference
    /// order), reads the server's [`Message::Accept`] and the Step II
    /// challenge.
    ///
    /// # Errors
    ///
    /// [`PianoError::Overloaded`] if the server shed the connection with
    /// [`Message::Retry`]; [`PianoError::Transport`] if the link died;
    /// [`PianoError::Wire`] if the server answered out of protocol.
    pub fn connect(mut t: T, offered: &[WireCodec]) -> Result<Self, PianoError> {
        let hello = Message::Hello {
            codecs: offered.iter().map(|c| c.id()).collect(),
        };
        t.write_all(&hello.encode_framed()).map_err(io_transport)?;
        let mut reader = FrameReader::new();
        let mut buf = vec![0u8; READ_BUF_BYTES];
        let accept = read_frame(&mut t, &mut reader, &mut buf)?;
        let Message::Accept { session, codec } = accept else {
            if let Message::Retry { retry_after_ms } = accept {
                return Err(PianoError::Overloaded { retry_after_ms });
            }
            return Err(PianoError::Wire(format!("expected Accept, got {accept:?}")));
        };
        let codec = WireCodec::from_id(codec)
            .ok_or_else(|| PianoError::Wire(format!("server accepted unknown codec {codec}")))?;
        let challenge = read_frame(&mut t, &mut reader, &mut buf)?;
        match &challenge {
            Message::ReferenceSignals { session: s, .. } if *s == session => {}
            other => {
                return Err(PianoError::Wire(format!(
                    "expected the session {session:#x} challenge, got {other:?}"
                )))
            }
        }
        Ok(FeedHandle {
            t,
            reader,
            buf,
            session,
            codec,
            challenge: Some(challenge),
            next_seq: 0,
            paused: false,
            wire_audio_bytes: 0,
            raw_audio_bytes: 0,
            busy_seen: 0,
            credit_seen: 0,
        })
    }

    /// Re-attaches to a suspended wire session on a fresh transport:
    /// writes [`Message::Resume`] with the client's replay cursor and
    /// reads the server's [`Message::ResumeAck`]. Returns the handle
    /// (its cursor rewound to `ack_seq`), the ack'd sequence number, and
    /// whether the server already holds the whole stream (`ended` — skip
    /// re-sending audio and [`finish`](Self::finish), go straight to
    /// [`await_decision`](Self::await_decision)).
    ///
    /// # Errors
    ///
    /// [`PianoError::Transport`] if the link died (including the server
    /// rejecting an unknown/expired session by closing the connection);
    /// [`PianoError::Wire`] for an out-of-protocol answer.
    pub fn resume(
        mut t: T,
        session: u64,
        next_seq: u32,
        codec: WireCodec,
    ) -> Result<(Self, u32, bool), PianoError> {
        t.write_all(&Message::Resume { session, next_seq }.encode_framed())
            .map_err(io_transport)?;
        let mut reader = FrameReader::new();
        let mut buf = vec![0u8; READ_BUF_BYTES];
        let ack = read_frame(&mut t, &mut reader, &mut buf)?;
        let Message::ResumeAck {
            session: s,
            ack_seq,
            ended,
        } = ack
        else {
            return Err(PianoError::Wire(format!("expected ResumeAck, got {ack:?}")));
        };
        if s != session {
            return Err(PianoError::Wire(format!(
                "ResumeAck for session {s:#x}, expected {session:#x}"
            )));
        }
        Ok((
            FeedHandle {
                t,
                reader,
                buf,
                session,
                codec,
                challenge: None,
                next_seq: ack_seq,
                paused: false,
                wire_audio_bytes: 0,
                raw_audio_bytes: 0,
                busy_seen: 0,
                credit_seen: 0,
            },
            ack_seq,
            ended,
        ))
    }

    /// The wire session id the server assigned.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The negotiated audio codec.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// The next chunk sequence number this handle will send — after a
    /// [`resume`](Self::resume), the server's replay cursor.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// The Step II challenge ([`Message::ReferenceSignals`]) — the thin
    /// device reconstructs its playback signal `S_V` from this.
    ///
    /// # Panics
    ///
    /// On a [`resume`](Self::resume)d handle: the challenge was delivered
    /// on the original connection and is not re-sent.
    pub fn challenge(&self) -> &Message {
        self.challenge
            .as_ref()
            .expect("resumed handles carry no challenge")
    }

    /// Unwraps the underlying transport, abandoning the handle's pacing
    /// state. Misbehaving-sender tests use this to write raw bytes the
    /// handle would never produce.
    pub fn into_transport(self) -> T {
        self.t
    }

    /// Direct access to the underlying transport — the fault-scripting
    /// hook chaos tests use to place disconnect cuts relative to the
    /// traffic a [`crate::fault::FaultyTransport`] has already observed.
    /// Writing or reading through it corrupts the handle's framing.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.t
    }

    /// Audio bytes this handle has put on the wire (framed, post-codec).
    pub fn wire_audio_bytes(&self) -> u64 {
        self.wire_audio_bytes
    }

    /// What the same audio would have cost raw (framed `f64` batches).
    pub fn raw_audio_bytes(&self) -> u64 {
        self.raw_audio_bytes
    }

    /// `Busy` replies received so far.
    pub fn busy_seen(&self) -> u64 {
        self.busy_seen
    }

    /// `Credit` replies received so far.
    pub fn credit_seen(&self) -> u64 {
        self.credit_seen
    }

    /// Consumes pending flow-control replies. With `block_for_credit`,
    /// blocks until the outstanding `Busy` is answered — the pacing that
    /// keeps a cooperating sender under the receiver's hard limit.
    fn drain_replies(&mut self, block_for_credit: bool) -> Result<(), PianoError> {
        loop {
            while let Some(msg) = self.reader.next_frame()? {
                match msg {
                    Message::Busy { .. } => {
                        self.busy_seen += 1;
                        self.paused = true;
                    }
                    Message::Credit { .. } => {
                        self.credit_seen += 1;
                        self.paused = false;
                    }
                    other => {
                        return Err(PianoError::Wire(format!(
                            "unexpected reply while streaming: {other:?}"
                        )))
                    }
                }
            }
            if block_for_credit && self.paused {
                match self.t.read_some(&mut self.buf) {
                    Ok(0) => {
                        return Err(PianoError::Transport(
                            "server closed while the feed awaited credit".into(),
                        ))
                    }
                    Ok(n) => {
                        let chunk = &self.buf[..n];
                        self.reader.push(chunk);
                    }
                    Err(e) => return Err(io_transport(e)),
                }
                continue;
            }
            match self.t.try_read(&mut self.buf) {
                Ok(0) => return Ok(()), // EOF: surfaced by the next blocking read
                Ok(n) => {
                    let chunk = &self.buf[..n];
                    self.reader.push(chunk);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(io_transport(e)),
            }
        }
    }

    /// Sends one batch of consecutive chunks under the negotiated codec,
    /// first honoring any outstanding `Busy` (blocking until `Credit`).
    pub fn send_batch(&mut self, chunks: &[Vec<f64>]) -> Result<(), PianoError> {
        self.drain_replies(false)?;
        if self.paused {
            self.drain_replies(true)?;
        }
        let msg = codec::encode_audio_batch(self.codec, self.session, self.next_seq, chunks);
        self.next_seq += chunks.len() as u32;
        let framed = msg.encode_framed();
        self.wire_audio_bytes += framed.len() as u64;
        self.raw_audio_bytes += codec::raw_framed_audio_bytes(&msg);
        self.t.write_all(&framed).map_err(io_transport)
    }

    /// Streams a whole recording: `chunk_len`-sample chunks,
    /// `chunks_per_batch` chunks per frame, credit-paced.
    pub fn send_recording(
        &mut self,
        recording: &[f64],
        chunk_len: usize,
        chunks_per_batch: usize,
    ) -> Result<(), PianoError> {
        let chunks: Vec<Vec<f64>> = recording
            .chunks(chunk_len.max(1))
            .map(<[f64]>::to_vec)
            .collect();
        for batch in chunks.chunks(chunks_per_batch.max(1)) {
            self.send_batch(batch)?;
        }
        Ok(())
    }

    /// Signals end-of-recording for this feed.
    pub fn finish(&mut self) -> Result<(), PianoError> {
        self.t
            .write_all(
                &Message::StreamEnd {
                    session: self.session,
                }
                .encode_framed(),
            )
            .map_err(io_transport)
    }

    /// Blocks until the server delivers this session's verdict (late
    /// flow-control replies in between are absorbed).
    ///
    /// Unbounded — a test-only convenience. Production clients should
    /// call [`await_decision_timeout`](Self::await_decision_timeout).
    pub fn await_decision(&mut self) -> Result<AuthDecision, PianoError> {
        self.await_decision_deadline(None)
    }

    /// [`await_decision`](Self::await_decision) bounded by `timeout`.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when no verdict arrived within `timeout`.
    pub fn await_decision_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<AuthDecision, PianoError> {
        self.await_decision_deadline(Some(Instant::now() + timeout))
    }

    fn await_decision_deadline(
        &mut self,
        deadline: Option<Instant>,
    ) -> Result<AuthDecision, PianoError> {
        loop {
            let msg = match self.reader.next_frame()? {
                Some(m) => m,
                None => match read_more(&mut self.t, &mut self.buf, deadline, "decision wait") {
                    Ok(0) => {
                        return Err(PianoError::Transport(
                            "server closed before delivering a decision".into(),
                        ))
                    }
                    Ok(n) => {
                        let (buf, reader) = (&self.buf[..n], &mut self.reader);
                        reader.push(buf);
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            match msg {
                Message::Decision { session, decision } if session == self.session => {
                    return Ok(decision)
                }
                Message::Busy { .. } => self.busy_seen += 1,
                Message::Credit { .. } => self.credit_seen += 1,
                other => {
                    return Err(PianoError::Wire(format!(
                        "expected Decision, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Blocks until the server opens a re-challenge round for this
    /// standing feed and returns the [`Message::Recheck`] (round number
    /// plus the round's fresh reference signals — feed it to
    /// `fixtures::recheck_recording` in simulation hosts). Late
    /// flow-control replies in between are absorbed.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when no re-challenge arrived within
    /// `timeout`; [`PianoError::Transport`] when the server closed the
    /// connection instead (how a standing feed learns the server ended
    /// standing service).
    pub fn await_recheck(&mut self, timeout: Duration) -> Result<Message, PianoError> {
        let deadline = Some(Instant::now() + timeout);
        loop {
            let msg = match self.reader.next_frame()? {
                Some(m) => m,
                None => match read_more(&mut self.t, &mut self.buf, deadline, "recheck wait") {
                    Ok(0) => {
                        return Err(PianoError::Transport(
                            "server closed the standing connection".into(),
                        ))
                    }
                    Ok(n) => {
                        let (buf, reader) = (&self.buf, &mut self.reader);
                        if let Some(bytes) = buf.get(..n) {
                            reader.push(bytes);
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            match msg {
                Message::Recheck {
                    session,
                    round,
                    sa,
                    sv,
                } => {
                    if session != self.session {
                        return Err(PianoError::Wire(format!(
                            "recheck for session {session:#x}, expected {:#x}",
                            self.session
                        )));
                    }
                    return Ok(Message::Recheck {
                        session,
                        round,
                        sa,
                        sv,
                    });
                }
                Message::Busy { .. } => self.busy_seen += 1,
                Message::Credit { .. } => self.credit_seen += 1,
                other => return Err(PianoError::Wire(format!("expected Recheck, got {other:?}"))),
            }
        }
    }

    /// Streams one re-challenge round's recording back as
    /// [`Message::RecheckAudio`] frames — `chunk_len`-sample chunks,
    /// closed by an empty `done` frame. Re-check audio rides the raw
    /// `f64` framing regardless of the negotiated stream codec.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` exceeds the per-frame wire cap
    /// ([`piano_core::wire::MAX_AUDIO_CHUNK_SAMPLES`]).
    pub fn answer_recheck(
        &mut self,
        round: u32,
        recording: &[f64],
        chunk_len: usize,
    ) -> Result<(), PianoError> {
        let mut seq = 0u32;
        for chunk in recording.chunks(chunk_len.max(1)) {
            let msg = Message::RecheckAudio {
                session: self.session,
                round,
                seq,
                done: false,
                samples: chunk.to_vec(),
            };
            self.t
                .write_all(&msg.encode_framed())
                .map_err(io_transport)?;
            seq = seq.wrapping_add(1);
        }
        let fin = Message::RecheckAudio {
            session: self.session,
            round,
            seq,
            done: true,
            samples: Vec::new(),
        };
        self.t.write_all(&fin.encode_framed()).map_err(io_transport)
    }

    /// Blocks until round `round`'s [`Message::RecheckVerdict`] arrives
    /// and returns its decision.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when no verdict arrived within `timeout`;
    /// [`PianoError::Wire`] for a verdict addressing a different round.
    pub fn await_recheck_verdict(
        &mut self,
        round: u32,
        timeout: Duration,
    ) -> Result<AuthDecision, PianoError> {
        let deadline = Some(Instant::now() + timeout);
        loop {
            let msg = match self.reader.next_frame()? {
                Some(m) => m,
                None => match read_more(&mut self.t, &mut self.buf, deadline, "recheck verdict") {
                    Ok(0) => {
                        return Err(PianoError::Transport(
                            "server closed before delivering the recheck verdict".into(),
                        ))
                    }
                    Ok(n) => {
                        let (buf, reader) = (&self.buf, &mut self.reader);
                        if let Some(bytes) = buf.get(..n) {
                            reader.push(bytes);
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            match msg {
                Message::RecheckVerdict {
                    session,
                    round: r,
                    decision,
                } if session == self.session => {
                    if r != round {
                        return Err(PianoError::Wire(format!(
                            "recheck verdict for round {r}, expected {round}"
                        )));
                    }
                    return Ok(decision);
                }
                Message::Busy { .. } => self.busy_seen += 1,
                Message::Credit { .. } => self.credit_seen += 1,
                other => {
                    return Err(PianoError::Wire(format!(
                        "expected RecheckVerdict, got {other:?}"
                    )))
                }
            }
        }
    }
}

/// Reconnect pacing for a [`ResilientFeed`]: capped exponential backoff
/// with seeded jitter, so a whole fleet's retry schedule is reproducible
/// from the seeds.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Most reconnect attempts per failed operation before giving up.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the per-attempt delay.
    pub max_delay: Duration,
    /// Seed for the jitter stream (each delay is scaled by a factor in
    /// `[0.5, 1.0)` drawn from a ChaCha stream over this seed).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (zero-based).
    fn backoff(&self, rng: &mut ChaCha8Rng, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        exp.mul_f64(0.5 + rng.gen::<f64>() * 0.5)
    }
}

/// Observability counters of one [`ResilientFeed`]'s fight with its link.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct FeedStats {
    /// Reconnect attempts that did not immediately succeed (dial or
    /// resume handshake failed and was retried).
    pub retries: u64,
    /// Successful [`Message::Resume`] handshakes.
    pub resumes: u64,
    /// [`Message::Retry`] shed responses absorbed during connect.
    pub sheds_seen: u64,
    /// Total time spent sleeping in backoff.
    pub backoff_total: Duration,
}

/// A [`FeedHandle`] that survives its transport: redials on loss,
/// resumes the wire session, and replays from the server's cursor.
///
/// The dial function is called for every (re)connection attempt.
/// Suitable for any transport whose endpoints can be re-dialed — an
/// in-memory hub connector or a TCP address.
#[derive(Debug)]
pub struct ResilientFeed<T: Transport, D: FnMut() -> io::Result<T>> {
    dial: D,
    policy: RetryPolicy,
    rng: ChaCha8Rng,
    handle: FeedHandle<T>,
    stats: FeedStats,
}

impl<T: Transport, D: FnMut() -> io::Result<T>> ResilientFeed<T, D> {
    /// Dials and performs the [`FeedHandle::connect`] handshake,
    /// absorbing shed responses ([`PianoError::Overloaded`] — wait out
    /// the server's hint, clamped to [`RetryPolicy::max_delay`], then
    /// re-dial) and transport failures (jittered exponential backoff) up
    /// to [`RetryPolicy::max_attempts`]. Every failed attempt sleeps
    /// exactly once, and every slept interval is visible in
    /// [`FeedStats::backoff_total`].
    pub fn connect(
        mut dial: D,
        offered: &[WireCodec],
        policy: RetryPolicy,
    ) -> Result<Self, PianoError> {
        let mut rng = ChaCha8Rng::seed_from_u64(policy.jitter_seed);
        let mut stats = FeedStats::default();
        let mut attempt = 0u32;
        loop {
            let fail = match dial().map_err(io_transport) {
                Ok(t) => match FeedHandle::connect(t, offered) {
                    Ok(handle) => {
                        return Ok(ResilientFeed {
                            dial,
                            policy,
                            rng,
                            handle,
                            stats,
                        })
                    }
                    Err(e) => e,
                },
                Err(e) => e,
            };
            // Exactly one sleep per failed attempt: a shed response waits
            // out the server's hint (clamped to the policy ceiling, so a
            // hostile or misconfigured hint cannot stall the client past
            // its own worst-case delay), any other retryable failure
            // waits the jittered exponential backoff.
            let shed_hint = match &fail {
                PianoError::Overloaded { retry_after_ms } => {
                    stats.sheds_seen += 1;
                    Some(Duration::from_millis(*retry_after_ms).min(policy.max_delay))
                }
                PianoError::Transport(_) => None,
                _ => return Err(fail),
            };
            if attempt >= policy.max_attempts {
                return Err(fail);
            }
            let delay = shed_hint.unwrap_or_else(|| policy.backoff(&mut rng, attempt));
            stats.retries += 1;
            stats.backoff_total += delay;
            std::thread::sleep(delay);
            attempt += 1;
        }
    }

    /// Wraps an already-connected handle with resilience. Fleet tests
    /// use this to keep the initial handshakes sequential (session
    /// randomness binds to feed order) while still surviving faults that
    /// strike once streaming goes concurrent.
    pub fn adopt(handle: FeedHandle<T>, dial: D, policy: RetryPolicy) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(policy.jitter_seed);
        ResilientFeed {
            dial,
            policy,
            rng,
            handle,
            stats: FeedStats::default(),
        }
    }

    /// The live protocol handle (counters, session id, codec). Panics
    /// never — a `ResilientFeed` always holds a handle.
    pub fn handle(&self) -> &FeedHandle<T> {
        &self.handle
    }

    /// Mutable access to the live protocol handle. Standing-session
    /// clients answer re-challenge rounds on it after the verdict; the
    /// redial machinery does not cover those rounds (a cut there is a
    /// server-side round drop, not a resumable stream).
    pub fn handle_mut(&mut self) -> &mut FeedHandle<T> {
        &mut self.handle
    }

    /// This feed's resilience counters so far.
    pub fn stats(&self) -> FeedStats {
        self.stats
    }

    /// Redials and resumes the wire session with backoff. Returns the
    /// `ended` flag from the [`Message::ResumeAck`].
    fn reconnect(&mut self, mut last: PianoError) -> Result<bool, PianoError> {
        let session = self.handle.session();
        let codec = self.handle.codec();
        for attempt in 0..self.policy.max_attempts {
            let delay = self.policy.backoff(&mut self.rng, attempt);
            self.stats.backoff_total += delay;
            std::thread::sleep(delay);
            let cursor = self.handle.next_seq();
            match (self.dial)().map_err(io_transport) {
                Ok(t) => match FeedHandle::resume(t, session, cursor, codec) {
                    Ok((handle, _ack_seq, ended)) => {
                        self.handle = handle;
                        self.stats.resumes += 1;
                        return Ok(ended);
                    }
                    Err(e) => last = e,
                },
                Err(e) => last = e,
            }
            self.stats.retries += 1;
        }
        Err(last)
    }

    /// Is this failure worth a reconnect? Protocol violations are not —
    /// the server state is gone or was never compatible.
    fn lost(e: &PianoError) -> bool {
        matches!(e, PianoError::Transport(_))
    }

    /// Streams a whole recording like [`FeedHandle::send_recording`],
    /// resuming through any number of survivable transport losses. The
    /// replay cursor is the handle's [`next_seq`](FeedHandle::next_seq):
    /// chunks are re-cut from `recording`, so replay allocates nothing
    /// beyond the batch in flight.
    pub fn send_recording(
        &mut self,
        recording: &[f64],
        chunk_len: usize,
        chunks_per_batch: usize,
    ) -> Result<(), PianoError> {
        let chunks: Vec<Vec<f64>> = recording
            .chunks(chunk_len.max(1))
            .map(<[f64]>::to_vec)
            .collect();
        let per_batch = chunks_per_batch.max(1);
        loop {
            let cursor = self.handle.next_seq() as usize;
            if cursor >= chunks.len() {
                return Ok(());
            }
            let batch = &chunks[cursor..(cursor + per_batch).min(chunks.len())];
            if let Err(e) = self.handle.send_batch(batch) {
                if !Self::lost(&e) {
                    return Err(e);
                }
                // `ended` cannot be set before StreamEnd is sent; the
                // resumed cursor simply rewinds the loop.
                self.reconnect(e)?;
            }
        }
    }

    /// Ends the stream and waits (bounded) for the verdict, resuming
    /// through transport losses: a lost `StreamEnd` is re-sent, a lost
    /// `Decision` is re-read from the resumed connection.
    pub fn finish_and_await(&mut self, timeout: Duration) -> Result<AuthDecision, PianoError> {
        let deadline = Instant::now() + timeout;
        let mut ended = false;
        loop {
            if !ended {
                match self.handle.finish() {
                    Ok(()) => {}
                    Err(e) if Self::lost(&e) => {
                        ended = self.reconnect(e)?;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            let left = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| {
                    PianoError::Timeout("verdict did not arrive within the deadline".into())
                })?;
            match self.handle.await_decision_timeout(left) {
                Ok(decision) => return Ok(decision),
                Err(e) if Self::lost(&e) => {
                    // The server holds the whole stream; the resume ack
                    // must say so.
                    ended = self.reconnect(e)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
