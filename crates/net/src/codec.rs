//! The `f64` ⇄ i16 quantization layer over the wire codec.
//!
//! The wire format itself — fixed linear predictors, zigzag varint
//! residuals, the [`Message::AudioBatchI16`] tag — lives in
//! [`piano_core::wire`] next to the other message codecs; this module
//! adds what a transport endpoint needs around it:
//!
//! * quantization of simulated `f64` recordings onto the i16 grid (a
//!   real microphone's PCM is already there — quantization at the sender
//!   models the hardware, it is not a codec artifact);
//! * batch encoding under a negotiated [`WireCodec`];
//! * byte accounting: what a frame *would* have cost as raw `f64`
//!   batches, so [`piano_core::stream::ServiceStats`] can report the
//!   codec's wire saving without re-encoding anything.
//!
//! # Codec format (normative)
//!
//! An `AudioBatchI16` payload is
//! `tag(7) | session u64 | start_seq u32 | n_chunks u16 | chunk…` with
//! each chunk `order u8 | n u32 | n residual varints`. `order` selects a
//! fixed predictor (0 = verbatim, 1 = first difference, 2 = second
//! difference); the encoder picks the cheapest per chunk. Residuals are
//! `sample − prediction` in `i32`, zigzag-mapped and LEB128-encoded.
//! Silence costs one byte per sample, in-band tones typically two; the
//! worst case (alternating `i16::MIN`/`i16::MAX`) costs three — still
//! under half the raw eight. Decoding is exact: the quantized samples
//! come back bit-for-bit, for every input (property-tested in
//! `tests/codec_roundtrip.rs`).

use piano_core::wire::{Message, WireCodec};

/// Quantizes one sample onto the i16 grid: round half away from zero,
/// clamp to the representable range — the transfer function of a 16-bit
/// ADC fed a full-scale signal.
pub fn quantize(sample: f64) -> i16 {
    let r = sample.round();
    if r <= i16::MIN as f64 {
        i16::MIN
    } else if r >= i16::MAX as f64 {
        i16::MAX
    } else {
        r as i16
    }
}

/// Quantizes a recording onto the i16 grid and widens it back to `f64`.
///
/// Hosts that compare transport ingestion against direct
/// [`piano_core::stream::AuthService`] ingestion feed *this* to both
/// paths: past it, the i16 codec is lossless, so the two produce
/// identical decisions.
pub fn quantize_samples(samples: &[f64]) -> Vec<f64> {
    samples.iter().map(|&s| quantize(s) as f64).collect()
}

/// Quantizes chunked audio for the compressed wire representation.
pub fn quantize_chunks(chunks: &[Vec<f64>]) -> Vec<Vec<i16>> {
    chunks
        .iter()
        .map(|c| c.iter().map(|&s| quantize(s)).collect())
        .collect()
}

/// Widens decoded i16 chunks back to the `f64` samples the scan consumes.
///
/// Accepts any chunk representation that exposes its samples as a slice —
/// plain `Vec<i16>` chunks or the pooled [`piano_core::wire::Samples`]
/// handles a decoded [`Message::AudioBatchI16`] carries.
pub fn widen_chunks<C: AsRef<[i16]>>(chunks: &[C]) -> Vec<Vec<f64>> {
    chunks
        .iter()
        .map(|c| c.as_ref().iter().map(|&q| q as f64).collect())
        .collect()
}

/// Encodes one batch of audio chunks under the connection's negotiated
/// codec: a raw [`Message::AudioBatch`] for [`WireCodec::Raw`], a
/// quantized [`Message::AudioBatchI16`] for [`WireCodec::I16Delta`].
pub fn encode_audio_batch(
    codec: WireCodec,
    session: u64,
    start_seq: u32,
    chunks: &[Vec<f64>],
) -> Message {
    match codec {
        WireCodec::Raw => Message::AudioBatch {
            session,
            start_seq,
            chunks: chunks.to_vec().into(),
        },
        WireCodec::I16Delta => Message::AudioBatchI16 {
            session,
            start_seq,
            chunks: quantize_chunks(chunks).into(),
        },
    }
}

/// The framed wire size the samples of `msg` would occupy as the *raw*
/// `f64` representation — the codec-off baseline `ServiceStats` compares
/// actual wire bytes against. Computed arithmetically from the message
/// headers (no re-encoding): `AudioChunk` is `4 + 17 + 8·n` bytes framed,
/// a batch is `4 + 15 + Σ (4 + 8·nᵢ)`. Non-audio messages cost 0.
pub fn raw_framed_audio_bytes(msg: &Message) -> u64 {
    match msg {
        Message::AudioChunk { samples, .. } => 4 + 17 + 8 * samples.len() as u64,
        Message::AudioBatch { chunks, .. } => {
            4 + 15 + chunks.iter().map(|c| 4 + 8 * c.len() as u64).sum::<u64>()
        }
        Message::AudioBatchI16 { chunks, .. } => {
            4 + 15 + chunks.iter().map(|c| 4 + 8 * c.len() as u64).sum::<u64>()
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_and_clamps() {
        assert_eq!(quantize(0.0), 0);
        assert_eq!(quantize(0.49), 0);
        assert_eq!(quantize(0.5), 1);
        assert_eq!(quantize(-0.5), -1);
        assert_eq!(quantize(12_345.4), 12_345);
        assert_eq!(quantize(1e9), i16::MAX);
        assert_eq!(quantize(-1e9), i16::MIN);
        assert_eq!(quantize(32_767.2), 32_767);
        assert_eq!(quantize(32_767.6), i16::MAX);
        assert_eq!(quantize(-32_768.4), i16::MIN);
    }

    #[test]
    fn quantize_samples_is_idempotent() {
        let rec = vec![0.25, -1.75, 100.0, 40_000.0, -40_000.0];
        let once = quantize_samples(&rec);
        assert_eq!(quantize_samples(&once), once);
        assert_eq!(once, vec![0.0, -2.0, 100.0, 32_767.0, -32_768.0]);
    }

    #[test]
    fn raw_framed_bytes_match_actual_raw_encoding() {
        let chunks = vec![vec![1.0, -2.0, 3.0], vec![], vec![0.5; 7]];
        let raw = Message::AudioBatch {
            session: 9,
            start_seq: 2,
            chunks: chunks.clone().into(),
        };
        assert_eq!(
            raw_framed_audio_bytes(&raw),
            raw.encode_framed().len() as u64
        );
        let compressed = encode_audio_batch(WireCodec::I16Delta, 9, 2, &chunks);
        assert_eq!(
            raw_framed_audio_bytes(&compressed),
            raw.encode_framed().len() as u64,
            "the baseline for a compressed batch is its raw equivalent"
        );
        let chunk = Message::AudioChunk {
            session: 9,
            seq: 0,
            samples: vec![4.0; 11].into(),
        };
        assert_eq!(
            raw_framed_audio_bytes(&chunk),
            chunk.encode_framed().len() as u64
        );
        assert_eq!(
            raw_framed_audio_bytes(&Message::StreamEnd { session: 9 }),
            0
        );
    }

    #[test]
    fn encode_audio_batch_respects_the_codec() {
        let chunks = vec![vec![3.2, -8.9]];
        match encode_audio_batch(WireCodec::Raw, 1, 0, &chunks) {
            Message::AudioBatch { chunks: c, .. } => assert_eq!(c, chunks),
            other => panic!("expected raw batch, got {other:?}"),
        }
        match encode_audio_batch(WireCodec::I16Delta, 1, 0, &chunks) {
            Message::AudioBatchI16 { chunks: c, .. } => assert_eq!(c, vec![vec![3, -9]]),
            other => panic!("expected i16 batch, got {other:?}"),
        }
    }
}
