//! The readiness-reactor ingest server: every connection a state
//! machine, every deadline a timer-wheel entry, one thread for the whole
//! fleet.
//!
//! [`ReactorServer`] serves the same wire protocol as
//! [`ServerLoop`](crate::server::ServerLoop) — the conformance suite
//! pins the two models to byte-identical decisions and identical
//! [`DropCause`] accounting — but replaces thread-per-connection
//! blocking reads with a poll-style event loop:
//!
//! ```text
//!            host threads                      reactor thread
//!            ────────────                      ──────────────
//!  register(t) ──▶ inbox ─┐              ┌─▶ admit: token + FrameReader
//!  scan_and_decide ───────┤   drain ─────┤       + handshake timer
//!  shutdown ──────────────┘              ├─▶ TimerWheel::advance
//!                                        │     (idle / stream / decision
//!  ReadySignal::notify ──▶ ReadySet ─────┤      / resume-window expiry)
//!   (event-driven transports)            └─▶ turns: try_read → frames →
//!  probe tick (~1 ms) ───────────────────▶     IngestFeed → voucher scan
//!   (transports without readiness)             → Busy/Credit/Decision
//! ```
//!
//! # Why a reactor
//!
//! The threaded model pays one OS thread (default 2 MiB of stack) plus a
//! dedicated 64 KiB read buffer per connection, and parks each thread in
//! a blocking `read_timeout`. The reactor owns all connection state
//! itself — a few hundred bytes per connection state plus the frame
//! reader's
//! buffer — shares one read scratch buffer across the fleet, and sleeps
//! on a single [`ReadySet`] condition variable bounded by the earliest
//! timer. The connection ceiling becomes a question of per-connection
//! *bytes*, not schedulable *threads* (`net_ingest` in the bench suite
//! reports both models' ceilings).
//!
//! # What is preserved verbatim
//!
//! * **Decision determinism** — handshakes are processed in arrival
//!   order on one thread, so session RNG draws bind exactly as the
//!   threaded server's accept order does; framing, codecs, and the scan
//!   layers underneath are unchanged. N feeds through the reactor decide
//!   byte-identically to direct [`AuthService`] ingestion.
//! * **Fault isolation** — a connection that loses framing, skips
//!   sequence numbers, overruns its backlog, or misses a deadline is
//!   dropped alone, counted under the same [`DropCause`] the threaded
//!   server uses.
//! * **Deadline semantics** — handshake, mid-stream idle (only while
//!   the backlog is empty), whole-stream budget (anchored at handshake,
//!   spanning suspensions), and decision-wait timeouts all fire with the
//!   threaded server's classification; they are wheel entries instead of
//!   blocking-read bounds, so they can never fire early and never pin a
//!   thread.
//! * **Suspend/resume accounting** — a lost transport suspends into the
//!   same registry semantics ([`ServiceStats::connections_suspended`],
//!   `resumes`, [`DropCause::ResumeExpired`]); a `Resume` probe that
//!   arrives *before* the loss is discovered parks as a connection state
//!   (`Phase::PendingResume`) and is adopted the moment the loss
//!   lands — the reactor-event form of the registry wait, with no
//!   busy-polling anywhere.
//! * **Admission shedding** — a `Hello` over the
//!   [`ServerConfig::max_active_feeds`] limit is answered with `Retry`
//!   before any session state exists.
//!
//! What changes: the service is a [`ShardedAuthService`], so feeds on
//! different [`ActionConfig`](piano_core::config::ActionConfig)s tick
//! their scans under different locks (shard routing is by strided
//! session id — see the type's docs), and the host-facing wait/scan
//! calls are mailbox messages to the reactor instead of lock-and-block
//! rendezvous.
//!
//! [`AuthService`]: piano_core::stream::AuthService

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand_chacha::ChaCha8Rng;

use piano_core::error::PianoError;
use piano_core::piano::{AuthDecision, DenialReason};
use piano_core::stream::{AuthSession, DropCause, ServiceStats, SessionId, ShardedAuthService};
use piano_core::sync::OrderedMutex;
use piano_core::pool::FramePool;
use piano_core::wire::{FrameReader, IngestFeed, Message, WireCodec};

use crate::codec;
use crate::framing::{io_transport, READ_BUF_BYTES};
use crate::metrics::{audio_samples, Counters, FeedState};
use crate::server::ServerConfig;
use crate::transport::{Listener, ReadySet, Transport};
use crate::wheel::{TimerKey, TimerWheel};

/// Timer-wheel resolution. Deadlines round up to this, so a timeout can
/// fire up to one tick late, never early.
const WHEEL_TICK: Duration = Duration::from_millis(1);

/// Sleep bound while any probe-mode connection (a transport without
/// readiness notification, e.g. TCP) is attached: the reactor polls
/// those at this cadence instead of blocking indefinitely.
const PROBE_TICK: Duration = Duration::from_millis(1);

/// Most `try_read` calls one turn spends on one connection before
/// yielding, so one firehose feed cannot starve the rest of the fleet.
const READS_PER_TURN: usize = 8;

/// Lock ranks of the [`Shared`] mutexes: acquisition must ascend. `rng`
/// sits *below* the [`ShardedAuthService`] shard rank (20) because a
/// handshake holds the RNG while the service routes into a shard.
mod rank {
    pub(super) const PROGRESS: u32 = 10;
    pub(super) const RNG: u32 = 12;
    pub(super) const INBOX: u32 = 40;
    pub(super) const IDS: u32 = 50;
    pub(super) const CORE: u32 = 60;
}

/// Cross-thread progress state guarded by one mutex (+ condvar).
#[derive(Debug, Default)]
struct Progress {
    /// Step V reports routed into the service so far.
    reports: usize,
    /// Feeds dropped for protocol violations or deadline misses —
    /// counted here so [`ReactorServer::wait_for_reports`] can stop
    /// waiting for feeds that will never report.
    dropped: usize,
    /// Feeds attached and streaming right now — the admission-control
    /// population [`ServerConfig::max_active_feeds`] bounds.
    active: usize,
    /// The hub scan finished: decisions are available.
    scan_done: bool,
    /// Sessions the hub scan decided (valid once `scan_done`).
    decided: usize,
    /// Verdicts actually delivered to their connections, in delivery
    /// order.
    outcomes: Vec<(SessionId, AuthDecision)>,
    /// Granted feeds parked in [`Phase::Standing`], awaiting re-challenge
    /// rounds.
    standing: usize,
    /// The re-check round the host last commanded (0 = none yet).
    recheck_round: u64,
    /// Standing feeds that routed their report for the current round.
    recheck_ready: usize,
    /// Standing feeds that failed out of the current round (their report
    /// will never arrive — the recheck wait counts them so it cannot
    /// hang).
    recheck_dropped: usize,
    /// The last round whose hub scan concluded (verdicts delivered).
    recheck_scanned: u64,
    /// Sessions the last recheck scan decided (valid once
    /// `recheck_scanned` catches `recheck_round`).
    recheck_decided: usize,
    /// Per-round service sessions opened by standing feeds, in opening
    /// order (the hub-geometry order), cleared by each round's scan.
    recheck_ids: Vec<SessionId>,
}

/// Host-to-reactor mailbox: drained at the top of every loop turn.
#[derive(Default)]
struct Inbox {
    /// Transports handed over by [`ReactorServer::register`].
    injected: Vec<Box<dyn Transport>>,
    /// A pending [`ReactorServer::scan_and_decide`] request.
    scan: Option<ScanRequest>,
    /// A re-challenge round to open on every standing connection
    /// ([`ReactorServer::begin_recheck_round`]).
    recheck: Option<u64>,
    /// A pending [`ReactorServer::recheck_scan_and_decide`] request.
    recheck_scan: Option<ScanRequest>,
    /// [`ReactorServer::end_standing`] was called.
    end_standing: bool,
    /// [`ReactorServer::shutdown`] was called.
    shutdown: bool,
}

/// One queued hub scan. The hub waveform is shared, not copied: every
/// scan round (and every caller holding the same recording) bumps one
/// refcount instead of cloning megabytes of samples.
struct ScanRequest {
    hub: Arc<[f64]>,
    tick: usize,
}

/// What a suspended wire session is waiting to resume *into*.
enum Parked {
    /// Mid-stream: the feed continues from `feed.next_seq()`.
    Streaming(Box<FeedState>),
    /// The verdict is (or will be) available; a resume just re-delivers
    /// the `Decision` frame the client never received.
    Decided { id: SessionId },
}

/// One entry in the resume registry. `gen` pairs the entry with its
/// expiry timer (lazy cancellation — see [`TimerWheel`]).
struct Suspension {
    state: Parked,
    gen: u64,
}

/// One standing connection's in-flight re-challenge round.
struct RecheckState {
    /// The fresh per-round service session.
    id: SessionId,
    /// The feed's *original* wire session — what every re-challenge
    /// frame carries.
    wire_session: u64,
    /// The round being answered.
    round: u64,
    /// The gateway-side voucher re-ranging on the device's behalf.
    voucher: AuthSession,
    /// Next expected [`Message::RecheckAudio`] sequence number.
    next_seq: u32,
}

/// Where one connection is in the protocol.
enum Phase {
    /// Waiting for the opening `Hello` or `Resume` frame.
    Handshake,
    /// Attached and streaming audio.
    Streaming(Box<FeedState>),
    /// Reported; waiting for the hub scan's verdict.
    AwaitDecision { id: SessionId, wire_session: u64 },
    /// Granted and parked for continuous re-verification
    /// ([`ServerConfig::standing`]): the connection stays open, idle
    /// between re-challenge rounds. Like the threaded server's standing
    /// loop, nothing is read here — a silently dead transport is
    /// discovered (and accounted) at its next round's `Recheck` write.
    Standing { wire_session: u64 },
    /// A re-challenge round is in flight: [`Message::Recheck`] was
    /// written, the round's [`Message::RecheckAudio`] stream is being
    /// ingested under a [`ServerConfig::recheck_timeout`] wheel entry.
    Rechecking(Box<RecheckState>),
    /// The round's report is routed; waiting for the host's recheck scan
    /// to conclude under a decision-timeout wheel entry.
    AwaitRecheckVerdict {
        id: SessionId,
        wire_session: u64,
        round: u64,
    },
    /// A `Resume` probe that arrived before its feed's loss was
    /// discovered: parked until the suspension lands (adopted directly
    /// by the losing connection's teardown) or the handshake deadline
    /// fires. This replaces the threaded server's registry busy-poll.
    PendingResume {
        wire_session: u64,
        client_next_seq: u32,
    },
}

/// One connection owned by the reactor.
struct Conn {
    t: Box<dyn Transport>,
    reader: FrameReader,
    /// Generation of this connection's current wheel entry; a firing
    /// with a stale generation is ignored.
    armed_gen: u64,
    /// The phase deadline the wheel entry stands for. Data arrival
    /// pushes it later without touching the wheel: the old entry re-arms
    /// itself when it fires and finds `now < next_deadline`.
    next_deadline: Instant,
    /// The transport reported end-of-stream (or a read error); the
    /// backlog may still be draining.
    eof: bool,
    phase: Phase,
}

/// Reactor-thread-private state: connections, timers, the suspension
/// registry, and the shared read scratch buffer. Owned (taken out of
/// [`Shared::core`]) by whichever thread enters [`ReactorServer::run`].
struct Core {
    /// Token-indexed connection slots; `None` = free or mid-turn.
    conns: Vec<Option<Conn>>,
    /// Free tokens for reuse.
    free: Vec<usize>,
    /// Resume registry: wire session id → parked feed, while
    /// [`ServerConfig::resume_window`] lasts.
    suspended: BTreeMap<u64, Suspension>,
    wheel: TimerWheel,
    /// One read buffer shared by every connection — the per-connection
    /// memory the threaded model pays per thread.
    scratch: Vec<u8>,
    /// Tokens of probe-mode connections (no readiness notification).
    probe: BTreeSet<usize>,
    /// Tokens with work queued for the next turn (backlog to drain,
    /// readiness observed, freshly admitted).
    runnable: BTreeSet<usize>,
    /// The hub scan has started: sessions can no longer be closed.
    scan_started: bool,
    /// The hub scan finished (reactor-local mirror of
    /// [`Progress::scan_done`]).
    scan_done: bool,
    /// The last re-check round whose scan concluded (reactor-local
    /// mirror of [`Progress::recheck_scanned`]).
    recheck_scanned: u64,
    /// Standing service has ended: standing connections close instead of
    /// re-parking.
    standing_over: bool,
    /// Global generation counter for timer entries and suspensions.
    gen_counter: u64,
}

impl Core {
    fn new() -> Self {
        Core {
            conns: Vec::new(),
            free: Vec::new(),
            suspended: BTreeMap::new(),
            wheel: TimerWheel::new(WHEEL_TICK),
            scratch: vec![0u8; READ_BUF_BYTES],
            probe: BTreeSet::new(),
            runnable: BTreeSet::new(),
            scan_started: false,
            scan_done: false,
            recheck_scanned: 0,
            standing_over: false,
            gen_counter: 0,
        }
    }
}

/// State shared between the reactor thread and host threads.
struct Shared {
    /// The sharded service: per-session calls lock only the owning
    /// shard, so ticks on different configurations never contend.
    service: ShardedAuthService,
    rng: OrderedMutex<ChaCha8Rng>,
    cfg: ServerConfig,
    counters: Counters,
    progress: OrderedMutex<Progress>,
    progress_cv: Condvar,
    ids: OrderedMutex<Vec<SessionId>>,
    /// The readiness queue the reactor sleeps on.
    ready: Arc<ReadySet>,
    inbox: OrderedMutex<Inbox>,
    /// The reactor-private state, parked here until [`ReactorServer::run`]
    /// claims it (exactly once).
    core: OrderedMutex<Option<Core>>,
    /// Largest per-connection resident footprint observed, in bytes —
    /// what the `net_ingest` bench divides the memory budget by.
    conn_bytes_peak: AtomicU64,
    /// Server-wide slab pool audio frames decode into: every
    /// connection's [`FrameReader`] and [`IngestFeed`] draw from (and
    /// recycle to) this one pool, so steady-state ingestion reuses a
    /// bounded working set instead of allocating per frame.
    pool: FramePool,
}

/// The readiness-reactor ingest server over a [`ShardedAuthService`].
/// Cheap to clone (an `Arc` handle): clone one into the thread that
/// calls [`run`](Self::run), keep another for registration and the
/// scan/wait calls.
#[derive(Clone)]
pub struct ReactorServer {
    shared: Arc<Shared>,
}

impl ReactorServer {
    /// A reactor over `service`, drawing session randomness from `rng`
    /// (handshakes draw in arrival order on the single reactor thread,
    /// so a seeded rng makes a whole fleet run reproducible).
    pub fn new(service: ShardedAuthService, rng: ChaCha8Rng, cfg: ServerConfig) -> Self {
        ReactorServer {
            shared: Arc::new(Shared {
                service,
                rng: OrderedMutex::new(rank::RNG, "reactor.rng", rng),
                cfg,
                counters: Counters::default(),
                progress: OrderedMutex::new(
                    rank::PROGRESS,
                    "reactor.progress",
                    Progress::default(),
                ),
                progress_cv: Condvar::new(),
                ids: OrderedMutex::new(rank::IDS, "reactor.ids", Vec::new()),
                ready: Arc::new(ReadySet::new()),
                inbox: OrderedMutex::new(rank::INBOX, "reactor.inbox", Inbox::default()),
                core: OrderedMutex::new(rank::CORE, "reactor.core", Some(Core::new())),
                conn_bytes_peak: AtomicU64::new(0),
                pool: FramePool::new(),
            }),
        }
    }

    /// The underlying sharded service (shard locks are taken per call —
    /// safe from any thread).
    pub fn service(&self) -> &ShardedAuthService {
        &self.shared.service
    }

    /// Session ids opened so far, in opening order. **Not** sorted:
    /// shard-strided ids interleave, so opening order is the only
    /// meaningful order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.shared.ids.lock().clone()
    }

    /// Verdicts delivered to their connections so far, in delivery
    /// order.
    pub fn outcomes(&self) -> Vec<(SessionId, AuthDecision)> {
        self.shared.progress.lock().outcomes.clone()
    }

    /// Hands a connection to the reactor. Returns immediately; the
    /// reactor thread admits it on its next loop turn.
    pub fn register<T: Transport + 'static>(&self, transport: T) {
        self.shared.inbox.lock().injected.push(Box::new(transport));
        self.shared.ready.kick();
    }

    /// Accepts `n` connections from `listener`, registering each with
    /// the reactor. Unlike the threaded server there are no
    /// per-connection threads to join: collect verdicts from
    /// [`outcomes`](Self::outcomes) after the scan.
    pub fn accept_clients<L: Listener>(&self, listener: &mut L, n: usize) {
        for _ in 0..n {
            match listener.accept_conn() {
                Ok(conn) => self.register(conn),
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    break;
                }
            }
        }
    }

    /// Spawns a thread accepting `n` connections into the reactor.
    pub fn spawn_acceptor<L: Listener + 'static>(
        &self,
        mut listener: L,
        n: usize,
    ) -> JoinHandle<()> {
        let server = self.clone();
        std::thread::spawn(move || server.accept_clients(&mut listener, n))
    }

    /// Spawns the reactor thread (see [`run`](Self::run)).
    pub fn start(&self) -> JoinHandle<()> {
        let server = self.clone();
        std::thread::spawn(move || server.run())
    }

    /// Asks the reactor thread to exit. Connections still attached are
    /// dropped silently (no drop accounting) when the loop unwinds.
    pub fn shutdown(&self) {
        self.shared.inbox.lock().shutdown = true;
        self.shared.ready.kick();
    }

    /// Largest per-connection resident footprint observed so far, in
    /// bytes: connection state + frame-reader buffer + peak backlog.
    /// The threaded model adds a thread stack and a private read buffer
    /// on top of the same state — the bench compares the two.
    pub fn peak_conn_bytes(&self) -> u64 {
        self.shared.conn_bytes_peak.load(Ordering::Relaxed)
    }

    /// A point-in-time [`ServiceStats`] snapshot across every connection
    /// served so far.
    pub fn stats(&self) -> ServiceStats {
        self.shared
            .counters
            .snapshot(self.shared.service.sessions_decided() as u64)
    }

    // -- host-side waits ---------------------------------------------------

    /// Blocks until each of `n` registered connections has either routed
    /// its Step V report or been dropped, then returns how many actually
    /// reported. Suspended feeds count as neither until they resume or
    /// their window expires — the reactor's timer wheel owns that expiry,
    /// so this wait is a plain condvar wait with no polling tick.
    ///
    /// Unbounded — a test-only convenience. Production hosts should call
    /// [`wait_for_reports_timeout`](Self::wait_for_reports_timeout).
    pub fn wait_for_reports(&self, n: usize) -> usize {
        // With no deadline the wait cannot return Err.
        self.wait_reports_deadline(n, None).unwrap_or_default()
    }

    /// [`wait_for_reports`](Self::wait_for_reports) bounded by `timeout`.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds have reported or
    /// dropped within `timeout`.
    pub fn wait_for_reports_timeout(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<usize, PianoError> {
        self.wait_reports_deadline(n, Some(Instant::now() + timeout))
    }

    fn wait_reports_deadline(
        &self,
        n: usize,
        deadline: Option<Instant>,
    ) -> Result<usize, PianoError> {
        let sh = &*self.shared;
        let mut progress = sh.progress.lock();
        loop {
            if progress.reports + progress.dropped >= n {
                return Ok(progress.reports);
            }
            let now = Instant::now();
            match deadline {
                Some(d) if now >= d => {
                    return Err(PianoError::Timeout(format!(
                        "{} of {n} feeds concluded before the report deadline",
                        progress.reports + progress.dropped
                    )));
                }
                Some(d) => {
                    let (guard, _) = progress.wait_timeout(&sh.progress_cv, d - now);
                    progress = guard;
                }
                None => {
                    progress = progress.wait(&sh.progress_cv);
                }
            }
        }
    }

    /// Posts the hub microphone's recording to the reactor, which
    /// streams it through every service shard in `tick`-sample chunks,
    /// concludes the scan groups, delivers pending verdicts, and
    /// reports back. Returns the number of sessions that decided.
    /// Blocks until the reactor has run the scan — call
    /// [`start`](Self::start) first.
    pub fn scan_and_decide(&self, hub_audio: &[f64], tick: usize) -> usize {
        self.scan_and_decide_arc(hub_audio.into(), tick)
    }

    /// [`scan_and_decide`](Self::scan_and_decide) without the waveform
    /// copy: the reactor borrows the caller's shared recording. Hosts
    /// that scan the same hub recording across rounds (or hold it for
    /// their own bookkeeping) should prefer this.
    pub fn scan_and_decide_arc(&self, hub_audio: Arc<[f64]>, tick: usize) -> usize {
        {
            let mut inbox = self.shared.inbox.lock();
            inbox.scan = Some(ScanRequest {
                hub: hub_audio,
                tick,
            });
        }
        self.shared.ready.kick();
        let sh = &*self.shared;
        let mut progress = sh.progress.lock();
        while !progress.scan_done {
            progress = progress.wait(&sh.progress_cv);
        }
        progress.decided
    }

    // -- continuous re-verification (host side) ----------------------------

    /// Blocks until at least `n` granted feeds are parked standing,
    /// returning the standing population. Only meaningful with
    /// [`ServerConfig::standing`] set.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds are standing
    /// within `timeout`.
    pub fn wait_for_standing(&self, n: usize, timeout: Duration) -> Result<usize, PianoError> {
        let deadline = Instant::now() + timeout;
        let sh = &*self.shared;
        let mut progress = sh.progress.lock();
        loop {
            if progress.standing >= n {
                return Ok(progress.standing);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PianoError::Timeout(format!(
                    "{} of {n} feeds standing before the deadline",
                    progress.standing
                )));
            }
            let (guard, _) = progress.wait_timeout(&sh.progress_cv, deadline - now);
            progress = guard;
        }
    }

    /// Opens the next re-challenge round on every standing connection
    /// and returns its number. The reactor writes each feed's
    /// [`Message::Recheck`] (fresh per-round session, fresh signals,
    /// original wire session) on its next loop iteration; follow with
    /// [`wait_for_recheck_reports`](Self::wait_for_recheck_reports) and
    /// [`recheck_scan_and_decide`](Self::recheck_scan_and_decide).
    pub fn begin_recheck_round(&self) -> u64 {
        let round = {
            let mut progress = self.shared.progress.lock();
            progress.recheck_round += 1;
            progress.recheck_ready = 0;
            progress.recheck_dropped = 0;
            progress.recheck_ids.clear();
            progress.recheck_round
        };
        self.shared.inbox.lock().recheck = Some(round);
        self.shared.ready.kick();
        round
    }

    /// Blocks until `n` standing feeds have answered the current round
    /// (or failed out of it), then returns how many actually routed
    /// their per-round report.
    ///
    /// # Errors
    ///
    /// [`PianoError::Timeout`] when fewer than `n` feeds conclude the
    /// round within `timeout`.
    pub fn wait_for_recheck_reports(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<usize, PianoError> {
        let deadline = Instant::now() + timeout;
        let sh = &*self.shared;
        let mut progress = sh.progress.lock();
        loop {
            if progress.recheck_ready + progress.recheck_dropped >= n {
                return Ok(progress.recheck_ready);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PianoError::Timeout(format!(
                    "{} of {n} feeds answered the re-check round before the deadline",
                    progress.recheck_ready + progress.recheck_dropped
                )));
            }
            let (guard, _) = progress.wait_timeout(&sh.progress_cv, deadline - now);
            progress = guard;
        }
    }

    /// The current round's per-round session ids in *opening* order —
    /// exactly the order `hub_recording_sharded` needs. Call after
    /// [`wait_for_recheck_reports`](Self::wait_for_recheck_reports) and
    /// before the scan (which consumes the round's ids).
    pub fn recheck_session_ids(&self) -> Vec<SessionId> {
        self.shared.progress.lock().recheck_ids.clone()
    }

    /// Posts the round's hub recording to the reactor, which scans it,
    /// delivers every waiting feed's [`Message::RecheckVerdict`], closes
    /// the round's per-round sessions, and reports back. Returns the
    /// number of per-round sessions that decided. Blocks until the
    /// reactor has served the round — call [`start`](Self::start) first.
    pub fn recheck_scan_and_decide(&self, hub_audio: &[f64], tick: usize) -> usize {
        self.recheck_scan_and_decide_arc(hub_audio.into(), tick)
    }

    /// [`recheck_scan_and_decide`](Self::recheck_scan_and_decide)
    /// without the waveform copy — see
    /// [`scan_and_decide_arc`](Self::scan_and_decide_arc).
    pub fn recheck_scan_and_decide_arc(&self, hub_audio: Arc<[f64]>, tick: usize) -> usize {
        let round = self.shared.progress.lock().recheck_round;
        {
            let mut inbox = self.shared.inbox.lock();
            inbox.recheck_scan = Some(ScanRequest {
                hub: hub_audio,
                tick,
            });
        }
        self.shared.ready.kick();
        let sh = &*self.shared;
        let mut progress = sh.progress.lock();
        while progress.recheck_scanned < round {
            progress = progress.wait(&sh.progress_cv);
        }
        progress.recheck_decided
    }

    /// Ends standing service: parked connections close on the reactor's
    /// next iteration (their clients observe a transport close), and
    /// newly granted feeds stop parking. Permanent.
    pub fn end_standing(&self) {
        self.shared.inbox.lock().end_standing = true;
        self.shared.ready.kick();
    }

    // -- the reactor loop --------------------------------------------------

    /// The reactor loop: drains the host mailbox, advances the timer
    /// wheel, gives every runnable or probe-mode connection a turn, and
    /// sleeps on the [`ReadySet`] bounded by the earliest timer. Runs
    /// until [`shutdown`](Self::shutdown). The loop state can be claimed
    /// only once — a second concurrent `run` returns immediately.
    pub fn run(&self) {
        let taken = self.shared.core.lock().take();
        let mut core = match taken {
            Some(c) => c,
            None => return,
        };
        loop {
            // Host mailbox first: admissions, scans, and the standing
            // commands.
            let (injected, scan, recheck, recheck_scan, end_standing, shutdown) = {
                let mut inbox = self.shared.inbox.lock();
                (
                    mem::take(&mut inbox.injected),
                    inbox.scan.take(),
                    inbox.recheck.take(),
                    inbox.recheck_scan.take(),
                    mem::take(&mut inbox.end_standing),
                    inbox.shutdown,
                )
            };
            if shutdown {
                break;
            }
            for t in injected {
                self.admit(&mut core, t);
            }
            if let Some(req) = scan {
                self.run_scan(&mut core, &req.hub, req.tick);
            }
            if let Some(round) = recheck {
                self.start_recheck_round(&mut core, round);
            }
            if let Some(req) = recheck_scan {
                self.run_recheck_scan(&mut core, &req.hub, req.tick);
            }
            if end_standing {
                self.end_standing_sweep(&mut core);
            }

            // Expired timers, in deadline order.
            for key in core.wheel.advance(Instant::now()) {
                self.on_timer(&mut core, key, Instant::now());
            }

            // Turns: everything marked runnable plus every probe-mode
            // connection (their readiness is only discoverable by
            // trying).
            let mut work = mem::take(&mut core.runnable);
            work.extend(core.probe.iter().copied());
            for token in work {
                self.turn(&mut core, token);
            }

            // Sleep: not at all while work is queued; else until the
            // earliest timer, the probe tick, or a readiness event.
            let wait = if !core.runnable.is_empty() {
                Some(Duration::ZERO)
            } else {
                let now = Instant::now();
                let timer = core
                    .wheel
                    .next_deadline()
                    .map(|d| d.saturating_duration_since(now));
                match (timer, core.probe.is_empty()) {
                    (Some(t), false) => Some(t.min(PROBE_TICK)),
                    (Some(t), true) => Some(t),
                    (None, false) => Some(PROBE_TICK),
                    (None, true) => None,
                }
            };
            let (ready, _kicked) = self.shared.ready.drain_wait(wait);
            for token in ready {
                core.runnable.insert(token);
            }
        }
    }

    /// Admits a registered transport: allocates a token, wires its
    /// readiness signal (or marks it probe-mode), arms the handshake
    /// deadline, and queues its first turn.
    fn admit(&self, core: &mut Core, mut t: Box<dyn Transport>) {
        let sh = &*self.shared;
        sh.counters.connections.fetch_add(1, Ordering::Relaxed);
        let token = match core.free.pop() {
            Some(tok) => tok,
            None => {
                core.conns.push(None);
                core.conns.len() - 1
            }
        };
        let event_driven = t.register_ready(sh.ready.signal(token));
        if !event_driven {
            core.probe.insert(token);
        }
        let mut conn = Conn {
            t,
            reader: FrameReader::with_pool(sh.pool.clone()),
            armed_gen: 0,
            next_deadline: Instant::now() + sh.cfg.handshake_timeout,
            eof: false,
            phase: Phase::Handshake,
        };
        self.rearm(core, token, &mut conn);
        self.put_back(core, token, conn);
        core.runnable.insert(token);
    }

    /// Arms a fresh wheel entry for the connection's current
    /// `next_deadline`, invalidating any previous entry via the
    /// generation bump.
    fn rearm(&self, core: &mut Core, token: usize, conn: &mut Conn) {
        core.gen_counter += 1;
        conn.armed_gen = core.gen_counter;
        core.wheel.insert(
            conn.next_deadline,
            TimerKey::Conn {
                token,
                gen: conn.armed_gen,
            },
        );
    }

    /// Returns a connection to its slot after a turn.
    fn put_back(&self, core: &mut Core, token: usize, conn: Conn) {
        if let Some(slot) = core.conns.get_mut(token) {
            *slot = Some(conn);
        }
    }

    /// Finishes a turn: puts the connection back, or frees its token if
    /// the turn consumed it.
    fn finish_turn(&self, core: &mut Core, token: usize, out: Option<Conn>) {
        match out {
            Some(conn) => self.put_back(core, token, conn),
            None => {
                if core.conns.get(token).is_some_and(|slot| slot.is_none()) {
                    core.free.push(token);
                    core.probe.remove(&token);
                    core.runnable.remove(&token);
                }
            }
        }
    }

    /// One turn for one connection: read what is available, then drive
    /// its phase machine.
    fn turn(&self, core: &mut Core, token: usize) {
        core.runnable.remove(&token);
        let conn = match core.conns.get_mut(token).and_then(Option::take) {
            Some(c) => c,
            None => return, // stale token (freed or mid-scan delivery)
        };
        let out = self.drive(core, token, conn);
        self.finish_turn(core, token, out);
    }

    /// Reads pending bytes into the frame reader (bounded per turn),
    /// then dispatches on phase. `Some` = keep the connection; `None` =
    /// consumed (dropped, shed, suspended, or delivered).
    fn drive(&self, core: &mut Core, token: usize, mut conn: Conn) -> Option<Conn> {
        let mut got_bytes = false;
        for _ in 0..READS_PER_TURN {
            match conn.t.try_read(&mut core.scratch) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    got_bytes = true;
                    if let Some(bytes) = core.scratch.get(..n) {
                        conn.reader.push(bytes);
                    }
                    // Keep reading even after a short read: a peer that
                    // writes a final partial frame and immediately hangs
                    // up signals both edges in ONE readiness token, so
                    // stopping here would miss the EOF until the idle
                    // timer. The next iteration returns `WouldBlock`
                    // (nothing pending) or `Ok(0)` (the missed close).
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    // A read error is end-of-transport; the phase logic
                    // decides whether that suspends or drops the feed.
                    let _ = e;
                    conn.eof = true;
                    break;
                }
            }
        }
        // The placeholder phase is never observed: every arm either
        // consumes the connection or stores a real phase back.
        match mem::replace(&mut conn.phase, Phase::Handshake) {
            Phase::Handshake => self.drive_handshake(core, token, conn),
            Phase::Streaming(state) => self.drive_streaming(core, token, conn, state, got_bytes),
            Phase::AwaitDecision { id, wire_session } => {
                // Nothing to read here: like the threaded server, a dead
                // or chatty peer is only discovered at the Decision
                // write. The decision timer bounds the wait.
                conn.phase = Phase::AwaitDecision { id, wire_session };
                Some(conn)
            }
            Phase::Standing { wire_session } => {
                // Parked between rounds: like the threaded server's
                // standing loop, nothing is read here — junk frames or a
                // silently dead transport are discovered (and accounted)
                // at the next round's re-challenge.
                conn.phase = Phase::Standing { wire_session };
                Some(conn)
            }
            Phase::Rechecking(state) => self.drive_rechecking(core, token, conn, state),
            Phase::AwaitRecheckVerdict {
                id,
                wire_session,
                round,
            } => {
                // Nothing to read: the recheck scan delivers the verdict,
                // bounded by the decision timer.
                conn.phase = Phase::AwaitRecheckVerdict {
                    id,
                    wire_session,
                    round,
                };
                Some(conn)
            }
            Phase::PendingResume {
                wire_session,
                client_next_seq,
            } => {
                // Normally the losing connection's teardown adopts this
                // probe directly; the registry check covers a suspension
                // re-parked after a failed resume write.
                if let Some(susp) = core.suspended.remove(&wire_session) {
                    self.shared.counters.resumes.fetch_add(1, Ordering::Relaxed);
                    return self.attach(
                        core,
                        token,
                        conn,
                        wire_session,
                        client_next_seq,
                        susp.state,
                    );
                }
                conn.phase = Phase::PendingResume {
                    wire_session,
                    client_next_seq,
                };
                Some(conn)
            }
        }
    }

    /// Handshake phase: wait for the complete opening frame, then admit
    /// (`Hello`), adopt (`Resume` with a registry hit), park the probe
    /// (`Resume` without one), or drop.
    fn drive_handshake(&self, core: &mut Core, token: usize, mut conn: Conn) -> Option<Conn> {
        let first = match conn.reader.next_frame() {
            Ok(Some(m)) => m,
            Ok(None) => {
                if conn.eof {
                    drop(conn);
                    self.drop_conn_state(
                        core,
                        None,
                        DropCause::Disconnect,
                        &PianoError::Transport("connection closed during handshake".into()),
                        false,
                    );
                    return None;
                }
                return Some(conn); // keep waiting; the handshake timer is armed
            }
            Err(e) => {
                drop(conn);
                self.drop_conn_state(core, None, DropCause::Framing, &e, false);
                return None;
            }
        };
        match first {
            Message::Hello { codecs } => self.handshake_hello(core, token, conn, &codecs),
            Message::Resume { session, next_seq } => {
                if let Some(susp) = core.suspended.remove(&session) {
                    self.shared.counters.resumes.fetch_add(1, Ordering::Relaxed);
                    return self.attach(core, token, conn, session, next_seq, susp.state);
                }
                conn.phase = Phase::PendingResume {
                    wire_session: session,
                    client_next_seq: next_seq,
                };
                Some(conn)
            }
            other => {
                drop(conn);
                self.drop_conn_state(
                    core,
                    None,
                    DropCause::Protocol,
                    &PianoError::Wire(format!("expected Hello or Resume, got {other:?}")),
                    false,
                );
                None
            }
        }
    }

    /// `Hello`: admission check, codec negotiation, session open, and
    /// the `Accept` + challenge writes, mirroring the threaded server's
    /// opening exchange exactly (including its shed-before-any-state and
    /// RNG-draw ordering).
    fn handshake_hello(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        codecs: &[u8],
    ) -> Option<Conn> {
        let sh = &*self.shared;
        // Admission control before any session state exists.
        let shed = {
            let progress = sh.progress.lock();
            progress.active >= sh.cfg.max_active_feeds
        };
        if shed {
            sh.counters.connections_shed.fetch_add(1, Ordering::Relaxed);
            let _ = conn.t.write_all(
                &Message::Retry {
                    retry_after_ms: sh.cfg.retry_after_ms,
                }
                .encode_framed(),
            );
            return None; // shed is not a drop
        }
        let codec = WireCodec::negotiate(codecs, &sh.cfg.supported_codecs);
        let opened = {
            let mut rng = sh.rng.lock();
            sh.service.with_default(|svc| {
                let id = svc.open_session(false, &mut rng);
                // A freshly opened session always queues its Step II
                // challenge; treat a missing one as a protocol-layer
                // failure rather than a server panic.
                match svc.poll_transmit(id) {
                    Some(challenge) => Some((id, challenge, Arc::clone(svc.detector()))),
                    None => {
                        let _ = svc.close_session(id);
                        None
                    }
                }
            })
        };
        let (id, challenge, detector) = match opened.flatten() {
            Some(v) => v,
            None => {
                drop(conn);
                self.drop_conn_state(
                    core,
                    None,
                    DropCause::Protocol,
                    &PianoError::Wire("opened session queued no challenge".into()),
                    false,
                );
                return None;
            }
        };
        sh.ids.lock().push(id);
        {
            let mut progress = sh.progress.lock();
            progress.active += 1;
        }
        // From here on, every pre-report exit must decrement `active`
        // exactly once.
        let mut voucher = AuthSession::voucher_with(detector);
        if let Err(e) = voucher.handle_message(challenge.clone()) {
            drop(conn);
            self.dec_active();
            self.drop_conn_state(core, Some(id), DropCause::Protocol, &e, false);
            return None;
        }
        let wire_session = voucher.session_id();
        let accept = Message::Accept {
            session: wire_session,
            codec: codec.id(),
        };
        // The thin client must *play* S_V (Step III) even though the
        // gateway scans on its behalf, so it gets the Step II challenge.
        let wrote = conn
            .t
            .write_all(&accept.encode_framed())
            .and_then(|()| conn.t.write_all(&challenge.encode_framed()));
        if let Err(e) = wrote {
            drop(conn);
            self.dec_active();
            self.drop_conn_state(
                core,
                Some(id),
                DropCause::Disconnect,
                &io_transport(e),
                false,
            );
            return None;
        }
        let state = Box::new(FeedState {
            id,
            wire_session,
            voucher,
            feed: {
                let mut feed = IngestFeed::new(wire_session, sh.cfg.high_water);
                feed.set_pool(sh.pool.clone());
                feed
            },
            ended: false,
            started: Instant::now(),
        });
        let now = Instant::now();
        conn.next_deadline = (now + sh.cfg.idle_timeout).min(state.started + sh.cfg.stream_timeout);
        conn.phase = Phase::Streaming(state);
        self.rearm(core, token, &mut conn);
        // Frames may already be buffered behind the handshake.
        core.runnable.insert(token);
        Some(conn)
    }

    /// Streaming phase: frames → feed accounting → voucher scan →
    /// flow-control replies, then conclude, reschedule, or suspend.
    fn drive_streaming(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        mut state: Box<FeedState>,
        got_bytes: bool,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        let stream_deadline = state.started + sh.cfg.stream_timeout;
        if got_bytes {
            // Data arrival resets the idle watchdog (bounded by the
            // whole-stream budget). Deadlines only ever move later, so
            // the armed wheel entry stays valid and re-arms on fire.
            let fresh = (Instant::now() + sh.cfg.idle_timeout).min(stream_deadline);
            if fresh > conn.next_deadline {
                conn.next_deadline = fresh;
            }
        }
        loop {
            let before = conn.reader.consumed();
            // A framing error propagates the reader's poison cause:
            // this connection is dropped, nothing else is.
            let msg = match conn.reader.next_frame() {
                Ok(Some(m)) => m,
                Ok(None) => break,
                Err(e) => {
                    drop(conn);
                    self.drop_feed(core, state, DropCause::Framing, &e);
                    return None;
                }
            };
            match msg {
                m @ (Message::AudioChunk { .. }
                | Message::AudioBatch { .. }
                | Message::AudioBatchI16 { .. }) => {
                    // `accept` enforces sequence contiguity and the
                    // backlog hard limit; violating either drops the
                    // connection here. Classify the hard-limit breach (a
                    // sender ignoring Busy) apart from the rest.
                    let overrun =
                        state.feed.buffered() + audio_samples(&m) > state.feed.hard_limit();
                    if let Err(e) = state.feed.accept(&m) {
                        let cause = if overrun {
                            DropCause::Overrun
                        } else {
                            DropCause::Protocol
                        };
                        drop(conn);
                        self.drop_feed(core, state, cause, &e);
                        return None;
                    }
                    sh.counters.frames_decoded.fetch_add(1, Ordering::Relaxed);
                    sh.counters
                        .wire_audio_bytes
                        .fetch_add(conn.reader.consumed() - before, Ordering::Relaxed);
                    sh.counters
                        .raw_audio_bytes
                        .fetch_add(codec::raw_framed_audio_bytes(&m), Ordering::Relaxed);
                }
                Message::StreamEnd { session } if session == state.wire_session => {
                    state.ended = true;
                }
                other => {
                    drop(conn);
                    self.drop_feed(
                        core,
                        state,
                        DropCause::Protocol,
                        &PianoError::Wire(format!("unexpected mid-stream message {other:?}")),
                    );
                    return None;
                }
            }
        }
        // Drain one scan chunk per turn — the simulated scan rate that
        // makes watermark backpressure observable, same as the threaded
        // server's loop cadence.
        // Drain straight from the feed's pooled segments into the
        // voucher — no staging copy. Segment boundaries only affect
        // chunking, which the scan is invariant to.
        {
            let st = &mut *state;
            let voucher = &mut st.voucher;
            st.feed.drain_pending(sh.cfg.drain_chunk, |run| {
                let _ = voucher.push_audio(run);
            });
        }
        while let Some(reply) = state.feed.poll_reply() {
            match &reply {
                Message::Busy { .. } => {
                    sh.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                }
                Message::Credit { .. } => {
                    sh.counters.credit_replies.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            if let Err(e) = conn.t.write_all(&reply.encode_framed()) {
                drop(conn);
                return self.lose_feed(core, state, io_transport(e));
            }
        }
        if state.ended && state.feed.buffered() == 0 {
            return self.conclude_report(core, token, conn, state);
        }
        if state.feed.buffered() > 0 {
            // Backlog pending: keep draining next turn (even past EOF —
            // audio already accepted is audio the scan gets).
            core.runnable.insert(token);
        } else if conn.eof {
            drop(conn);
            return self.lose_feed(
                core,
                state,
                PianoError::Transport("connection closed before StreamEnd".into()),
            );
        }
        conn.phase = Phase::Streaming(state);
        Some(conn)
    }

    /// The stream is complete: conclude the voucher scan, route its
    /// Step V report into the service, and either deliver the verdict
    /// (scan already done) or wait for it under the decision deadline.
    fn conclude_report(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        mut state: Box<FeedState>,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        sh.counters.max_peak(state.feed.peak_buffered() as u64);
        self.record_conn_footprint(&conn, &state);
        let _ = state.voucher.finish_audio();
        let report = match state.voucher.poll_transmit() {
            Some(r) => r,
            None => {
                drop(conn);
                self.drop_feed(
                    core,
                    state,
                    DropCause::Protocol,
                    &PianoError::Wire("voucher produced no report".into()),
                );
                return None;
            }
        };
        if let Err(e) = sh.service.handle_message(state.id, report) {
            drop(conn);
            self.drop_feed(core, state, DropCause::Protocol, &e);
            return None;
        }
        {
            let mut progress = sh.progress.lock();
            progress.reports += 1;
            progress.active = progress.active.saturating_sub(1);
            sh.progress_cv.notify_all();
        }
        let id = state.id;
        let wire_session = state.wire_session;
        drop(state);
        if core.scan_done {
            self.deliver(core, conn, id, wire_session)
        } else {
            conn.phase = Phase::AwaitDecision { id, wire_session };
            conn.next_deadline = Instant::now() + sh.cfg.decision_timeout;
            self.rearm(core, token, &mut conn);
            Some(conn)
        }
    }

    /// Writes the session's verdict. With a resume window configured the
    /// verdict parks in the registry *before* the write, so a client
    /// that loses the connection with the `Decision` frame in flight can
    /// reconnect and have it re-sent. Consumes the connection — unless
    /// [`ServerConfig::standing`] is set and the verdict granted, in
    /// which case the connection parks in [`Phase::Standing`] for
    /// continuous re-verification.
    fn deliver(
        &self,
        core: &mut Core,
        mut conn: Conn,
        id: SessionId,
        wire_session: u64,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        let decision = sh.service.decision(id).unwrap_or(AuthDecision::Denied {
            reason: DenialReason::ProtocolFailure("session undecided after the hub scan".into()),
        });
        if !sh.cfg.resume_window.is_zero() {
            self.park(core, wire_session, Parked::Decided { id });
        }
        let frame = Message::Decision {
            session: wire_session,
            decision: decision.clone(),
        }
        .encode_framed();
        match conn.t.write_all(&frame) {
            Ok(()) => {
                let standing = sh.cfg.standing && !core.standing_over && decision.is_granted();
                {
                    let mut progress = sh.progress.lock();
                    progress.outcomes.push((id, decision));
                    if standing {
                        progress.standing += 1;
                        sh.progress_cv.notify_all();
                    }
                }
                if standing {
                    conn.phase = Phase::Standing { wire_session };
                    return Some(conn);
                }
            }
            Err(e) if !sh.cfg.resume_window.is_zero() => {
                // The Decided entry parked above lets the client resume
                // and re-read the verdict.
                let _ = e;
            }
            Err(e) => {
                // Post-report failures are waived: this feed already
                // counted in Progress::reports, so adding it to
                // Progress::dropped would make the wait see it twice.
                self.drop_conn_state(
                    core,
                    Some(id),
                    DropCause::Disconnect,
                    &io_transport(e),
                    true,
                );
            }
        }
        None
    }

    // -- continuous re-verification ----------------------------------------

    /// Opens re-challenge round `round` on every standing connection, in
    /// token order (which fixes the round's hub-geometry order): fresh
    /// per-round service session, fresh signals, [`Message::Recheck`]
    /// written over the live connection, and the answer bounded by a
    /// [`ServerConfig::recheck_timeout`] entry on the timer wheel.
    fn start_recheck_round(&self, core: &mut Core, round: u64) {
        let standing: Vec<usize> = core
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(c) if matches!(c.phase, Phase::Standing { .. }) => Some(i),
                _ => None,
            })
            .collect();
        for token in standing {
            let conn = match core.conns.get_mut(token).and_then(Option::take) {
                Some(c) => c,
                None => continue,
            };
            let out = self.open_recheck(core, token, conn, round);
            self.finish_turn(core, token, out);
        }
    }

    /// One standing connection's round opening. Any failure here — the
    /// service refusing a session, or the `Recheck` write discovering a
    /// dead transport — removes the connection from the standing
    /// population and counts toward the round's wait.
    fn open_recheck(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        round: u64,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        let wire_session = match mem::replace(&mut conn.phase, Phase::Handshake) {
            Phase::Standing { wire_session } => wire_session,
            other => {
                conn.phase = other;
                return Some(conn);
            }
        };
        let opened = {
            let mut rng = sh.rng.lock();
            sh.service.with_default(|svc| {
                let id = svc.open_session(false, &mut rng);
                match svc.poll_transmit(id) {
                    Some(challenge) => Some((id, challenge, Arc::clone(svc.detector()))),
                    None => {
                        let _ = svc.close_session(id);
                        None
                    }
                }
            })
        };
        let (id, challenge, detector) = match opened.flatten() {
            Some(v) => v,
            None => {
                drop(conn);
                self.drop_standing_conn(
                    None,
                    true,
                    DropCause::Protocol,
                    &PianoError::Wire("re-check session queued no challenge".into()),
                );
                return None;
            }
        };
        sh.progress.lock().recheck_ids.push(id);
        let mut voucher = AuthSession::voucher_with(detector);
        if let Err(e) = voucher.handle_message(challenge.clone()) {
            drop(conn);
            self.drop_standing_conn(Some(id), true, DropCause::Protocol, &e);
            return None;
        }
        let (sa, sv) = match challenge {
            Message::ReferenceSignals { sa, sv, .. } => (sa, sv),
            other => {
                drop(conn);
                self.drop_standing_conn(
                    Some(id),
                    true,
                    DropCause::Protocol,
                    &PianoError::Wire(format!("re-check challenge was {other:?}")),
                );
                return None;
            }
        };
        // Four billion host-driven sequential rounds before this
        // truncates.
        let wire_round = round as u32;
        let frame = Message::Recheck {
            session: wire_session,
            round: wire_round,
            sa,
            sv,
        }
        .encode_framed();
        if let Err(e) = conn.t.write_all(&frame) {
            drop(conn);
            self.drop_standing_conn(Some(id), true, DropCause::Disconnect, &io_transport(e));
            return None;
        }
        conn.phase = Phase::Rechecking(Box::new(RecheckState {
            id,
            wire_session,
            round,
            voucher,
            next_seq: 0,
        }));
        conn.next_deadline = Instant::now() + sh.cfg.recheck_timeout;
        self.rearm(core, token, &mut conn);
        // The client may have answered before this turn.
        core.runnable.insert(token);
        Some(conn)
    }

    /// Re-challenge ingest: [`Message::RecheckAudio`] frames stream into
    /// the per-round voucher (sequence-contiguous, no flow control — a
    /// round's answer is one short bounded burst) until `done`.
    fn drive_rechecking(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        mut state: Box<RecheckState>,
    ) -> Option<Conn> {
        let wire_round = state.round as u32;
        loop {
            let msg = match conn.reader.next_frame() {
                Ok(Some(m)) => m,
                Ok(None) => break,
                Err(e) => {
                    drop(conn);
                    self.drop_standing_conn(Some(state.id), true, DropCause::Framing, &e);
                    return None;
                }
            };
            match msg {
                Message::RecheckAudio {
                    session,
                    round,
                    seq,
                    done,
                    samples,
                } if session == state.wire_session && round == wire_round => {
                    if seq != state.next_seq {
                        drop(conn);
                        self.drop_standing_conn(
                            Some(state.id),
                            true,
                            DropCause::Protocol,
                            &PianoError::Wire(format!(
                                "re-check chunk seq {seq}, expected {}",
                                state.next_seq
                            )),
                        );
                        return None;
                    }
                    state.next_seq = state.next_seq.wrapping_add(1);
                    if !samples.is_empty() {
                        let _ = state.voucher.push_audio(&samples);
                    }
                    if done {
                        return self.conclude_recheck(core, token, conn, state);
                    }
                }
                other => {
                    drop(conn);
                    self.drop_standing_conn(
                        Some(state.id),
                        true,
                        DropCause::Protocol,
                        &PianoError::Wire(format!("unexpected mid-recheck message {other:?}")),
                    );
                    return None;
                }
            }
        }
        if conn.eof {
            drop(conn);
            self.drop_standing_conn(
                Some(state.id),
                true,
                DropCause::Disconnect,
                &PianoError::Transport("connection closed mid-recheck".into()),
            );
            return None;
        }
        conn.phase = Phase::Rechecking(state);
        Some(conn)
    }

    /// The round's answer is complete: conclude the per-round voucher,
    /// route its report into the service, count toward the host's round
    /// wait, and park until the recheck scan delivers the verdict.
    fn conclude_recheck(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        mut state: Box<RecheckState>,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        let _ = state.voucher.finish_audio();
        let report = match state.voucher.poll_transmit() {
            Some(r) => r,
            None => {
                drop(conn);
                self.drop_standing_conn(
                    Some(state.id),
                    true,
                    DropCause::Protocol,
                    &PianoError::Wire("re-check voucher produced no report".into()),
                );
                return None;
            }
        };
        if let Err(e) = sh.service.handle_message(state.id, report) {
            drop(conn);
            self.drop_standing_conn(Some(state.id), true, DropCause::Protocol, &e);
            return None;
        }
        {
            let mut progress = sh.progress.lock();
            progress.recheck_ready += 1;
            sh.progress_cv.notify_all();
        }
        let RecheckState {
            id,
            wire_session,
            round,
            ..
        } = *state;
        if core.recheck_scanned >= round {
            // The host scanned this round already (it waited on fewer
            // reports than there are standing feeds).
            self.deliver_recheck_verdict(core, conn, id, wire_session, round)
        } else {
            conn.phase = Phase::AwaitRecheckVerdict {
                id,
                wire_session,
                round,
            };
            conn.next_deadline = Instant::now() + sh.cfg.decision_timeout;
            self.rearm(core, token, &mut conn);
            Some(conn)
        }
    }

    /// Writes one round's verdict back over the standing connection,
    /// then re-parks it — or closes it when standing service has ended.
    /// The per-round session is closed by the recheck scan, not here.
    fn deliver_recheck_verdict(
        &self,
        core: &mut Core,
        mut conn: Conn,
        id: SessionId,
        wire_session: u64,
        round: u64,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        let decision = sh.service.decision(id).unwrap_or(AuthDecision::Denied {
            reason: DenialReason::ProtocolFailure(
                "re-check session undecided after the recheck scan".into(),
            ),
        });
        let frame = Message::RecheckVerdict {
            session: wire_session,
            round: round as u32,
            decision,
        }
        .encode_framed();
        if let Err(e) = conn.t.write_all(&frame) {
            drop(conn);
            // Post-ready: the round already counted this feed, so only
            // the standing population shrinks.
            self.drop_standing_conn(None, false, DropCause::Disconnect, &io_transport(e));
            return None;
        }
        if core.standing_over {
            drop(conn);
            let mut progress = sh.progress.lock();
            progress.standing = progress.standing.saturating_sub(1);
            sh.progress_cv.notify_all();
            return None;
        }
        conn.phase = Phase::Standing { wire_session };
        Some(conn)
    }

    /// Streams the round's hub recording through every shard, snapshots
    /// the round's per-round sessions, delivers `RecheckVerdict`s to
    /// every waiting standing connection in token order, closes the
    /// round's sessions, and publishes the round's conclusion.
    fn run_recheck_scan(&self, core: &mut Core, hub: &[f64], tick: usize) {
        let sh = &*self.shared;
        for chunk in hub.chunks(tick.max(1)) {
            let _ = sh.service.push_audio(chunk);
        }
        let _ = sh.service.finish_audio();
        let (round, ids) = {
            let mut progress = sh.progress.lock();
            (progress.recheck_round, mem::take(&mut progress.recheck_ids))
        };
        let decided = ids
            .iter()
            .filter(|&&id| sh.service.decision(id).is_some())
            .count();
        core.recheck_scanned = round;
        let waiting: Vec<usize> = core
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(c) if matches!(c.phase, Phase::AwaitRecheckVerdict { .. }) => Some(i),
                _ => None,
            })
            .collect();
        for token in waiting {
            let mut conn = match core.conns.get_mut(token).and_then(Option::take) {
                Some(c) => c,
                None => continue,
            };
            let out = match mem::replace(&mut conn.phase, Phase::Handshake) {
                Phase::AwaitRecheckVerdict {
                    id,
                    wire_session,
                    round,
                } => self.deliver_recheck_verdict(core, conn, id, wire_session, round),
                other => {
                    conn.phase = other;
                    Some(conn)
                }
            };
            self.finish_turn(core, token, out);
        }
        // Per-round sessions close only after the verdict deliveries
        // above read their decisions — both happen on this thread, so
        // there is no fetch/close race.
        for id in ids {
            let _ = sh.service.close_session(id);
        }
        // Publish *after* the deliveries: a host returning from
        // `recheck_scan_and_decide` must observe the round fully served.
        {
            let mut progress = sh.progress.lock();
            progress.recheck_scanned = round;
            progress.recheck_decided = decided;
            sh.progress_cv.notify_all();
        }
    }

    /// Ends standing service: every parked connection closes now;
    /// connections mid-round close right after their verdict delivers.
    fn end_standing_sweep(&self, core: &mut Core) {
        core.standing_over = true;
        let parked: Vec<usize> = core
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(c) if matches!(c.phase, Phase::Standing { .. }) => Some(i),
                _ => None,
            })
            .collect();
        let mut ended = 0usize;
        for token in parked {
            if core.conns.get_mut(token).and_then(Option::take).is_some() {
                ended += 1;
                self.finish_turn(core, token, None);
            }
        }
        if ended > 0 {
            let mut progress = self.shared.progress.lock();
            progress.standing = progress.standing.saturating_sub(ended);
            self.shared.progress_cv.notify_all();
        }
    }

    /// A standing connection left (fault or round failure): standing
    /// population, round accounting, and drop counters in one step.
    /// `mid_round` failures count toward the round's wait (the feed's
    /// report will never arrive) and withdraw the in-flight per-round
    /// session — but only while the recheck scan has not yet snapshotted
    /// the round's ids, which the `recheck_ids` membership check decides
    /// atomically. Post-ready failures only shrink the population.
    fn drop_standing_conn(
        &self,
        round_id: Option<SessionId>,
        mid_round: bool,
        cause: DropCause,
        err: &PianoError,
    ) {
        let close = {
            let mut progress = self.shared.progress.lock();
            progress.standing = progress.standing.saturating_sub(1);
            let mut close = None;
            if mid_round {
                progress.recheck_dropped += 1;
                if let Some(id) = round_id {
                    if let Some(pos) = progress.recheck_ids.iter().position(|&x| x == id) {
                        progress.recheck_ids.swap_remove(pos);
                        close = Some(id);
                    }
                }
            }
            self.shared.progress_cv.notify_all();
            close
        };
        if let Some(id) = close {
            let _ = self.shared.service.close_session(id);
        }
        self.shared.counters.count_drop(cause);
        eprintln!("dropping standing connection: {err} [{cause}]");
    }

    // -- suspension and resume ---------------------------------------------

    /// Inserts a registry entry with a fresh generation and arms its
    /// resume-window expiry on the wheel.
    fn park(&self, core: &mut Core, wire_session: u64, state: Parked) {
        core.gen_counter += 1;
        let gen = core.gen_counter;
        core.suspended
            .insert(wire_session, Suspension { state, gen });
        core.wheel.insert(
            Instant::now() + self.shared.cfg.resume_window,
            TimerKey::Suspended { wire_session, gen },
        );
    }

    /// The transport died mid-stream: suspend the feed (adopting a
    /// waiting `Resume` probe directly if one is parked) — or drop it
    /// when no resume window is configured. Always returns `None`.
    fn lose_feed(&self, core: &mut Core, state: Box<FeedState>, err: PianoError) -> Option<Conn> {
        let sh = &*self.shared;
        self.dec_active();
        if sh.cfg.resume_window.is_zero() {
            self.drop_conn_state(core, Some(state.id), DropCause::Disconnect, &err, false);
            return None;
        }
        sh.counters
            .connections_suspended
            .fetch_add(1, Ordering::Relaxed);
        let wire_session = state.wire_session;
        // A reconnect can beat the loss discovery (the threaded server
        // busy-polled the registry for this case): adopt the parked
        // probe in the same loop turn, with no registry round-trip.
        if let Some(probe_token) = find_pending_resume(core, wire_session) {
            if let Some(mut probe) = core.conns.get_mut(probe_token).and_then(Option::take) {
                sh.counters.resumes.fetch_add(1, Ordering::Relaxed);
                let client_next_seq = match mem::replace(&mut probe.phase, Phase::Handshake) {
                    Phase::PendingResume {
                        client_next_seq, ..
                    } => client_next_seq,
                    other => {
                        probe.phase = other;
                        0
                    }
                };
                let out = self.attach(
                    core,
                    probe_token,
                    probe,
                    wire_session,
                    client_next_seq,
                    Parked::Streaming(state),
                );
                self.finish_turn(core, probe_token, out);
                return None;
            }
        }
        self.park(core, wire_session, Parked::Streaming(state));
        None
    }

    /// Re-attaches a reconnecting client to its suspended feed (or
    /// re-delivers a parked verdict), answering with `ResumeAck`.
    fn attach(
        &self,
        core: &mut Core,
        token: usize,
        mut conn: Conn,
        wire_session: u64,
        client_next_seq: u32,
        parked: Parked,
    ) -> Option<Conn> {
        let sh = &*self.shared;
        match parked {
            Parked::Streaming(mut state) => {
                {
                    let mut progress = sh.progress.lock();
                    progress.active += 1;
                }
                // Flow-control replies queued for the dead transport are
                // stale; the ack below re-synchronizes both sides at the
                // feed's contiguity cursor (`client_next_seq` may trail
                // or lead it — the ack's cursor wins either way).
                state.feed.resync_flow();
                let _ = client_next_seq;
                let ack = Message::ResumeAck {
                    session: wire_session,
                    ack_seq: state.feed.next_seq(),
                    ended: state.ended,
                };
                if let Err(e) = conn.t.write_all(&ack.encode_framed()) {
                    drop(conn);
                    return self.lose_feed(core, state, io_transport(e));
                }
                let now = Instant::now();
                conn.next_deadline =
                    (now + sh.cfg.idle_timeout).min(state.started + sh.cfg.stream_timeout);
                conn.phase = Phase::Streaming(state);
                self.rearm(core, token, &mut conn);
                core.runnable.insert(token);
                Some(conn)
            }
            Parked::Decided { id } => {
                let ack = Message::ResumeAck {
                    session: wire_session,
                    ack_seq: client_next_seq,
                    ended: true,
                };
                if let Err(e) = conn.t.write_all(&ack.encode_framed()) {
                    drop(conn);
                    // Park the verdict again for the next attempt.
                    self.park(core, wire_session, Parked::Decided { id });
                    self.drop_conn_state(core, None, DropCause::Disconnect, &io_transport(e), true);
                    return None;
                }
                if core.scan_done {
                    self.deliver(core, conn, id, wire_session)
                } else {
                    conn.phase = Phase::AwaitDecision { id, wire_session };
                    conn.next_deadline = Instant::now() + sh.cfg.decision_timeout;
                    self.rearm(core, token, &mut conn);
                    Some(conn)
                }
            }
        }
    }

    // -- timers ------------------------------------------------------------

    /// Handles one expired wheel entry: re-arms if the deadline moved or
    /// the generation is stale, else enforces the phase timeout.
    fn on_timer(&self, core: &mut Core, key: TimerKey, now: Instant) {
        match key {
            TimerKey::Conn { token, gen } => {
                let conn = match core.conns.get_mut(token).and_then(Option::take) {
                    Some(c) => c,
                    None => return,
                };
                if conn.armed_gen != gen {
                    self.put_back(core, token, conn); // superseded entry
                    return;
                }
                if now < conn.next_deadline {
                    // The deadline moved later (data arrived): re-arm
                    // the same generation at the new deadline.
                    core.wheel
                        .insert(conn.next_deadline, TimerKey::Conn { token, gen });
                    self.put_back(core, token, conn);
                    return;
                }
                self.expire_conn(core, token, conn, now);
            }
            TimerKey::Suspended { wire_session, gen } => {
                let lapsed = core
                    .suspended
                    .get(&wire_session)
                    .is_some_and(|s| s.gen == gen);
                if !lapsed {
                    return; // resumed, or re-parked under a newer window
                }
                let susp = match core.suspended.remove(&wire_session) {
                    Some(s) => s,
                    None => return,
                };
                match susp.state {
                    Parked::Streaming(state) => {
                        // Expired mid-stream feeds drop (counted toward
                        // the report wait); expired verdict entries are
                        // forgotten silently — their feed already
                        // reported and decided.
                        self.drop_conn_state(
                            core,
                            Some(state.id),
                            DropCause::ResumeExpired,
                            &PianoError::Timeout("resume window expired".into()),
                            false,
                        );
                    }
                    Parked::Decided { .. } => {}
                }
            }
        }
    }

    /// A connection's phase deadline genuinely fired: classify and drop
    /// — except a draining stream, whose watchdogs only bite while the
    /// backlog is empty (matching the threaded server, whose deadlines
    /// only bound its *blocking* reads).
    fn expire_conn(&self, core: &mut Core, token: usize, mut conn: Conn, now: Instant) {
        let sh = &*self.shared;
        match mem::replace(&mut conn.phase, Phase::Handshake) {
            Phase::Handshake => {
                drop(conn);
                self.drop_conn_state(
                    core,
                    None,
                    DropCause::Timeout,
                    &PianoError::Timeout("handshake deadline missed".into()),
                    false,
                );
            }
            Phase::Streaming(state) => {
                if state.feed.buffered() > 0 || state.ended {
                    // Draining: not idle, so no timeout applies. Keep a
                    // watchdog armed for when the backlog empties again.
                    conn.next_deadline =
                        (now + sh.cfg.idle_timeout).min(state.started + sh.cfg.stream_timeout);
                    conn.phase = Phase::Streaming(state);
                    self.rearm(core, token, &mut conn);
                    self.put_back(core, token, conn);
                    return;
                }
                let err = if now >= state.started + sh.cfg.stream_timeout {
                    PianoError::Timeout("stream budget exhausted mid-stream".into())
                } else {
                    PianoError::Timeout(format!(
                        "feed idle for {:?} mid-stream",
                        sh.cfg.idle_timeout
                    ))
                };
                drop(conn);
                self.drop_feed(core, state, DropCause::Timeout, &err);
            }
            Phase::AwaitDecision { id, .. } => {
                drop(conn);
                // Waived: the feed already counted in Progress::reports.
                self.drop_conn_state(
                    core,
                    Some(id),
                    DropCause::Timeout,
                    &PianoError::Timeout(
                        "hub scan did not conclude within the decision deadline".into(),
                    ),
                    true,
                );
            }
            Phase::Standing { wire_session } => {
                // A stale pre-standing deadline (the decision timer armed
                // before the feed parked): standing connections carry no
                // deadline of their own between rounds.
                conn.phase = Phase::Standing { wire_session };
                self.put_back(core, token, conn);
            }
            Phase::Rechecking(state) => {
                drop(conn);
                self.drop_standing_conn(
                    Some(state.id),
                    true,
                    DropCause::Timeout,
                    &PianoError::Timeout("re-check answer deadline missed".into()),
                );
            }
            Phase::AwaitRecheckVerdict { .. } => {
                drop(conn);
                // Post-ready: the round counted this feed; its per-round
                // session is closed by the scan that never came (or the
                // shutdown teardown).
                self.drop_standing_conn(
                    None,
                    false,
                    DropCause::Timeout,
                    &PianoError::Timeout(
                        "recheck scan did not conclude within the decision deadline".into(),
                    ),
                );
            }
            Phase::PendingResume { wire_session, .. } => {
                drop(conn);
                // The feed this probe hoped to resume is accounted for
                // elsewhere (still live, already dropped, or never
                // existed): never double-count it in the wait.
                self.drop_conn_state(
                    core,
                    None,
                    DropCause::Protocol,
                    &PianoError::Wire(format!(
                        "resume for unknown or expired session {wire_session:#x}"
                    )),
                    true,
                );
            }
        }
    }

    // -- scan --------------------------------------------------------------

    /// Streams the hub recording through every service shard in
    /// `tick`-sample chunks, concludes the scan groups, publishes
    /// `scan_done`, and delivers verdicts to every waiting connection in
    /// token order.
    fn run_scan(&self, core: &mut Core, hub: &[f64], tick: usize) {
        let sh = &*self.shared;
        core.scan_started = true;
        for chunk in hub.chunks(tick.max(1)) {
            let _ = sh.service.push_audio(chunk);
        }
        let _ = sh.service.finish_audio();
        let decided = sh.service.sessions_decided();
        core.scan_done = true;
        let waiting: Vec<usize> = core
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(c) if matches!(c.phase, Phase::AwaitDecision { .. }) => Some(i),
                _ => None,
            })
            .collect();
        for token in waiting {
            let mut conn = match core.conns.get_mut(token).and_then(Option::take) {
                Some(c) => c,
                None => continue,
            };
            let out = match mem::replace(&mut conn.phase, Phase::Handshake) {
                Phase::AwaitDecision { id, wire_session } => {
                    self.deliver(core, conn, id, wire_session)
                }
                other => {
                    conn.phase = other;
                    Some(conn)
                }
            };
            self.finish_turn(core, token, out);
        }
        // Publish *after* the verdict deliveries above: a host returning
        // from `scan_and_decide` must observe every outcome the scan
        // produced.
        {
            let mut progress = sh.progress.lock();
            progress.scan_done = true;
            progress.decided = decided;
            sh.progress_cv.notify_all();
        }
    }

    // -- drop accounting ---------------------------------------------------

    /// Decrements the active-feed population (attach's inverse).
    fn dec_active(&self) {
        let mut progress = self.shared.progress.lock();
        progress.active = progress.active.saturating_sub(1);
    }

    /// Drops an *attached* feed: active-population and drop accounting
    /// in one step.
    fn drop_feed(
        &self,
        core: &mut Core,
        state: Box<FeedState>,
        cause: DropCause,
        err: &PianoError,
    ) {
        self.dec_active();
        self.drop_conn_state(core, Some(state.id), cause, err, false);
    }

    /// The drop-only-this-connection path: count the cause, log it,
    /// close the service session (unless the scan already fixed the
    /// group's signature set), and — unless waived — count it where
    /// [`wait_for_reports`](Self::wait_for_reports) can see it.
    fn drop_conn_state(
        &self,
        core: &mut Core,
        id: Option<SessionId>,
        cause: DropCause,
        err: &PianoError,
        waived: bool,
    ) {
        self.shared.counters.count_drop(cause);
        eprintln!(
            "dropping connection{}: {} [{}]",
            match id {
                Some(id) => format!(" (session {id:?})"),
                None => String::new(),
            },
            err,
            cause,
        );
        if let Some(id) = id {
            if !core.scan_started {
                let _ = self.shared.service.close_session(id);
            }
        }
        if !waived {
            let mut progress = self.shared.progress.lock();
            progress.dropped += 1;
            self.shared.progress_cv.notify_all();
        }
    }

    /// Records this connection's resident footprint for the bench's
    /// connection-ceiling accounting: state machine + frame-reader
    /// buffer + peak backlog samples.
    fn record_conn_footprint(&self, conn: &Conn, state: &FeedState) {
        let bytes = mem::size_of::<Conn>()
            + mem::size_of::<FeedState>()
            + conn.reader.buffer_capacity()
            + state.feed.peak_buffered() * mem::size_of::<f64>();
        self.shared
            .conn_bytes_peak
            .fetch_max(bytes as u64, Ordering::Relaxed);
    }
}

/// The token of a parked `Resume` probe waiting for `wire_session`, if
/// any.
fn find_pending_resume(core: &Core, wire_session: u64) -> Option<usize> {
    core.conns
        .iter()
        .enumerate()
        .find_map(|(i, slot)| match slot {
            Some(c) => match c.phase {
                Phase::PendingResume {
                    wire_session: w, ..
                } if w == wire_session => Some(i),
                _ => None,
            },
            None => None,
        })
}
