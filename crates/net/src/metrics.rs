//! Crate-internal ingestion accounting shared by the two server models
//! ([`crate::server::ServerLoop`], thread-per-connection, and
//! [`crate::reactor::ReactorServer`], the readiness reactor): atomic
//! counters, the [`DropCause`] slot mapping, the parked per-feed state,
//! and the [`ServiceStats`] snapshot assembly. Keeping these in one place
//! is what lets the conformance suite assert the two models account for
//! faults identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use piano_core::stream::{AuthSession, DropCause, DropCounts, ServiceStats, SessionId};
use piano_core::wire::{IngestFeed, Message};

/// Atomic ingestion counters, aggregated across connection threads (or
/// read from the reactor thread while hosts snapshot concurrently).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) connections_dropped: AtomicU64,
    pub(crate) connections_shed: AtomicU64,
    pub(crate) connections_suspended: AtomicU64,
    pub(crate) resumes: AtomicU64,
    pub(crate) frames_decoded: AtomicU64,
    pub(crate) wire_audio_bytes: AtomicU64,
    pub(crate) raw_audio_bytes: AtomicU64,
    pub(crate) peak_feed_backlog: AtomicU64,
    pub(crate) busy_replies: AtomicU64,
    pub(crate) credit_replies: AtomicU64,
    /// Per-[`DropCause`] drop counts, indexed by [`cause_slot`].
    pub(crate) drops: [AtomicU64; 6],
}

/// Fixed index of a cause in [`Counters::drops`] / [`DropCounts`].
pub(crate) fn cause_slot(cause: DropCause) -> usize {
    match cause {
        DropCause::Framing => 0,
        DropCause::Protocol => 1,
        DropCause::Overrun => 2,
        DropCause::Timeout => 3,
        DropCause::Disconnect => 4,
        DropCause::ResumeExpired => 5,
    }
}

impl Counters {
    pub(crate) fn max_peak(&self, candidate: u64) {
        self.peak_feed_backlog
            .fetch_max(candidate, Ordering::Relaxed);
    }

    pub(crate) fn count_drop(&self, cause: DropCause) {
        self.connections_dropped.fetch_add(1, Ordering::Relaxed);
        self.drops[cause_slot(cause)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time [`ServiceStats`] snapshot over these counters;
    /// `sessions_decided` comes from the owning service.
    pub(crate) fn snapshot(&self, sessions_decided: u64) -> ServiceStats {
        let get = |cause: DropCause| self.drops[cause_slot(cause)].load(Ordering::Relaxed);
        ServiceStats {
            connections: self.connections.load(Ordering::Relaxed),
            connections_dropped: self.connections_dropped.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            connections_suspended: self.connections_suspended.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            drops: DropCounts {
                framing: get(DropCause::Framing),
                protocol: get(DropCause::Protocol),
                overrun: get(DropCause::Overrun),
                timeout: get(DropCause::Timeout),
                disconnect: get(DropCause::Disconnect),
                resume_expired: get(DropCause::ResumeExpired),
            },
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            wire_audio_bytes: self.wire_audio_bytes.load(Ordering::Relaxed),
            raw_audio_bytes: self.raw_audio_bytes.load(Ordering::Relaxed),
            peak_feed_backlog: self.peak_feed_backlog.load(Ordering::Relaxed),
            busy_replies: self.busy_replies.load(Ordering::Relaxed),
            credit_replies: self.credit_replies.load(Ordering::Relaxed),
            sessions_decided,
        }
    }
}

/// Everything one attached feed carries: the parked form of a connection,
/// moved between an owning loop (thread or reactor) and the suspension
/// registry.
#[derive(Debug)]
pub(crate) struct FeedState {
    /// The service session (scan-side identity).
    pub(crate) id: SessionId,
    /// The wire session id (what frames and `Resume` carry).
    pub(crate) wire_session: u64,
    /// The gateway-side voucher scanning on the device's behalf.
    pub(crate) voucher: AuthSession,
    /// Sequence/backlog/flow-control accounting for the stream.
    pub(crate) feed: IngestFeed,
    /// `StreamEnd` has been accepted; only backlog drain remains.
    pub(crate) ended: bool,
    /// When the stream began — anchors the whole-stream watchdog across
    /// suspensions and resumes.
    pub(crate) started: Instant,
}

/// Samples an audio message would add to a feed's backlog (0 for
/// non-audio) — used to tell a [`DropCause::Overrun`] from other
/// [`IngestFeed::accept`] rejections.
pub(crate) fn audio_samples(msg: &Message) -> usize {
    match msg {
        Message::AudioChunk { samples, .. } => samples.len(),
        Message::AudioBatch { chunks, .. } => chunks.total_samples(),
        Message::AudioBatchI16 { chunks, .. } => chunks.total_samples(),
        Message::RecheckAudio { samples, .. } => samples.len(),
        _ => 0,
    }
}
