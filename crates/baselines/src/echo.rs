//! Echo-Secure: one-way ranging with calibrated processing delay
//! (Fig. 2b baseline).
//!
//! The Echo protocol [Sastry–Shankar–Wagner, WiSec'03] bounds distance with
//! one acoustic flight: the verifier sends a nonce over radio, the prover
//! plays it back as sound, and the verifier converts elapsed time minus the
//! prover's *processing delay* into distance. The paper hardens Echo with
//! randomized reference signals and the frequency-based detector
//! ("Echo-Secure") so replay cannot defeat it, then shows it is still
//! hopeless on commodity hardware: "processing delay is very unpredictable
//! on the devices" (Sec. VI-B3).
//!
//! The reproduction follows the paper's recipe exactly, including the
//! calibration procedure: "We estimated the average processing delay via
//! putting the two devices together (real distance is close to 0) and
//! treating the elapsed time as the processing delay."

use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;
use piano_bluetooth::{BluetoothLink, PairingRegistry};
use piano_core::action::DistanceEstimate;
use piano_core::config::ActionConfig;
use piano_core::detect::{Detector, SignalSignature};
use piano_core::device::Device;
use piano_core::error::PianoError;
use piano_core::ranging::one_way_distance;
use piano_core::signal::ReferenceSignal;

/// A calibrated mean processing delay, in seconds.
///
/// Obtained from [`EchoCalibration::calibrate`] with the two devices at
/// (near-)zero distance, per the paper's procedure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EchoCalibration {
    /// Mean end-to-end processing delay measured at contact distance.
    pub mean_delay_s: f64,
    /// Number of calibration rounds averaged.
    pub rounds: usize,
}

impl EchoCalibration {
    /// Runs `rounds` calibration exchanges with the devices co-located and
    /// averages the apparent delay.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors from the underlying exchanges; returns
    /// `InvalidConfig` if `rounds == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn calibrate(
        config: &ActionConfig,
        field: &mut AcousticField,
        link: &mut BluetoothLink,
        registry: &PairingRegistry,
        auth: &Device,
        vouch: &Device,
        rounds: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<EchoCalibration, PianoError> {
        if rounds == 0 {
            return Err(PianoError::InvalidConfig(
                "calibration needs ≥1 round".into(),
            ));
        }
        // Co-locate for calibration (clone the geometry, not the devices).
        let auth_cal = auth.clone().at(vouch.position);
        let mut total = 0.0;
        for round in 0..rounds {
            let now = round as f64 * 10.0;
            let elapsed =
                echo_elapsed_time(config, field, link, registry, &auth_cal, vouch, now, rng)?
                    .ok_or_else(|| {
                        PianoError::InvalidConfig(
                            "calibration signal not detected at contact distance".into(),
                        )
                    })?;
            total += elapsed;
            field.clear_emissions();
        }
        Ok(EchoCalibration {
            mean_delay_s: total / rounds as f64,
            rounds,
        })
    }
}

/// One Echo-Secure exchange: returns the *apparent elapsed time* between
/// the verifier's radio send and the acoustic detection of the prover's
/// playback, or `None` if the signal was not detected.
///
/// This is the primitive both calibration and measurement share.
#[allow(clippy::too_many_arguments)]
fn echo_elapsed_time(
    config: &ActionConfig,
    field: &mut AcousticField,
    link: &mut BluetoothLink,
    registry: &PairingRegistry,
    auth: &Device,
    vouch: &Device,
    now_world_s: f64,
    rng: &mut ChaCha8Rng,
) -> Result<Option<f64>, PianoError> {
    config.validate()?;
    let key = registry.key_for(auth.id, vouch.id)?;

    // Fresh randomized signal per run (the "Secure" in Echo-Secure).
    let sig = ReferenceSignal::random(config, rng);

    // Radio leg: verifier → prover.
    let mut chan = piano_bluetooth::channel::SecureChannel::new(key, now_world_s.to_bits());
    let frame = chan.seal(
        &piano_core::wire::Message::ReferenceSignals {
            session: now_world_s.to_bits(),
            sa: piano_core::wire::SignalSpec::of(&sig),
            sv: piano_core::wire::SignalSpec::of(&sig),
        }
        .encode(),
    );
    let radio_arrival = link.transmit(now_world_s, &auth.position, &vouch.position, &frame)?;

    // Prover plays "immediately" upon receipt — through its audio stack.
    vouch.play(
        field,
        &sig.waveform(),
        radio_arrival,
        config.sample_rate,
        rng,
    );
    // The verifier starts listening the moment it sends; it knows only its
    // *command* time — audio-stack latency on both sides is invisible to it.
    let (recording, _unobservable_start) = auth.record(
        field,
        now_world_s,
        config.recording_duration_s,
        config.sample_rate,
        rng,
    );

    let detector = Detector::new(config);
    let signature = SignalSignature::of(&sig, config);
    let detection = detector.detect(recording.samples(), &signature);
    Ok(detection.location().map(|loc| {
        // The verifier believes its recording started at its command time.
        loc as f64 / config.sample_rate
    }))
}

/// Runs one Echo-Secure ranging exchange.
///
/// `calibration` is the mean processing delay to subtract. Returns
/// `SignalAbsent` when the prover's playback is not detected.
///
/// # Errors
///
/// Same error surface as ACTION (Bluetooth, config).
#[allow(clippy::too_many_arguments)]
pub fn run_echo_secure(
    config: &ActionConfig,
    field: &mut AcousticField,
    link: &mut BluetoothLink,
    registry: &PairingRegistry,
    auth: &Device,
    vouch: &Device,
    calibration: &EchoCalibration,
    now_world_s: f64,
    rng: &mut ChaCha8Rng,
) -> Result<DistanceEstimate, PianoError> {
    match echo_elapsed_time(config, field, link, registry, auth, vouch, now_world_s, rng)? {
        Some(elapsed_s) => {
            let flight_s = elapsed_s - calibration.mean_delay_s;
            Ok(DistanceEstimate::Measured(one_way_distance(
                flight_s,
                config.assumed_speed_of_sound,
            )))
        }
        None => Ok(DistanceEstimate::SignalAbsent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn setup(
        d: f64,
        seed: u64,
    ) -> (
        AcousticField,
        BluetoothLink,
        PairingRegistry,
        Device,
        Device,
        ChaCha8Rng,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = AcousticField::new(Environment::office(), seed ^ 0xE0E0);
        let link = BluetoothLink::new();
        let mut registry = PairingRegistry::new();
        let auth = Device::phone(1, Position::ORIGIN, seed + 1);
        let vouch = Device::phone(2, Position::new(d, 0.0, 0.0), seed + 2);
        registry.pair(auth.id, vouch.id, &mut rng);
        (field, link, registry, auth, vouch, rng)
    }

    #[test]
    fn calibration_measures_pipeline_delay_scale() {
        let (mut field, mut link, reg, a, v, mut rng) = setup(0.05, 61);
        let cfg = ActionConfig::default();
        let cal =
            EchoCalibration::calibrate(&cfg, &mut field, &mut link, &reg, &a, &v, 5, &mut rng)
                .unwrap();
        // Mean delay ≈ BT latency + prover playback latency + verifier
        // record latency bias ⇒ a few hundred ms.
        assert!(
            cal.mean_delay_s > 0.05 && cal.mean_delay_s < 0.6,
            "calibrated delay {} s",
            cal.mean_delay_s
        );
        assert_eq!(cal.rounds, 5);
    }

    #[test]
    fn echo_errors_are_meters_not_centimeters() {
        // The Fig. 2b point: after honest calibration, residual latency
        // jitter (tens of ms) times 343 m/s leaves meter-scale errors.
        let cfg = ActionConfig::default();
        let (mut field, mut link, reg, a, v, mut rng) = setup(0.05, 62);
        let cal =
            EchoCalibration::calibrate(&cfg, &mut field, &mut link, &reg, &a, &v, 8, &mut rng)
                .unwrap();

        let mut total_err = 0.0;
        let mut measured = 0;
        for t in 0..6 {
            let (mut field, mut link, reg, a, v, mut rng) = setup(1.0, 100 + t);
            if let DistanceEstimate::Measured(d) = run_echo_secure(
                &cfg, &mut field, &mut link, &reg, &a, &v, &cal, 0.0, &mut rng,
            )
            .unwrap()
            {
                total_err += (d - 1.0).abs();
                measured += 1;
            }
        }
        assert!(measured >= 4, "echo should usually detect at 1 m");
        let mean_err = total_err / measured as f64;
        assert!(
            mean_err > 1.0,
            "echo mean error {mean_err} m should be meters, not centimeters"
        );
    }

    #[test]
    fn zero_rounds_calibration_is_rejected() {
        let (mut field, mut link, reg, a, v, mut rng) = setup(0.05, 63);
        assert!(EchoCalibration::calibrate(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &reg,
            &a,
            &v,
            0,
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn out_of_acoustic_range_is_absent() {
        let cfg = ActionConfig::default();
        let (mut field, mut link, reg, a, v, mut rng) = setup(8.0, 64);
        let cal = EchoCalibration {
            mean_delay_s: 0.3,
            rounds: 1,
        };
        let est = run_echo_secure(
            &cfg, &mut field, &mut link, &reg, &a, &v, &cal, 0.0, &mut rng,
        )
        .unwrap();
        assert_eq!(est, DistanceEstimate::SignalAbsent);
    }
}
