//! ACTION-CC: ACTION with a cross-correlation detector (Fig. 2b baseline).
//!
//! Identical protocol flow to [`piano_core::action::run_action`] — Steps
//! I–III and V–VI are unchanged — but Step IV detects each reference signal
//! by normalized cross-correlation of the recording against the *original*
//! synthesized waveform, the way BeepBeep-style rangers do.
//!
//! The paper (Sec. VI-B3): "ACTION-CC is inaccurate because the reference
//! signals change significantly in the time domain after they are played
//! and recorded, due to frequency smoothing. As a result, cross-correlation
//! algorithm tries to match the original reference signal with the changed
//! reference signal, resulting in high errors." In the simulation the
//! change is produced by transducer phase dispersion plus noise; the sum of
//! a few sinusoids also has a quasi-periodic autocorrelation whose sidelobe
//! spacing (~3 ms for the 333 Hz candidate grid) converts small phase
//! distortions into meter-scale argmax displacements.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;
use piano_bluetooth::{BluetoothLink, PairingRegistry};
use piano_core::action::DistanceEstimate;
use piano_core::config::ActionConfig;
use piano_core::device::Device;
use piano_core::error::PianoError;
use piano_core::ranging::{estimate_distance, LocationDiffs};
use piano_core::signal::ReferenceSignal;
use piano_dsp::correlate::best_alignment;

/// Runs ACTION-CC and returns its distance verdict.
///
/// Cross-correlation always produces *some* argmax, so unlike ACTION this
/// baseline has no principled "signal absent" outcome — which is itself a
/// security weakness the comparison surfaces. `SignalAbsent` is returned
/// only if a recording is shorter than the reference.
///
/// # Errors
///
/// Same Bluetooth/config errors as [`piano_core::action::run_action`].
#[allow(clippy::too_many_arguments)]
pub fn run_action_cc(
    config: &ActionConfig,
    field: &mut AcousticField,
    link: &mut BluetoothLink,
    registry: &PairingRegistry,
    auth: &Device,
    vouch: &Device,
    now_world_s: f64,
    rng: &mut ChaCha8Rng,
) -> Result<DistanceEstimate, PianoError> {
    config.validate()?;
    let key = registry.key_for(auth.id, vouch.id)?;
    let _ = key; // same pairing gate as ACTION; payload exchange elided

    // Step I.
    let sa = ReferenceSignal::random(config, rng);
    let sv = ReferenceSignal::random(config, rng);
    let sa_wave = sa.waveform();
    let sv_wave = sv.waveform();

    // Step II (range gate only; the payload itself is identical to ACTION).
    let probe = piano_bluetooth::channel::SecureChannel::new(key, rng.gen::<u64>() << 8).seal(
        &piano_core::wire::Message::ReferenceSignals {
            session: rng.gen(),
            sa: piano_core::wire::SignalSpec::of(&sa),
            sv: piano_core::wire::SignalSpec::of(&sv),
        }
        .encode(),
    );
    let start_cmd = link.transmit(now_world_s, &auth.position, &vouch.position, &probe)?;

    // Step III.
    auth.play(
        field,
        &sa_wave,
        start_cmd + config.play_offset_auth_s,
        config.sample_rate,
        rng,
    );
    vouch.play(
        field,
        &sv_wave,
        start_cmd + config.play_offset_vouch_s,
        config.sample_rate,
        rng,
    );
    let (rec_auth, _) = auth.record(
        field,
        start_cmd,
        config.recording_duration_s,
        config.sample_rate,
        rng,
    );
    let (rec_vouch, _) = vouch.record(
        field,
        start_cmd,
        config.recording_duration_s,
        config.sample_rate,
        rng,
    );

    // Step IV — cross-correlation against the original waveforms.
    let locate = |recording: &[f64], reference: &[f64]| -> Option<usize> {
        best_alignment(recording, reference, true).map(|a| a.offset)
    };
    let l_aa = locate(rec_auth.samples(), &sa_wave);
    let l_av = locate(rec_auth.samples(), &sv_wave);
    let l_va = locate(rec_vouch.samples(), &sa_wave);
    let l_vv = locate(rec_vouch.samples(), &sv_wave);

    // Steps V–VI.
    match (l_aa, l_av, l_va, l_vv) {
        (Some(aa), Some(av), Some(va), Some(vv)) => {
            let diffs = LocationDiffs {
                auth_diff_samples: av as f64 - aa as f64,
                vouch_diff_samples: vv as f64 - va as f64,
            };
            Ok(DistanceEstimate::Measured(estimate_distance(
                &diffs,
                config.sample_rate,
                config.sample_rate,
                config.assumed_speed_of_sound,
            )))
        }
        _ => Ok(DistanceEstimate::SignalAbsent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn setup(
        d: f64,
        env: Environment,
        seed: u64,
    ) -> (
        AcousticField,
        BluetoothLink,
        PairingRegistry,
        Device,
        Device,
        ChaCha8Rng,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = AcousticField::new(env, seed ^ 0xF0F0);
        let link = BluetoothLink::new();
        let mut registry = PairingRegistry::new();
        let auth = Device::phone(1, Position::ORIGIN, seed + 1);
        let vouch = Device::phone(2, Position::new(d, 0.0, 0.0), seed + 2);
        registry.pair(auth.id, vouch.id, &mut rng);
        (field, link, registry, auth, vouch, rng)
    }

    #[test]
    fn produces_an_estimate() {
        let (mut field, mut link, reg, a, v, mut rng) = setup(1.0, Environment::office(), 21);
        let est = run_action_cc(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &reg,
            &a,
            &v,
            0.0,
            &mut rng,
        )
        .unwrap();
        assert!(matches!(est, DistanceEstimate::Measured(_)));
    }

    #[test]
    fn cc_errors_are_orders_of_magnitude_worse_than_action() {
        // The Fig. 2b claim, in miniature: across a handful of office
        // trials, ACTION-CC's mean absolute error is at least 10× ACTION's.
        let cfg = ActionConfig::default();
        let mut cc_err = 0.0;
        let mut action_err = 0.0;
        let trials = 6;
        for t in 0..trials {
            let (mut field, mut link, reg, a, v, mut rng) =
                setup(1.0, Environment::office(), 500 + t);
            let cc =
                run_action_cc(&cfg, &mut field, &mut link, &reg, &a, &v, 0.0, &mut rng).unwrap();
            if let DistanceEstimate::Measured(d) = cc {
                cc_err += (d - 1.0).abs();
            } else {
                cc_err += 5.0; // absent counts as a gross failure
            }

            let (mut field, mut link, reg, a, v, mut rng) =
                setup(1.0, Environment::office(), 900 + t);
            let act = piano_core::action::run_action(
                &cfg, &mut field, &mut link, &reg, &a, &v, 0.0, &mut rng,
            )
            .unwrap();
            if let DistanceEstimate::Measured(d) = act.estimate {
                action_err += (d - 1.0).abs();
            }
        }
        cc_err /= trials as f64;
        action_err /= trials as f64;
        assert!(
            cc_err > 10.0 * action_err,
            "CC mean error {cc_err:.3} m vs ACTION {action_err:.3} m — expected ≥10× gap"
        );
        assert!(cc_err > 0.5, "CC error {cc_err:.3} m suspiciously small");
    }

    #[test]
    fn unpaired_devices_error() {
        let (mut field, mut link, _reg, a, v, mut rng) = setup(1.0, Environment::office(), 33);
        let empty = PairingRegistry::new();
        assert!(run_action_cc(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &empty,
            &a,
            &v,
            0.0,
            &mut rng,
        )
        .is_err());
    }
}
