//! # piano-baselines
//!
//! The comparison protocols of the paper's Fig. 2b, plus an ambience
//! comparator from the related-work discussion:
//!
//! * [`action_cc`] — **ACTION-CC**: the ACTION protocol with the
//!   frequency-based detector replaced by classic cross-correlation
//!   (BeepBeep-style matched filtering). The paper uses it to show that
//!   cross-correlation cannot detect frequency-domain randomized reference
//!   signals after hardware *frequency smoothing*.
//! * [`echo`] — **Echo-Secure**: the Echo distance-bounding protocol
//!   [Sastry et al., WiSec'03] hardened with randomized reference signals
//!   and the frequency-based detector, but still one-way: it must subtract
//!   a *calibrated processing delay*, and unpredictable audio-stack latency
//!   makes that calibration useless on commodity devices.
//! * [`ambience`] — a similarity-based proximity check from ambient noise
//!   (Amigo/Come-closer style, paper Sec. II), used by ablations to
//!   demonstrate why ambience methods cannot offer absolute thresholds and
//!   are spoofable by playing the same sound at both devices.

#![forbid(unsafe_code)]

pub mod action_cc;
pub mod ambience;
pub mod echo;

pub use action_cc::run_action_cc;
pub use echo::{run_echo_secure, EchoCalibration};
