//! Ambience-similarity proximity checking (paper Sec. II, related work).
//!
//! Amigo [Varshavsky et al., UbiComp'07] and "Come Closer" [Shafagh &
//! Hithnawi, MobiCom'14] decide proximity by comparing *ambient* signals at
//! the two devices: nearby devices hear similar noise. The paper dismisses
//! the approach for two reasons this module makes testable:
//!
//! 1. **No absolute distances** — similarity gives a relative score, so a
//!    user cannot ask for "0.5 m" vs "1 m" (not personalizable).
//! 2. **Spoofable ambience** — an attacker who plays the same loud sound
//!    near both devices makes far-apart devices look adjacent.

use piano_acoustics::{AcousticField, AudioBuffer};
use piano_core::device::Device;
use rand_chacha::ChaCha8Rng;

/// Result of one ambience comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmbienceScore {
    /// Normalized cross-correlation (peak over small lags) of the two
    /// simultaneous ambient recordings, in `[-1, 1]`.
    pub similarity: f64,
}

/// Records `duration_s` of ambience at both devices simultaneously and
/// returns the peak normalized cross-correlation over lags up to
/// `max_lag` samples (to absorb propagation and clock offsets).
pub fn ambience_similarity(
    field: &mut AcousticField,
    a: &Device,
    b: &Device,
    now_world_s: f64,
    duration_s: f64,
    rng: &mut ChaCha8Rng,
) -> AmbienceScore {
    let rate = 44_100.0;
    let (rec_a, _) = a.record(field, now_world_s, duration_s, rate, rng);
    let (rec_b, _) = b.record(field, now_world_s, duration_s, rate, rng);
    AmbienceScore {
        similarity: peak_normalized_correlation(&rec_a, &rec_b, 2_000),
    }
}

fn peak_normalized_correlation(a: &AudioBuffer, b: &AudioBuffer, max_lag: usize) -> f64 {
    let xa = a.samples();
    let xb = b.samples();
    let n = xa.len().min(xb.len());
    if n < max_lag * 2 + 16 {
        return 0.0;
    }
    let na: f64 = xa[..n].iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = xb[..n].iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-9 || nb < 1e-9 {
        return 0.0;
    }
    let mut best: f64 = -1.0;
    // Both signs of lag, coarse stride then unit refinement is unnecessary
    // here: ambience windows are short.
    for lag in 0..=max_lag {
        let dot_pos: f64 = xa[lag..n]
            .iter()
            .zip(&xb[..n - lag])
            .map(|(x, y)| x * y)
            .sum();
        let dot_neg: f64 = xb[lag..n]
            .iter()
            .zip(&xa[..n - lag])
            .map(|(x, y)| x * y)
            .sum();
        best = best.max(dot_pos / (na * nb)).max(dot_neg / (na * nb));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::field::Emission;
    use piano_acoustics::{Environment, Position, SpeakerModel};
    use piano_core::device::Device;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// A loud shared tonal source heard by both devices.
    fn loud_source(field: &mut AcousticField, at: Position, start: f64) {
        let wave = piano_dsp::tone::multi_tone(
            &[
                piano_dsp::tone::ToneSpec::new(800.0, 6_000.0),
                piano_dsp::tone::ToneSpec::new(1_900.0, 4_000.0),
            ],
            44_100.0,
            44_100, // 1 s
        );
        field.emit(Emission {
            waveform: SpeakerModel::ideal().radiate(&wave, 44_100.0),
            start_world_s: start,
            sample_interval_s: 1.0 / 44_100.0,
            position: at,
        });
    }

    #[test]
    fn nearby_devices_hear_similar_ambience() {
        let mut field = AcousticField::new(Environment::anechoic(), 9);
        loud_source(&mut field, Position::new(1.0, 1.0, 0.0), 0.0);
        let a = Device::ideal(1, Position::ORIGIN);
        let b = Device::ideal(2, Position::new(0.3, 0.0, 0.0));
        let mut r = rng(1);
        let score = ambience_similarity(&mut field, &a, &b, 0.1, 0.5, &mut r);
        assert!(score.similarity > 0.8, "similarity {}", score.similarity);
    }

    #[test]
    fn independent_noise_is_dissimilar() {
        // In a noisy environment with no shared loud source, the dominant
        // noise at each mic is independently generated (independent draws
        // from the noise process), so similarity collapses.
        let mut field = AcousticField::new(Environment::street(), 11);
        let a = Device::ideal(1, Position::ORIGIN);
        let b = Device::ideal(2, Position::new(6.0, 0.0, 0.0));
        let mut r = rng(2);
        let score = ambience_similarity(&mut field, &a, &b, 0.1, 0.5, &mut r);
        assert!(score.similarity < 0.4, "similarity {}", score.similarity);
    }

    #[test]
    fn attacker_can_spoof_far_devices_to_look_close() {
        // The paper's Sec. II attack: play the same sound near both
        // devices. Far-apart devices then score as similar as close ones.
        let mut field = AcousticField::new(Environment::anechoic(), 12);
        let a = Device::ideal(1, Position::ORIGIN);
        let b = Device::ideal(2, Position::new(8.0, 0.0, 0.0));
        // Attacker speakers, one adjacent to each device, same material.
        loud_source(&mut field, Position::new(0.4, 0.0, 0.0), 0.0);
        loud_source(&mut field, Position::new(7.6, 0.0, 0.0), 0.0);
        let mut r = rng(3);
        let score = ambience_similarity(&mut field, &a, &b, 0.1, 0.5, &mut r);
        assert!(
            score.similarity > 0.8,
            "spoofed far devices should look close, similarity {}",
            score.similarity
        );
    }

    #[test]
    fn silence_scores_zero() {
        let mut field = AcousticField::new(Environment::anechoic(), 13);
        let a = Device::ideal(1, Position::ORIGIN);
        let b = Device::ideal(2, Position::new(0.3, 0.0, 0.0));
        let mut r = rng(4);
        let score = ambience_similarity(&mut field, &a, &b, 0.0, 0.3, &mut r);
        assert_eq!(score.similarity, 0.0);
    }

    #[test]
    fn short_recordings_score_zero() {
        let a = AudioBuffer::new(vec![1.0; 100], 44_100.0);
        let b = AudioBuffer::new(vec![1.0; 100], 44_100.0);
        assert_eq!(peak_normalized_correlation(&a, &b, 2_000), 0.0);
    }
}
