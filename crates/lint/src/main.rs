//! CI gate: run the invariant pass over the workspace and fail on any
//! unsuppressed finding.
//!
//! ```text
//! cargo run -p piano-lint --release [--root <path>]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: piano-lint [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("piano-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    // Default to the workspace root this binary was built from.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = piano_lint::run(&root);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
