//! # piano-lint
//!
//! A from-scratch static-analysis pass that enforces the workspace's four
//! load-bearing contracts at CI time:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `dsp-bit-exact` | kernel modules are f64-only, FMA-free, and justify `unsafe` |
//! | `wire-no-panic` | nothing reachable from the wire entry points can panic |
//! | `lock-discipline` | server locks follow the documented rank order; no blocking I/O under a guard |
//! | `decision-determinism` | detection code reads no clocks and iterates no hash maps |
//!
//! The pass is a lightweight lexer plus an item/call-graph extractor — no
//! `syn`, no dependencies — so it runs as `cargo run -p piano-lint` anywhere
//! the toolchain does. Reachability is resolved by *name* and deliberately
//! over-approximates: a qualified call `Type::name(..)` matches exactly, an
//! unqualified or method call matches every scanned function of that name.
//!
//! ## The escape hatch
//!
//! A finding can be suppressed, visibly, with an annotation on the offending
//! line or on its own comment line directly above:
//!
//! ```text
//! // piano-lint: allow(wire-no-panic, reason = "poisoned worker must fail the scan")
//! let shard = h.join().expect("coarse scan worker panicked");
//! ```
//!
//! The `reason` is mandatory; every allow is listed in the report's
//! inventory (including unused ones), so suppressions are reviewable diffs,
//! never silent.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod model;
pub mod rules;

use model::Workspace;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// All rule names, for annotation validation.
pub const RULES: &[&str] = &[
    rules::DSP_BIT_EXACT,
    rules::WIRE_NO_PANIC,
    rules::LOCK_DISCIPLINE,
    rules::DECISION_DETERMINISM,
];

/// Rule name used for malformed `piano-lint:` annotations themselves; such
/// findings cannot be suppressed.
pub const ALLOW_SYNTAX: &str = "allow-syntax";

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: usize, message: &str) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }
}

/// One parsed `// piano-lint: allow(rule, reason = "...")` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub file: String,
    /// Line of the annotation comment.
    pub line: usize,
    pub rule: String,
    pub reason: String,
    /// Source lines the allow covers (the annotated statement).
    pub covers: (usize, usize),
    /// How many findings this allow suppressed.
    pub used: usize,
}

#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression — these fail the gate.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allow, kept for the inventory.
    pub suppressed: Vec<Finding>,
    /// Every allow annotation in the scanned set, used or not.
    pub allows: Vec<Allow>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(
                out,
                "piano-lint: clean ({} finding(s) suppressed by inventoried allows)",
                self.suppressed.len()
            );
        } else {
            let _ = writeln!(out, "piano-lint: {} finding(s)", self.findings.len());
            for f in &self.findings {
                let _ = writeln!(out, "  [{}] {}:{} — {}", f.rule, f.file, f.line, f.message);
            }
        }
        if !self.allows.is_empty() {
            let _ = writeln!(
                out,
                "\nallow inventory ({} annotation(s)):",
                self.allows.len()
            );
            for a in &self.allows {
                let status = if a.used > 0 {
                    format!("suppresses {}", a.used)
                } else {
                    "UNUSED".to_string()
                };
                let _ = writeln!(
                    out,
                    "  {}:{} allow({}) [{}] — {}",
                    a.file, a.line, a.rule, status, a.reason
                );
            }
        }
        out
    }
}

/// The files each rule needs, relative to the scan root. Missing files are
/// skipped, which lets the same entry point run over the partial file trees
/// used as test fixtures.
const SCAN_FILES: &[&str] = &[
    "crates/dsp/src/fft.rs",
    "crates/dsp/src/sparse.rs",
    "crates/dsp/src/simd.rs",
    "crates/core/src/wire.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/sync.rs",
    "crates/core/src/detect.rs",
    "crates/core/src/continuum.rs",
];

/// Run the full pass over a workspace root.
pub fn run(root: &Path) -> Report {
    let mut ws = Workspace::default();
    let mut paths: Vec<String> = SCAN_FILES.iter().map(|s| s.to_string()).collect();
    // Every file of the net crate is wire-facing.
    let net_dir = root.join("crates/net/src");
    if let Ok(entries) = fs::read_dir(&net_dir) {
        let mut net: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "rs"))
            .filter_map(|e| e.file_name().into_string().ok())
            .map(|name| format!("crates/net/src/{name}"))
            .collect();
        net.sort();
        paths.extend(net);
    }
    for rel in paths {
        let path = root.join(&rel);
        if let Ok(src) = fs::read_to_string(&path) {
            ws.add_file(rel, lexer::lex(&src));
        }
    }

    let raw = rules::run_all(&ws);
    let (mut allows, mut bad_allow_findings) = collect_allows(&ws);

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        let hit = allows.iter_mut().find(|a| {
            a.file == f.file && a.rule == f.rule && (a.covers.0..=a.covers.1).contains(&f.line)
        });
        match hit {
            Some(a) => {
                a.used += 1;
                suppressed.push(f);
            }
            None => findings.push(f),
        }
    }
    findings.append(&mut bad_allow_findings);
    findings.sort();
    Report {
        findings,
        suppressed,
        allows,
    }
}

/// Parse every `piano-lint: allow(...)` annotation in the scanned files and
/// compute the statement span each one covers.
fn collect_allows(ws: &Workspace) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for file in &ws.files {
        for c in &file.lexed.comments {
            let Some(at) = c.text.find("piano-lint:") else {
                continue;
            };
            let tail = &c.text[at..];
            match parse_allow(tail) {
                Ok((rule, reason)) => {
                    if !RULES.contains(&rule.as_str()) {
                        bad.push(Finding::new(
                            ALLOW_SYNTAX,
                            &file.rel_path,
                            c.line,
                            &format!("allow names unknown rule `{rule}`"),
                        ));
                        continue;
                    }
                    let covers = coverage_span(file, c.line);
                    allows.push(Allow {
                        file: file.rel_path.clone(),
                        line: c.line,
                        rule,
                        reason,
                        covers,
                        used: 0,
                    });
                }
                Err(why) => {
                    bad.push(Finding::new(ALLOW_SYNTAX, &file.rel_path, c.line, why));
                }
            }
        }
    }
    (allows, bad)
}

/// Grammar: `piano-lint: allow(<rule>, reason = "<non-empty>")`.
fn parse_allow(text: &str) -> Result<(String, String), &'static str> {
    let rest = text
        .strip_prefix("piano-lint:")
        .ok_or("malformed piano-lint annotation")?
        .trim_start();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or("expected `allow(<rule>, reason = \"...\")` after `piano-lint:`")?;
    let rule_end = rest
        .find([',', ')'])
        .ok_or("unterminated allow annotation")?;
    let rule = rest[..rule_end].trim().to_string();
    if rule.is_empty() {
        return Err("allow annotation is missing a rule name");
    }
    let rest = &rest[rule_end..];
    let Some(reason_at) = rest.find("reason") else {
        return Err("allow annotation is missing the mandatory `reason = \"...\"`");
    };
    let after = rest[reason_at + "reason".len()..].trim_start();
    let after = after
        .strip_prefix('=')
        .ok_or("expected `reason = \"...\"`")?
        .trim_start();
    let after = after
        .strip_prefix('"')
        .ok_or("the allow reason must be a quoted string")?;
    let end = after.find('"').ok_or("unterminated allow reason string")?;
    let reason = after[..end].trim().to_string();
    if reason.is_empty() {
        return Err("the allow reason must not be empty");
    }
    Ok((rule, reason))
}

/// Source lines an allow on `line` covers.
///
/// Trailing annotation (code on the same line): that line only. Standalone
/// comment: skip the remaining comment/attribute block downward to the
/// first code line, then extend over the annotated statement — up to the
/// first `;`, `,`, `{` or `}` at bracket depth zero — so a rustfmt-wrapped
/// expression stays covered.
fn coverage_span(file: &model::SourceFile, line: usize) -> (usize, usize) {
    if file.lexed.token_lines.contains(&line) && !file.attr_lines.contains(&line) {
        return (line, line);
    }
    let mut anchor = line + 1;
    let last_line = file
        .lexed
        .token_lines
        .iter()
        .next_back()
        .copied()
        .unwrap_or(line);
    while anchor <= last_line
        && (file.lexed.is_comment_only(anchor)
            || file.attr_lines.contains(&anchor)
            || (!file.lexed.token_lines.contains(&anchor)
                && file.lexed.comment_lines.contains(&anchor)))
    {
        anchor += 1;
    }
    if !file.lexed.token_lines.contains(&anchor) {
        // Blank line or EOF right below the annotation: covers nothing.
        return (line, line);
    }
    let t = &file.lexed.tokens;
    let Some(start_idx) = t.iter().position(|tok| tok.line >= anchor) else {
        return (anchor, anchor);
    };
    let mut depth = 0i32;
    let mut end_line = anchor;
    for tok in &t[start_idx..] {
        end_line = tok.line;
        match tok.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" | "," | "{" | "}" if depth <= 0 => break,
            _ => {}
        }
    }
    (anchor, end_line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_grammar_accepts_the_documented_form() {
        let (rule, reason) =
            parse_allow("piano-lint: allow(wire-no-panic, reason = \"worker poisoning\")").unwrap();
        assert_eq!(rule, "wire-no-panic");
        assert_eq!(reason, "worker poisoning");
    }

    #[test]
    fn allow_grammar_rejects_missing_reason() {
        assert!(parse_allow("piano-lint: allow(wire-no-panic)").is_err());
        assert!(parse_allow("piano-lint: allow(wire-no-panic, reason = \"\")").is_err());
    }

    #[test]
    fn standalone_allow_covers_the_wrapped_statement_below() {
        let src = "fn f() {\n    // piano-lint: allow(wire-no-panic, reason = \"x\")\n    let v = h\n        .join()\n        .expect(\"boom\");\n}\n";
        let mut ws = Workspace::default();
        ws.add_file("crates/net/src/x.rs".into(), lexer::lex(src));
        let span = coverage_span(&ws.files[0], 2);
        assert_eq!(span, (3, 5));
    }
}
