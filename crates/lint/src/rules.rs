//! The four invariant rules.
//!
//! Each rule emits [`Finding`]s over the [`Workspace`] model; suppression via
//! `// piano-lint: allow(...)` annotations happens afterwards in `lib.rs` so
//! every rule stays purely a detector.

use crate::lexer::TokenKind;
use crate::model::{is_keyword, SourceFile, Workspace};
use crate::Finding;
use std::collections::BTreeSet;

pub const DSP_BIT_EXACT: &str = "dsp-bit-exact";
pub const WIRE_NO_PANIC: &str = "wire-no-panic";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const DECISION_DETERMINISM: &str = "decision-determinism";

/// Entry points of the remote-input surface: every function reachable from
/// these by name must be panic-free or carry an inventoried allow.
pub const WIRE_ROOTS: &[(&str, &str)] = &[
    ("Message", "decode"),
    ("AuthSession", "handle_message"),
    ("FrameReader", "next_frame"),
    ("ServerLoop", "serve"),
    ("ReactorServer", "run"),
    // Re-challenge surface: the client parses `Recheck`/`RecheckVerdict`
    // frames a (possibly hostile) gateway sends; the server halves are
    // already reachable from `serve`/`run`.
    ("FeedHandle", "await_recheck"),
    ("FeedHandle", "answer_recheck"),
    ("FeedHandle", "await_recheck_verdict"),
];

/// The documented server lock order (see `crates/net/src/server.rs`):
/// lower rank first; equal or higher rank while held is an inversion.
const LOCK_RANKS: &[(&str, u32)] = &[
    ("progress", 10),
    ("service", 20),
    ("rng", 30),
    ("suspended", 40),
    ("ids", 50),
];

/// Blocking transport calls that must never run under a server lock.
const BLOCKING_IO: &[&str] = &[
    "write_all",
    "read_some",
    "read_exact",
    "read_timeout",
    "try_read",
    "read_frame",
    "read_frame_deadline",
    "flush",
];

fn bit_exact_scope(path: &str) -> bool {
    path == "crates/dsp/src/fft.rs"
        || path == "crates/dsp/src/sparse.rs"
        || path == "crates/dsp/src/simd.rs"
}

fn wire_scope(path: &str) -> bool {
    path.starts_with("crates/net/src/")
        || path == "crates/core/src/wire.rs"
        || path == "crates/core/src/stream.rs"
        || path == "crates/core/src/sync.rs"
        || path == "crates/core/src/pool.rs"
}

fn determinism_scope(path: &str) -> bool {
    path == "crates/core/src/detect.rs"
        || path == "crates/core/src/stream.rs"
        || path == "crates/core/src/continuum.rs"
}

fn lock_scope(path: &str) -> bool {
    path == "crates/net/src/server.rs" || path == "crates/net/src/reactor.rs"
}

pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    dsp_bit_exact(ws, &mut findings);
    wire_no_panic(ws, &mut findings);
    lock_discipline(ws, &mut findings);
    decision_determinism(ws, &mut findings);
    // The extractor re-walks nested items, so dedupe syntactic duplicates.
    findings.sort();
    findings.dedup();
    findings
}

/// Token indices belonging to test-only code in a file: bodies of `#[test]` /
/// `#[cfg(test)]` functions plus whole `#[cfg(test)]` modules.
fn test_token_set(ws: &Workspace, file_idx: usize) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    for f in ws
        .functions
        .iter()
        .filter(|f| f.file == file_idx && f.is_test)
    {
        set.extend(f.body.0..f.body.1);
    }
    for &(start, end) in &ws.files[file_idx].test_ranges {
        set.extend(start..end);
    }
    set
}

// ---------------------------------------------------------------------------
// Rule 1: dsp-bit-exact
// ---------------------------------------------------------------------------

/// The SIMD conformance contract: every backend must produce bit-identical
/// f64 results, so kernels may not use f32 arithmetic, fused multiply-add
/// (contraction changes rounding), or non-bitwise float comparison in
/// dispatch. `unsafe` requires a written SAFETY justification.
fn dsp_bit_exact(ws: &Workspace, out: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        if !bit_exact_scope(&file.rel_path) {
            continue;
        }
        let test_toks = test_token_set(ws, fi);
        let t = &file.lexed.tokens;
        for (j, tok) in t.iter().enumerate() {
            if test_toks.contains(&j) {
                continue;
            }
            if tok.kind == TokenKind::Ident {
                if tok.is("f32") {
                    out.push(Finding::new(
                        DSP_BIT_EXACT,
                        &file.rel_path,
                        tok.line,
                        "f32 in a bit-exact kernel module (the SIMD conformance \
                         contract requires f64 throughout)",
                    ));
                } else if tok.is("mul_add") || tok.text.to_ascii_lowercase().contains("fma") {
                    out.push(Finding::new(
                        DSP_BIT_EXACT,
                        &file.rel_path,
                        tok.line,
                        &format!(
                            "`{}` fuses multiply-add; contraction changes rounding and \
                             breaks cross-backend bit-exactness",
                            tok.text
                        ),
                    ));
                } else if tok.is("unsafe") && !unsafe_is_justified(file, tok.line) {
                    out.push(Finding::new(
                        DSP_BIT_EXACT,
                        &file.rel_path,
                        tok.line,
                        "`unsafe` without a `// SAFETY:` (or `# Safety` doc) justification",
                    ));
                }
            } else if (tok.is("==") || tok.is("!="))
                && file.rel_path.ends_with("simd.rs")
                && float_compare_without_to_bits(file, t, j)
            {
                out.push(Finding::new(
                    DSP_BIT_EXACT,
                    &file.rel_path,
                    tok.line,
                    "float compared with ==/!= in dispatch; compare `.to_bits()` instead",
                ));
            }
        }
    }
}

/// `==`/`!=` adjacent to a float literal, with no `.to_bits()` on the line.
fn float_compare_without_to_bits(file: &SourceFile, t: &[crate::lexer::Token], j: usize) -> bool {
    let adjacent_float = (j > 0 && t[j - 1].is_float_literal())
        || t.get(j + 1).is_some_and(|n| n.is_float_literal());
    if !adjacent_float {
        return false;
    }
    let line = t[j].line;
    !t.iter().any(|o| o.line == line && o.is("to_bits"))
        && !file.lexed.comment_text_on(line).contains("to_bits")
}

/// A SAFETY justification counts if it appears in a comment on the same
/// line, or in the contiguous block of comment-only / attribute lines
/// immediately above.
fn unsafe_is_justified(file: &SourceFile, line: usize) -> bool {
    let has_safety = |l: usize| {
        let text = file.lexed.comment_text_on(l);
        text.contains("SAFETY") || text.contains("Safety")
    };
    if has_safety(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if file.lexed.is_comment_only(l) {
            if has_safety(l) {
                return true;
            }
            continue;
        }
        if file.attr_lines.contains(&l) {
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 2: wire-no-panic
// ---------------------------------------------------------------------------

/// A remote peer must never be able to take the process down: on every
/// function reachable from the wire entry points, panicking constructs are
/// forbidden — `.unwrap()`, `.expect(..)`, the panic macro family, and
/// slice indexing with computed offsets in functions that never consult
/// `.get`/`.len`/`.is_empty`/`.min`/`.clamp`.
fn wire_no_panic(ws: &Workspace, out: &mut Vec<Finding>) {
    let reachable = ws.reachable_from(WIRE_ROOTS);
    for (idx, f) in ws.functions.iter().enumerate() {
        if f.is_test || !reachable.contains(&idx) {
            continue;
        }
        let file = ws.file_of(f);
        if !wire_scope(&file.rel_path) {
            continue;
        }
        let t = &file.lexed.tokens;
        let body = f.body.0..f.body.1.min(t.len());
        let guarded = t[body.clone()].iter().enumerate().any(|(k, tok)| {
            let j = body.start + k;
            tok.kind == TokenKind::Ident
                && matches!(
                    tok.text.as_str(),
                    "get" | "len" | "is_empty" | "min" | "clamp"
                )
                && j > 0
                && t[j - 1].is(".")
        });
        for j in body.clone() {
            let tok = &t[j];
            if tok.kind == TokenKind::Ident {
                let called = t.get(j + 1).is_some_and(|n| n.is("("));
                let method = j > 0 && t[j - 1].is(".");
                if called && method && (tok.is("unwrap") || tok.is("expect")) {
                    out.push(Finding::new(
                        WIRE_NO_PANIC,
                        &file.rel_path,
                        tok.line,
                        &format!(
                            "`.{}(..)` in `{}`, which is reachable from the wire \
                             (roots: Message::decode, AuthSession::handle_message, \
                             FrameReader::next_frame, ServerLoop::serve, \
                             ReactorServer::run)",
                            tok.text, f.key
                        ),
                    ));
                } else if t.get(j + 1).is_some_and(|n| n.is("!"))
                    && matches!(
                        tok.text.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    )
                {
                    out.push(Finding::new(
                        WIRE_NO_PANIC,
                        &file.rel_path,
                        tok.line,
                        &format!("`{}!` in wire-reachable `{}`", tok.text, f.key),
                    ));
                }
            } else if tok.is("[") && !guarded && risky_index(t, j, body.end) {
                out.push(Finding::new(
                    WIRE_NO_PANIC,
                    &file.rel_path,
                    tok.line,
                    &format!(
                        "computed slice index in wire-reachable `{}` with no \
                         `.get`/`.len` guard in the function",
                        f.key
                    ),
                ));
            }
        }
    }
}

/// An index expression `expr[...]` whose bracket content mixes identifiers
/// with arithmetic or a range — the classic out-of-bounds panic shape.
fn risky_index(t: &[crate::lexer::Token], open: usize, limit: usize) -> bool {
    if open == 0 {
        return false;
    }
    let prev = &t[open - 1];
    let indexes =
        (prev.kind == TokenKind::Ident && !is_keyword(&prev.text)) || prev.is(")") || prev.is("]");
    if !indexes {
        return false;
    }
    let mut depth = 0i32;
    let mut has_ident = false;
    let mut has_op = false;
    for tok in t.iter().take(limit).skip(open) {
        if tok.is("[") {
            depth += 1;
        } else if tok.is("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.kind == TokenKind::Ident && !is_keyword(&tok.text) {
            has_ident = true;
        } else if matches!(tok.text.as_str(), "+" | "-" | "*" | "/" | ".." | "..=") {
            has_op = true;
        }
    }
    has_ident && has_op
}

// ---------------------------------------------------------------------------
// Rule 3: lock-discipline
// ---------------------------------------------------------------------------

/// While any server lock guard is live: no blocking transport I/O, and any
/// further `.lock()` must target a strictly higher rank than every held
/// lock (the runtime `OrderedMutex` checker enforces the same order in
/// debug builds; this rule catches it before the code ever runs).
fn lock_discipline(ws: &Workspace, out: &mut Vec<Finding>) {
    let rank_of = |name: &str| LOCK_RANKS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r);
    for f in ws.functions.iter().filter(|f| !f.is_test) {
        let file = ws.file_of(f);
        if !lock_scope(&file.rel_path) {
            continue;
        }
        let t = &ws.files[f.file].lexed.tokens;
        let body = f.body.0..f.body.1.min(t.len());
        // (binding name, lock field identity, brace depth at binding)
        let mut guards: Vec<(String, String, i32)> = Vec::new();
        let mut pending_let: Option<String> = None;
        let mut depth = 0i32;
        for j in body.clone() {
            let tok = &t[j];
            if tok.is("{") {
                depth += 1;
                pending_let = None;
            } else if tok.is("}") {
                depth -= 1;
                guards.retain(|&(_, _, d)| d <= depth);
                pending_let = None;
            } else if tok.is(";") {
                pending_let = None;
            } else if tok.is("let") {
                let mut k = j + 1;
                if t.get(k).is_some_and(|n| n.is("mut")) {
                    k += 1;
                }
                // `let Err(e) = ...` / `let (a, b) = ...` destructure a
                // pattern — the binding is never the guard itself.
                pending_let = t
                    .get(k)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .filter(|_| !t.get(k + 1).is_some_and(|n| n.is("(")))
                    .map(|n| n.text.clone());
            } else if tok.is("drop")
                && t.get(j + 1).is_some_and(|n| n.is("("))
                && t.get(j + 3).is_some_and(|n| n.is(")"))
            {
                if let Some(name) = t.get(j + 2).map(|n| n.text.clone()) {
                    guards.retain(|(g, _, _)| *g != name);
                }
            } else if tok.is("lock")
                && j > 0
                && t[j - 1].is(".")
                && t.get(j + 1).is_some_and(|n| n.is("("))
            {
                let identity = (j >= 2)
                    .then(|| &t[j - 2])
                    .filter(|id| id.kind == TokenKind::Ident)
                    .map(|id| id.text.clone());
                let new_rank = identity.as_deref().and_then(&rank_of);
                if let (Some(id), Some(new_rank)) = (&identity, new_rank) {
                    for (_, held, _) in &guards {
                        if let Some(held_rank) = rank_of(held) {
                            if held_rank >= new_rank {
                                out.push(Finding::new(
                                    LOCK_DISCIPLINE,
                                    &file.rel_path,
                                    tok.line,
                                    &format!(
                                        "`{id}` (rank {new_rank}) locked while `{held}` \
                                         (rank {held_rank}) is held in `{}`; the documented \
                                         order is progress → service → rng",
                                        f.key
                                    ),
                                ));
                            }
                        }
                    }
                }
                // `x.lock().method(..)` is a statement temporary: the guard
                // dies at the semicolon, so it is order-checked above but
                // never becomes a held lock. `lock()` takes no arguments, so
                // its call closes at `j + 2`.
                let chained = t.get(j + 3).is_some_and(|n| n.is("."));
                if let (false, Some(name), Some(id)) = (chained, pending_let.take(), identity) {
                    guards.push((name, id, depth));
                }
            } else if tok.kind == TokenKind::Ident
                && !guards.is_empty()
                && BLOCKING_IO.contains(&tok.text.as_str())
                && t.get(j + 1).is_some_and(|n| n.is("("))
            {
                let held: Vec<&str> = guards.iter().map(|(_, id, _)| id.as_str()).collect();
                out.push(Finding::new(
                    LOCK_DISCIPLINE,
                    &file.rel_path,
                    tok.line,
                    &format!(
                        "blocking `{}(..)` while holding {} in `{}`; release server \
                         locks before touching the transport",
                        tok.text,
                        held.join(", "),
                        f.key
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: decision-determinism
// ---------------------------------------------------------------------------

/// The detection and streaming-decision code must be a pure function of its
/// inputs: no wall-clock reads, no hash-order iteration. (Deadline logic
/// lives in `piano-net` and `continuous.rs`, outside this scope.)
fn decision_determinism(ws: &Workspace, out: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        if !determinism_scope(&file.rel_path) {
            continue;
        }
        let test_toks = test_token_set(ws, fi);
        for (j, tok) in file.lexed.tokens.iter().enumerate() {
            if test_toks.contains(&j) || tok.kind != TokenKind::Ident {
                continue;
            }
            let msg = match tok.text.as_str() {
                "Instant" | "SystemTime" => Some(format!(
                    "`{}` in decision code; scans must be a pure function of \
                     samples and config (clock reads belong in piano-net)",
                    tok.text
                )),
                "HashMap" | "HashSet" => Some(format!(
                    "`{}` in decision code; iteration order would leak into \
                     results — use BTreeMap/BTreeSet",
                    tok.text
                )),
                _ => None,
            };
            if let Some(msg) = msg {
                out.push(Finding::new(
                    DECISION_DETERMINISM,
                    &file.rel_path,
                    tok.line,
                    &msg,
                ));
            }
        }
    }
}
