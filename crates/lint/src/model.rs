//! Item extraction and the over-approximating call graph.
//!
//! A single brace-depth walk over the token stream recovers what the rules
//! need: every `fn` (with its impl-type qualifier, body token range, and
//! whether it is test-only code), the attribute lines, and per-function call
//! lists. Calls are resolved by *name*: a qualified call `Type::name(..)`
//! matches exactly; an unqualified or method call `name(..)` matches every
//! function with that name in the scanned set. That over-approximation is
//! deliberate — reachability errs toward scanning more, never less.

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Keywords that look like call targets but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "mut", "ref",
    "move", "unsafe", "impl", "where", "pub", "use", "mod", "struct", "enum", "trait", "type",
    "const", "static", "crate", "super", "dyn", "break", "continue", "async", "await", "true",
    "false",
];

pub fn is_keyword(text: &str) -> bool {
    NON_CALL_KEYWORDS.contains(&text)
}

#[derive(Debug, Clone)]
pub struct Call {
    /// `Some("Type")` for `Type::name(..)`; `None` for `name(..)` / `.name(..)`.
    pub qualifier: Option<String>,
    pub name: String,
}

#[derive(Debug)]
pub struct Function {
    /// `Type::name` when defined in an `impl Type` block, else `name`.
    pub key: String,
    pub name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    pub start_line: usize,
    pub end_line: usize,
    /// Token index range of the body, `[start, end)`, braces included.
    pub body: (usize, usize),
    /// `#[test]`, `#[cfg(test)]`, or inside a `#[cfg(test)]` module.
    pub is_test: bool,
    pub calls: Vec<Call>,
}

#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scan root, with `/` separators.
    pub rel_path: String,
    pub lexed: Lexed,
    /// Lines occupied by `#[...]` / `#![...]` attributes.
    pub attr_lines: BTreeSet<usize>,
    /// Token index ranges `[start, end)` of whole `#[cfg(test)]` modules.
    pub test_ranges: Vec<(usize, usize)>,
}

#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub functions: Vec<Function>,
}

impl Workspace {
    pub fn add_file(&mut self, rel_path: String, lexed: Lexed) {
        let file_idx = self.files.len();
        let mut attr_lines = BTreeSet::new();
        let mut test_ranges = Vec::new();
        extract_items(
            &lexed,
            file_idx,
            &mut self.functions,
            &mut attr_lines,
            &mut test_ranges,
        );
        self.files.push(SourceFile {
            rel_path,
            lexed,
            attr_lines,
            test_ranges,
        });
    }

    pub fn file_of(&self, f: &Function) -> &SourceFile {
        &self.files[f.file]
    }

    /// Indices of functions reachable from `roots` (given as
    /// `(TypeQualifier, name)` pairs), following calls by name.
    pub fn reachable_from(&self, roots: &[(&str, &str)]) -> BTreeSet<usize> {
        let mut by_plain: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_key: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.functions.iter().enumerate() {
            by_plain.entry(f.name.as_str()).or_default().push(i);
            by_key.entry(f.key.as_str()).or_default().push(i);
        }

        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (ty, name) in roots {
            let key = format!("{ty}::{name}");
            let hits = by_key
                .get(key.as_str())
                .cloned()
                .unwrap_or_else(|| by_plain.get(*name).cloned().unwrap_or_default());
            for i in hits {
                if seen.insert(i) {
                    queue.push_back(i);
                }
            }
        }
        while let Some(i) = queue.pop_front() {
            // Snapshot the call list; self.functions is not mutated here.
            for c in &self.functions[i].calls {
                let plain = || by_plain.get(c.name.as_str()).cloned().unwrap_or_default();
                let targets: Vec<usize> = match &c.qualifier {
                    // `Self::x(..)` cannot be resolved without type context;
                    // fall back to matching every `x`.
                    Some(q) if q != "Self" => {
                        let key = format!("{q}::{}", c.name);
                        match by_key.get(key.as_str()) {
                            Some(v) => v.clone(),
                            // Unknown CamelCase qualifier: an external type
                            // (VecDeque, Duration, ...) — a trusted boundary,
                            // not a scanned function. Lowercase qualifiers
                            // are module paths; resolve those by name.
                            None if q.starts_with(|ch: char| ch.is_uppercase()) => Vec::new(),
                            None => plain(),
                        }
                    }
                    _ => plain(),
                };
                for t in targets {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }
}

/// One pass over the tokens: track brace depth, impl blocks, `#[cfg(test)]`
/// modules, and attributes pending for the next item; record every `fn`.
fn extract_items(
    lexed: &Lexed,
    file_idx: usize,
    out: &mut Vec<Function>,
    attr_lines: &mut BTreeSet<usize>,
    test_ranges: &mut Vec<(usize, usize)>,
) {
    let t = &lexed.tokens;
    let mut depth: i32 = 0;
    // (items_depth, type_name): an impl block whose items live at `items_depth`.
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    // Depths at which a #[cfg(test)] module's body opened.
    let mut test_mod_stack: Vec<i32> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;

    while i < t.len() {
        let tok = &t[i];
        // Attribute: #[...] or #![...]. Record its lines, stash its text.
        if tok.is("#") {
            let bracket = if t.get(i + 1).is_some_and(|n| n.is("[")) {
                Some(i + 1)
            } else if t.get(i + 1).is_some_and(|n| n.is("!"))
                && t.get(i + 2).is_some_and(|n| n.is("["))
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = bracket {
                let mut j = open;
                let mut bdepth = 0i32;
                let mut text = String::new();
                while j < t.len() {
                    if t[j].is("[") {
                        bdepth += 1;
                    } else if t[j].is("]") {
                        bdepth -= 1;
                        if bdepth == 0 {
                            break;
                        }
                    }
                    attr_lines.insert(t[j].line);
                    text.push_str(&t[j].text);
                    text.push(' ');
                    j += 1;
                }
                if j < t.len() {
                    attr_lines.insert(t[j].line);
                }
                attr_lines.insert(tok.line);
                pending_attrs.push(text);
                i = j + 1;
                continue;
            }
        }
        match tok.text.as_str() {
            "{" => {
                depth += 1;
                pending_attrs.clear();
            }
            "}" => {
                depth -= 1;
                impl_stack.retain(|(d, _)| *d <= depth);
                test_mod_stack.retain(|d| *d <= depth);
                pending_attrs.clear();
            }
            ";" => pending_attrs.clear(),
            "impl" if tok.kind == TokenKind::Ident => {
                if let Some((ty, body_open)) = parse_impl_header(t, i) {
                    impl_stack.push((depth + 1, ty));
                    i = body_open; // lands on '{'; loop handles depth.
                    continue;
                }
            }
            "mod" if tok.kind == TokenKind::Ident => {
                let is_test_mod = pending_attrs.iter().any(|a| a.contains("test"));
                // `mod name {` — find whether a body opens.
                if t.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                    && t.get(i + 2).is_some_and(|n| n.is("{"))
                    && is_test_mod
                {
                    test_mod_stack.push(depth + 1);
                    // Record the whole module's token span so rules can skip
                    // even non-function test items (use statements, consts).
                    let open = i + 2;
                    let mut bdepth = 0i32;
                    for (k, btok) in t.iter().enumerate().skip(open) {
                        if btok.is("{") {
                            bdepth += 1;
                        } else if btok.is("}") {
                            bdepth -= 1;
                            if bdepth == 0 {
                                test_ranges.push((open, k + 1));
                                break;
                            }
                        }
                    }
                }
                pending_attrs.clear();
            }
            "fn" if tok.kind == TokenKind::Ident => {
                if let Some(f) = parse_fn(
                    t,
                    i,
                    file_idx,
                    depth,
                    &impl_stack,
                    !test_mod_stack.is_empty() || pending_attrs.iter().any(|a| a.contains("test")),
                ) {
                    out.push(f);
                }
                pending_attrs.clear();
            }
            _ => {}
        }
        i += 1;
    }
}

/// From the `impl` token, recover the implemented type name and the index of
/// the `{` that opens the block. The type is the first identifier after
/// `for` (trait impls) — or after `impl` (inherent impls) — at angle-bracket
/// depth zero.
fn parse_impl_header(t: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut ty: Option<String> = None;
    while j < t.len() {
        let tok = &t[j];
        if tok.is("{") && angle <= 0 {
            return ty.map(|ty| (ty, j));
        }
        if tok.is(";") {
            return None;
        }
        if tok.is("<") {
            angle += 1;
        } else if tok.is(">") || tok.is(">>") {
            angle -= 1;
        } else if tok.is("for") && angle == 0 {
            after_for = true;
            ty = None; // the trait name was captured; the type follows.
        } else if tok.kind == TokenKind::Ident && angle == 0 && !is_keyword(&tok.text) {
            // Keep the *last* path segment before `<`/`{`: `wire::Message`.
            let keep = ty.is_none() || t.get(j - 1).is_some_and(|p| p.is("::")) || after_for;
            if keep {
                ty = Some(tok.text.clone());
                after_for = false;
            }
        }
        j += 1;
    }
    None
}

/// From the `fn` token, record the function: name, qualifier from the
/// innermost impl whose items live at this depth, body token range (functions
/// without bodies — trait methods, extern decls — are skipped).
fn parse_fn(
    t: &[Token],
    fn_idx: usize,
    file_idx: usize,
    depth: i32,
    impl_stack: &[(i32, String)],
    is_test: bool,
) -> Option<Function> {
    let name_tok = t.get(fn_idx + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Find the body `{`, skipping the signature (parens, generics, where
    // clauses). Parens/brackets nest; the first `{` outside them is the body.
    let mut j = fn_idx + 2;
    let mut paren = 0i32;
    let mut body_open = None;
    while j < t.len() {
        let tok = &t[j];
        if tok.is("(") || tok.is("[") {
            paren += 1;
        } else if tok.is(")") || tok.is("]") {
            paren -= 1;
        } else if tok.is("{") && paren == 0 {
            body_open = Some(j);
            break;
        } else if tok.is(";") && paren == 0 {
            return None; // declaration without a body
        }
        j += 1;
    }
    let open = body_open?;
    // Match braces to find the body end.
    let mut bdepth = 0i32;
    let mut close = open;
    for (k, tok) in t.iter().enumerate().skip(open) {
        if tok.is("{") {
            bdepth += 1;
        } else if tok.is("}") {
            bdepth -= 1;
            if bdepth == 0 {
                close = k;
                break;
            }
        }
    }
    let qualifier = impl_stack
        .iter()
        .rev()
        .find(|(d, _)| *d == depth)
        .map(|(_, ty)| ty.clone());
    let key = match &qualifier {
        Some(ty) => format!("{ty}::{name}"),
        None => name.clone(),
    };
    let calls = extract_calls(t, open, close + 1);
    Some(Function {
        key,
        name,
        file: file_idx,
        start_line: t[fn_idx].line,
        end_line: t[close].line,
        body: (open, close + 1),
        is_test,
        calls,
    })
}

/// Collect call targets inside a body token range.
fn extract_calls(t: &[Token], start: usize, end: usize) -> Vec<Call> {
    let mut calls = Vec::new();
    for j in start..end.min(t.len()) {
        let tok = &t[j];
        if tok.kind != TokenKind::Ident || is_keyword(&tok.text) {
            continue;
        }
        // Skip nested `fn name` definitions — the name is not a call.
        if j > 0 && t[j - 1].is("fn") {
            continue;
        }
        let next = match t.get(j + 1) {
            Some(n) => n,
            None => continue,
        };
        if next.is("(") {
            let qualifier = if j >= 1 && t[j - 1].is(".") {
                None // method call — matched by plain name
            } else if j >= 2 && t[j - 1].is("::") && t[j - 2].kind == TokenKind::Ident {
                Some(t[j - 2].text.clone())
            } else {
                None
            };
            calls.push(Call {
                qualifier,
                name: tok.text.clone(),
            });
        }
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ws(src: &str) -> Workspace {
        let mut w = Workspace::default();
        w.add_file("test.rs".into(), lex(src));
        w
    }

    #[test]
    fn impl_methods_get_qualified_keys() {
        let w = ws("impl Message { fn decode(&self) { helper(); } }\nfn helper() {}");
        let keys: Vec<&str> = w.functions.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(keys, vec!["Message::decode", "helper"]);
    }

    #[test]
    fn trait_impls_qualify_by_the_implemented_type() {
        let w = ws("impl Display for Frame { fn fmt(&self) {} }");
        assert_eq!(w.functions[0].key, "Frame::fmt");
    }

    #[test]
    fn cfg_test_modules_mark_their_functions() {
        let w =
            ws("fn real() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}");
        let flags: Vec<bool> = w.functions.iter().map(|f| f.is_test).collect();
        assert_eq!(flags, vec![false, true, true]);
    }

    #[test]
    fn reachability_follows_qualified_and_plain_calls() {
        let w = ws("impl Message { fn decode(&self) { self.read_u16(); } }\n\
             impl Message { fn read_u16(&self) { leaf(); } }\n\
             fn leaf() {}\n\
             fn unrelated() {}");
        let reach = w.reachable_from(&[("Message", "decode")]);
        let names: Vec<&str> = reach
            .iter()
            .map(|&i| w.functions[i].name.as_str())
            .collect();
        assert_eq!(names, vec!["decode", "read_u16", "leaf"]);
    }

    #[test]
    fn generic_impl_headers_resolve_the_base_type() {
        let w = ws("impl<T: Clone> Holder<T> { fn get(&self) {} }");
        assert_eq!(w.functions[0].key, "Holder::get");
    }
}
