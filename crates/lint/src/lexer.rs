//! A minimal line-aware Rust lexer.
//!
//! The linter does not need a real parser: every rule it enforces is
//! expressible over a token stream with line numbers, plus a side map of
//! comments (for `SAFETY:` justifications and `piano-lint: allow(...)`
//! annotations). The lexer therefore handles exactly the lexical subtleties
//! that would otherwise corrupt a naive scan — strings, raw strings, char
//! literals vs. lifetimes, nested block comments — and nothing more.

use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    /// Number, string, char, or byte literal.
    Literal,
    Lifetime,
    /// Single- or multi-character operator / delimiter.
    Punct,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }

    /// A number literal containing a decimal point (`1.0`, `2.5e3` lexes as
    /// `2.5` + `e3` but keeps the dot in the first token).
    pub fn is_float_literal(&self) -> bool {
        self.kind == TokenKind::Literal
            && self.text.contains('.')
            && self.text.chars().next().is_some_and(|c| c.is_ascii_digit())
    }
}

#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Raw text including the `//` / `/*` markers.
    pub text: String,
}

/// One lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Lines that contain any part of a comment.
    pub comment_lines: BTreeSet<usize>,
    /// Lines that contain at least one token (code).
    pub token_lines: BTreeSet<usize>,
}

impl Lexed {
    /// True when the line holds comment text and no code.
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.comment_lines.contains(&line) && !self.token_lines.contains(&line)
    }

    /// All comment text that starts on `line`, concatenated.
    pub fn comment_text_on(&self, line: usize) -> String {
        self.comments
            .iter()
            .filter(|c| c.line == line)
            .map(|c| c.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Operators lexed as a single multi-character token, longest first.
const COMPOUND: &[&str] = &[
    "..=", "::", "..", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=",
];

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr) => {{
            out.token_lines.insert($line);
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (including doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            out.comment_lines.insert(line);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    out.comment_lines.insert(line);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(chars.len())].iter().collect(),
            });
            for l in start_line..=line {
                out.comment_lines.insert(l);
            }
            continue;
        }
        // Raw string, possibly with a b prefix: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')))
            && is_raw_string_start(&chars, i)
        {
            let start_line = line;
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // Skip the opening quote.
            j += 1;
            loop {
                match chars.get(j) {
                    None => break,
                    Some('\n') => {
                        line += 1;
                        j += 1;
                    }
                    Some('"') => {
                        let mut k = 0usize;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            push_tok!(TokenKind::Literal, "\"raw\"".to_string(), start_line);
            i = j;
            continue;
        }
        // Ordinary (possibly byte) string.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let start_line = line;
            let mut j = i + if c == 'b' { 2 } else { 1 };
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            push_tok!(TokenKind::Literal, "\"str\"".to_string(), start_line);
            i = j;
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            if next == Some('\\') {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                push_tok!(TokenKind::Literal, "'c'".to_string(), line);
                i = j + 1;
                continue;
            }
            if next.is_some_and(|n| n.is_alphanumeric() || n == '_') {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    // 'a'
                    push_tok!(TokenKind::Literal, "'c'".to_string(), line);
                    i = j + 1;
                } else {
                    // 'a lifetime (or 'static)
                    let text: String = chars[i..j].iter().collect();
                    push_tok!(TokenKind::Lifetime, text, line);
                    i = j;
                }
                continue;
            }
            // Bare quote (macro edge case): treat as punct.
            push_tok!(TokenKind::Punct, "'".to_string(), line);
            i += 1;
            continue;
        }
        // Identifier / keyword (including r# raw identifiers).
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            push_tok!(TokenKind::Ident, text, line);
            i = j;
            continue;
        }
        // Number literal: 0x1F, 1_000, 1.5, 1.5e3 (exponent sign splits; fine).
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            let text: String = chars[i..j].iter().collect();
            push_tok!(TokenKind::Literal, text, line);
            i = j;
            continue;
        }
        // Compound operator, longest match first.
        let mut matched = false;
        for op in COMPOUND {
            let len = op.chars().count();
            if chars[i..].starts_with(&op.chars().collect::<Vec<_>>()[..])
                && chars[i..].len() >= len
            {
                push_tok!(TokenKind::Punct, (*op).to_string(), line);
                i += len;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        push_tok!(TokenKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

/// `r` / `br` followed by zero or more `#` then `"` starts a raw string;
/// anything else (e.g. the identifier `rank`) does not.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i + if chars[i] == 'b' { 2 } else { 1 };
    if chars[i] == 'b' && chars.get(i + 1) != Some(&'r') {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text == "'c'")
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// unwrap() in a comment\nlet x = 1; /* expect( */\n");
        assert!(!l.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(l.is_comment_only(1));
        assert!(!l.is_comment_only(2));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = texts(r#"let s = "call unwrap() now";"#);
        assert!(!toks.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let l = lex("let s = r#\"has \"quotes\" inside\"#; /* a /* nested */ ok */ let y = 2;");
        assert!(l.tokens.iter().any(|t| t.text == "y"));
        assert!(!l.tokens.iter().any(|t| t.text == "nested"));
    }

    #[test]
    fn compound_operators_lex_as_one_token() {
        let toks = texts("if a != b { c[..n] } else { Foo::bar() }");
        assert!(toks.contains(&"!=".to_string()));
        assert!(toks.contains(&"..".to_string()));
        assert!(toks.contains(&"::".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
