//! Fixture corpus: one positive and one negative case per rule, with exact
//! finding counts, plus the allow escape hatch (suppression + inventory)
//! and a self-test that the real workspace is clean.

use piano_lint::{rules, run, Report, ALLOW_SYNTAX};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    run(&root)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn dsp_positive_flags_f32_fma_float_eq_and_bare_unsafe() {
    let report = fixture("dsp_bad");
    assert_eq!(
        rules_of(&report),
        vec![rules::DSP_BIT_EXACT; 5],
        "{}",
        report.render()
    );
    let messages: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("f32"));
    assert!(messages.contains("mul_add"));
    assert!(messages.contains("to_bits"));
    assert!(messages.contains("SAFETY"));
}

#[test]
fn dsp_negative_is_clean_including_justified_unsafe() {
    let report = fixture("dsp_ok");
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.allows.is_empty());
}

#[test]
fn wire_positive_flags_only_the_reachable_function() {
    let report = fixture("wire_bad");
    assert_eq!(
        rules_of(&report),
        vec![rules::WIRE_NO_PANIC; 3],
        "{}",
        report.render()
    );
    // All three findings are in handle_feed; the unwrap in the unreachable
    // maintenance_sweep is out of the taint scope.
    for f in &report.findings {
        assert!(f.message.contains("handle_feed"), "{}", f.message);
    }
}

#[test]
fn reactor_root_taints_helpers_and_lock_scope_covers_reactor() {
    let report = fixture("reactor_bad");
    let mut found = rules_of(&report);
    found.sort_unstable();
    assert_eq!(
        found,
        vec![rules::LOCK_DISCIPLINE, rules::WIRE_NO_PANIC],
        "{}",
        report.render()
    );
    let messages: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        messages.contains("ReactorServer::drive") && messages.contains("ReactorServer::run"),
        "{messages}"
    );
    assert!(messages.contains("write_all"), "{messages}");
}

#[test]
fn wire_negative_is_clean_with_guarded_indexing() {
    let report = fixture("wire_ok");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn lock_positive_flags_inversion_and_io_under_guard() {
    let report = fixture("lock_bad");
    assert_eq!(
        rules_of(&report),
        vec![rules::LOCK_DISCIPLINE; 2],
        "{}",
        report.render()
    );
    assert!(report.findings[0].message.contains("rank"));
    assert!(report.findings[1].message.contains("write_all"));
}

#[test]
fn lock_negative_accepts_ascending_order_and_temporaries() {
    let report = fixture("lock_ok");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn determinism_positive_flags_clock_and_hash_idents() {
    let report = fixture("det_bad");
    assert_eq!(
        rules_of(&report),
        vec![rules::DECISION_DETERMINISM; 4],
        "{}",
        report.render()
    );
}

#[test]
fn determinism_negative_accepts_btree_decision_code() {
    let report = fixture("det_ok");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn allows_suppress_inventory_and_reject_missing_reasons() {
    let report = fixture("allow_case");
    // One malformed annotation (no reason) plus two bare unwraps fail the
    // gate; the valid annotation suppresses its unwrap and is inventoried.
    let mut found = rules_of(&report);
    found.sort_unstable();
    assert_eq!(
        found,
        vec![ALLOW_SYNTAX, rules::WIRE_NO_PANIC, rules::WIRE_NO_PANIC],
        "{}",
        report.render()
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 1);
    assert_eq!(report.allows[0].rule, rules::WIRE_NO_PANIC);
    let rendered = report.render();
    assert!(rendered.contains("allow inventory"));
    assert!(rendered.contains("fixture: invariant documented elsewhere"));
}

#[test]
fn the_real_workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .expect("workspace root");
    let report = run(&root);
    assert!(report.is_clean(), "{}", report.render());
    // Every allow in the tree must pull its weight: an unused annotation is
    // stale documentation and should be deleted, not inventoried forever.
    for a in &report.allows {
        assert!(
            a.used > 0,
            "unused allow at {}:{} ({})",
            a.file,
            a.line,
            a.rule
        );
    }
}
