//! Fixture: the same kernel written within the contract.

pub fn kernel(a: &mut [f64], best: f64) {
    let scale: f64 = 0.5;
    let expanded = a[0] * 2.0 + scale;
    if best.to_bits() == 1.5f64.to_bits() {
        a[0] = expanded;
    }
    // SAFETY: the backend was runtime-detected and `a` is non-empty by the
    // dispatch precondition asserted by the caller.
    unsafe {
        raw_kernel(a);
    }
}

/// # Safety
///
/// Caller must have verified the required target features at runtime.
unsafe fn raw_kernel(_a: &mut [f64]) {}
