//! Fixture: lock-order inversion plus blocking I/O under a guard.

pub struct ServerLoop;

impl ServerLoop {
    fn scan_and_reply(&self, sh: &Shared, t: &mut Conn) {
        let service = sh.service.lock();
        let progress = sh.progress.lock();
        t.write_all(b"decision");
        drop(progress);
        drop(service);
    }
}
