//! Fixture: every way a kernel can break the bit-exactness contract.

pub fn kernel(a: &mut [f64], best: f64) {
    let narrowed: f32 = 0.5;
    let fused = a[0].mul_add(2.0, narrowed as f64);
    if best == 1.5 {
        a[0] = fused;
    }
    unsafe {
        raw_kernel(a);
    }
}

unsafe fn raw_kernel(_a: &mut [f64]) {}

#[cfg(test)]
mod tests {
    // Test-only code is exempt: this f32 must not be flagged.
    #[test]
    fn test_helper() {
        let _x: f32 = 1.0;
    }
}
