//! Fixture: the same path written panic-free.

pub struct ServerLoop;

impl ServerLoop {
    pub fn serve(&self) {
        self.handle_feed(7);
    }

    fn handle_feed(&self, n: usize) {
        let v: Vec<u8> = vec![1, 2, 3];
        let Some(first) = v.first() else {
            return;
        };
        if n > *first as usize {
            return;
        }
        if let Some(x) = v.get(n - 1) {
            let _ = x;
        }
    }

    /// Unreachable helper: panics here are outside the wire taint scope.
    pub fn maintenance_sweep(&self) {
        let v: Vec<u8> = Vec::new();
        let _ = v.last().unwrap();
    }
}
