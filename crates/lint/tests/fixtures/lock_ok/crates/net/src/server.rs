//! Fixture: ascending lock order, I/O only after both guards die.

pub struct ServerLoop;

impl ServerLoop {
    fn scan_and_reply(&self, sh: &Shared, t: &mut Conn) {
        let frame = {
            let progress = sh.progress.lock();
            let service = sh.service.lock();
            service.frame_for(progress.round)
        };
        t.write_all(&frame);
    }

    fn peek(&self, sh: &Shared) -> usize {
        // A statement-temporary guard dies at the semicolon; the later
        // acquisition of a lower rank is therefore legal.
        let pending = sh.suspended.lock().len();
        let progress = sh.progress.lock();
        pending + progress.round
    }
}
