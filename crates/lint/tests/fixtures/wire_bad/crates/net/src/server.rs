//! Fixture: panicking constructs on the wire-reachable path.

pub struct ServerLoop;

impl ServerLoop {
    pub fn serve(&self) {
        self.handle_feed(7);
    }

    fn handle_feed(&self, n: usize) {
        let v: Vec<u8> = Vec::new();
        let first = v.first().unwrap();
        if n > *first as usize {
            panic!("bad frame");
        }
        let _ = v[n - 1];
    }

    /// Not reachable from any root: its unwrap must NOT be flagged.
    pub fn maintenance_sweep(&self) {
        let v: Vec<u8> = Vec::new();
        let _ = v.last().unwrap();
    }
}
