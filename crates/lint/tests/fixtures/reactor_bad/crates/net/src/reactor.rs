//! Fixture: the reactor entry point taints its helpers (wire-no-panic)
//! and `reactor.rs` is inside the lock-discipline scope.

pub struct ReactorServer;

impl ReactorServer {
    pub fn run(&self) {
        self.drive(3);
        self.publish();
    }

    fn drive(&self, n: usize) {
        let v: Vec<u8> = Vec::new();
        let first = v.first().unwrap();
        let _ = n + *first as usize;
    }

    /// Transport I/O while a reactor lock guard is live.
    fn publish(&self) {
        let guard = self.progress.lock();
        self.t.write_all(&[0]);
        drop(guard);
    }
}
