//! Fixture: the same decision written deterministically.

use std::collections::BTreeMap;

pub fn decide(scores: &BTreeMap<u64, f64>) -> u64 {
    scores.keys().copied().next().unwrap_or(0)
}
