//! Fixture: nondeterminism in decision code.

use std::collections::HashMap;
use std::time::Instant;

pub fn decide(scores: &HashMap<u64, f64>) -> u64 {
    let _started = Instant::now();
    scores.keys().copied().next().unwrap_or(0)
}
