//! Fixture: the allow escape hatch — one valid annotation (suppresses its
//! finding and lands in the inventory), one malformed (missing the
//! mandatory reason — itself a gate failure), one finding left bare.

pub struct ServerLoop;

impl ServerLoop {
    pub fn serve(&self) {
        self.handle(1);
    }

    fn handle(&self, n: usize) {
        let v: Vec<u8> = vec![0];
        // piano-lint: allow(wire-no-panic, reason = "fixture: invariant documented elsewhere")
        let first = v.first().unwrap();
        let _ = (first, n);
        // piano-lint: allow(wire-no-panic)
        let second = v.last().unwrap();
        let _ = second;
        let third = v.first().unwrap();
        let _ = third;
    }
}
