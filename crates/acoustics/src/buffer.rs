//! Audio buffers.
//!
//! Recordings in the reproduction live in "Android sample units": the paper
//! synthesizes reference signals with amplitude up to 32000 because "the
//! Android system uses 16 bit integer to represent signals in the time
//! domain". [`AudioBuffer`] stores samples as `f64` for processing headroom;
//! [`AudioBuffer::quantize_i16`] rounds and clamps to the 16-bit range the
//! way a real ADC would.

use serde::{Deserialize, Serialize};

/// Maximum magnitude representable by a 16-bit sample.
pub const I16_FULL_SCALE: f64 = 32_767.0;

/// A mono audio buffer with an associated sample rate.
///
/// # Example
///
/// ```
/// use piano_acoustics::AudioBuffer;
///
/// let buf = AudioBuffer::new(vec![0.0; 44_100], 44_100.0);
/// assert!((buf.duration_s() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AudioBuffer {
    samples: Vec<f64>,
    sample_rate: f64,
}

impl AudioBuffer {
    /// Wraps samples with their sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not strictly positive and finite.
    pub fn new(samples: Vec<f64>, sample_rate: f64) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive and finite"
        );
        AudioBuffer {
            samples,
            sample_rate,
        }
    }

    /// An all-zero buffer of `len` samples.
    pub fn silence(len: usize, sample_rate: f64) -> Self {
        AudioBuffer::new(vec![0.0; len], sample_rate)
    }

    /// Sample rate in Hz.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Immutable view of the samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable view of the samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the buffer, returning the samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Converts a sample index to the buffer-local time in seconds.
    #[inline]
    pub fn index_to_time(&self, index: usize) -> f64 {
        index as f64 / self.sample_rate
    }

    /// Converts a buffer-local time to the nearest sample index (clamped).
    pub fn time_to_index(&self, time_s: f64) -> usize {
        if self.samples.is_empty() {
            return 0;
        }
        ((time_s * self.sample_rate).round().max(0.0) as usize).min(self.samples.len() - 1)
    }

    /// Rounds every sample to an integer and clamps to ±32767, emulating a
    /// 16-bit ADC. Returns self for chaining.
    pub fn quantize_i16(&mut self) -> &mut Self {
        for s in &mut self.samples {
            *s = s.round().clamp(-I16_FULL_SCALE, I16_FULL_SCALE);
        }
        self
    }

    /// Adds another buffer into this one, sample by sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample rates differ or `other` is longer than `self`.
    pub fn mix_in(&mut self, other: &AudioBuffer) {
        assert_eq!(
            self.sample_rate, other.sample_rate,
            "cannot mix buffers with different sample rates"
        );
        assert!(other.len() <= self.len(), "mixed buffer must fit");
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += b;
        }
    }

    /// Root-mean-square level of the buffer.
    pub fn rms(&self) -> f64 {
        piano_dsp::tone::rms(&self.samples)
    }

    /// Peak absolute sample value.
    pub fn peak(&self) -> f64 {
        piano_dsp::tone::peak(&self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let b = AudioBuffer::new(vec![1.0, -2.0, 3.0], 44_100.0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.sample_rate(), 44_100.0);
        assert_eq!(b.samples(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn silence_is_zeroed() {
        let b = AudioBuffer::silence(10, 8_000.0);
        assert_eq!(b.len(), 10);
        assert!(b.samples().iter().all(|&s| s == 0.0));
        assert_eq!(b.rms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_sample_rate() {
        let _ = AudioBuffer::new(vec![], 0.0);
    }

    #[test]
    fn time_index_roundtrip() {
        let b = AudioBuffer::silence(44_100, 44_100.0);
        assert_eq!(b.time_to_index(0.5), 22_050);
        assert!((b.index_to_time(22_050) - 0.5).abs() < 1e-12);
        // Clamping behaviour.
        assert_eq!(b.time_to_index(-1.0), 0);
        assert_eq!(b.time_to_index(100.0), 44_099);
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        let mut b = AudioBuffer::new(vec![0.4, 0.6, -40_000.0, 40_000.0], 44_100.0);
        b.quantize_i16();
        assert_eq!(b.samples(), &[0.0, 1.0, -32_767.0, 32_767.0]);
    }

    #[test]
    fn mix_in_adds_samples() {
        let mut a = AudioBuffer::new(vec![1.0, 2.0, 3.0], 44_100.0);
        let b = AudioBuffer::new(vec![10.0, 20.0], 44_100.0);
        a.mix_in(&b);
        assert_eq!(a.samples(), &[11.0, 22.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "different sample rates")]
    fn mix_rejects_rate_mismatch() {
        let mut a = AudioBuffer::silence(4, 44_100.0);
        let b = AudioBuffer::silence(4, 48_000.0);
        a.mix_in(&b);
    }

    #[test]
    fn peak_and_rms() {
        let b = AudioBuffer::new(vec![3.0, -4.0], 44_100.0);
        assert_eq!(b.peak(), 4.0);
        assert!((b.rms() - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
