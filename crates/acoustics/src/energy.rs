//! Component-level energy model (the PowerTutor substitution).
//!
//! The paper measured, with PowerTutor, that "performing 100 times of
//! authentication only consumes 0.6% of the smartphone battery"
//! (Sec. VI-D). PowerTutor attributes battery drain to hardware components
//! with per-component power models; this module does the same from first
//! principles: every phase of an authentication run charges one of four
//! components (speaker, microphone+ADC, CPU, Bluetooth) for its duration.
//!
//! Default power figures are S4-class magnitudes from the smartphone power
//! literature (media playback, audio capture, active compute, BT transfer).

use serde::{Deserialize, Serialize};

/// Power draw per component, in watts, plus the battery capacity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Speaker amplifier power while playing (W).
    pub speaker_w: f64,
    /// Microphone + ADC capture power (W).
    pub microphone_w: f64,
    /// Active CPU power during signal processing (W).
    pub cpu_w: f64,
    /// Bluetooth radio power while transferring (W).
    pub bluetooth_w: f64,
    /// Battery capacity in watt-hours (Galaxy S4: 2600 mAh · 3.8 V).
    pub battery_wh: f64,
}

impl EnergyModel {
    /// Galaxy-S4-class defaults.
    pub fn galaxy_s4() -> Self {
        EnergyModel {
            speaker_w: 0.45,
            microphone_w: 0.35,
            cpu_w: 1.00,
            bluetooth_w: 0.10,
            battery_wh: 9.88,
        }
    }

    /// Energy in joules for one authentication, given the phase durations.
    pub fn energy_per_auth_j(&self, durations: &PhaseDurations) -> f64 {
        self.speaker_w * durations.playback_s
            + self.microphone_w * durations.recording_s
            + self.cpu_w * durations.compute_s
            + self.bluetooth_w * durations.bluetooth_s
    }

    /// Battery percentage consumed by `n` authentications.
    pub fn battery_percent(&self, durations: &PhaseDurations, n: u32) -> f64 {
        let battery_j = self.battery_wh * 3_600.0;
        100.0 * self.energy_per_auth_j(durations) * n as f64 / battery_j
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::galaxy_s4()
    }
}

/// Durations of the energy-consuming phases of one authentication, in
/// seconds. Produced by [`TimingModel`](crate::timing::TimingModel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseDurations {
    /// Time the speaker is actively radiating.
    pub playback_s: f64,
    /// Time the microphone/ADC is capturing.
    pub recording_s: f64,
    /// Active CPU time (detection, spectra, bookkeeping).
    pub compute_s: f64,
    /// Time the Bluetooth radio is transferring.
    pub bluetooth_s: f64,
}

impl PhaseDurations {
    /// Total wall-clock lower bound if all phases were sequential.
    pub fn total_s(&self) -> f64 {
        self.playback_s + self.recording_s + self.compute_s + self.bluetooth_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> PhaseDurations {
        // One ACTION run: 93 ms playback, ~2.4 s recording, ~1.5 s compute,
        // ~0.6 s of BT transfers (signals + report).
        PhaseDurations {
            playback_s: 0.093,
            recording_s: 2.4,
            compute_s: 1.5,
            bluetooth_s: 0.6,
        }
    }

    #[test]
    fn energy_is_sum_of_components() {
        let m = EnergyModel::galaxy_s4();
        let d = typical();
        let expected = 0.45 * 0.093 + 0.35 * 2.4 + 1.00 * 1.5 + 0.10 * 0.6;
        assert!((m.energy_per_auth_j(&d) - expected).abs() < 1e-12);
    }

    #[test]
    fn hundred_auths_cost_fraction_of_percent() {
        // The headline Sec. VI-D number: ≈0.6 % per 100 authentications.
        let m = EnergyModel::galaxy_s4();
        let pct = m.battery_percent(&typical(), 100);
        assert!(pct > 0.3 && pct < 1.0, "battery percent {pct}");
    }

    #[test]
    fn battery_percent_scales_linearly() {
        let m = EnergyModel::galaxy_s4();
        let d = typical();
        let one = m.battery_percent(&d, 1);
        let hundred = m.battery_percent(&d, 100);
        assert!((hundred - 100.0 * one).abs() < 1e-9);
    }

    #[test]
    fn zero_durations_zero_energy() {
        let m = EnergyModel::galaxy_s4();
        assert_eq!(m.energy_per_auth_j(&PhaseDurations::default()), 0.0);
        assert_eq!(m.battery_percent(&PhaseDurations::default(), 1000), 0.0);
    }

    #[test]
    fn total_sums_phases() {
        let d = typical();
        assert!((d.total_s() - (0.093 + 2.4 + 1.5 + 0.6)).abs() < 1e-12);
    }
}
