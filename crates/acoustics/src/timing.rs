//! Wall-clock timing model for one authentication.
//!
//! Sec. VI-D: "one authentication can be finished within around 3 seconds"
//! on the Galaxy S4 prototype. The duration decomposes into Bluetooth round
//! trips, the shared recording window (which must cover both playback slots
//! plus propagation), and the detection compute. This module reconstructs
//! that budget from an operation-count cost model so the efficiency
//! experiment (E8) reports a breakdown rather than a single asserted
//! number.

use serde::{Deserialize, Serialize};

use crate::energy::PhaseDurations;

/// Cost model for an S4-class device running the ACTION pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Seconds per 4096-point FFT (including spectrum bookkeeping) on the
    /// device CPU. S4-class Java/NDK implementations land near 0.8 ms.
    pub fft_4096_s: f64,
    /// One-way Bluetooth message latency (seconds).
    pub bluetooth_latency_s: f64,
    /// Bluetooth throughput for payload transfer (bytes/second).
    pub bluetooth_bytes_per_s: f64,
    /// Fixed protocol overhead: API calls, audio pipeline spin-up…
    pub fixed_overhead_s: f64,
}

impl TimingModel {
    /// Galaxy-S4-class defaults.
    pub fn galaxy_s4() -> Self {
        TimingModel {
            fft_4096_s: 0.7e-3,
            bluetooth_latency_s: 0.035,
            bluetooth_bytes_per_s: 120_000.0,
            fixed_overhead_s: 0.20,
        }
    }

    /// Predicted breakdown of one authentication.
    ///
    /// * `recording_s` — length of the shared recording window.
    /// * `playback_s` — reference-signal duration (93 ms in the paper).
    /// * `fft_count` — total FFTs executed by the device's detection scan.
    /// * `bluetooth_payload_bytes` — bytes exchanged (two reference
    ///   signals, the time-difference report, control messages).
    /// * `bluetooth_messages` — number of one-way messages exchanged.
    pub fn phase_durations(
        &self,
        recording_s: f64,
        playback_s: f64,
        fft_count: usize,
        bluetooth_payload_bytes: usize,
        bluetooth_messages: usize,
    ) -> PhaseDurations {
        let bluetooth_s = self.bluetooth_latency_s * bluetooth_messages as f64
            + bluetooth_payload_bytes as f64 / self.bluetooth_bytes_per_s;
        PhaseDurations {
            playback_s,
            recording_s,
            compute_s: self.fft_4096_s * fft_count as f64 + self.fixed_overhead_s,
            bluetooth_s,
        }
    }

    /// Total latency of one authentication: recording and Bluetooth overlap
    /// with nothing, compute follows the recording; playback overlaps the
    /// recording window and contributes no extra wall time.
    pub fn total_latency_s(&self, durations: &PhaseDurations) -> f64 {
        durations.bluetooth_s + durations.recording_s + durations.compute_s
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::galaxy_s4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FFT count for the paper's adapted two-stage scan over a 2.4 s
    /// recording: coarse step 1000 over ~106 k samples (~102 windows) plus
    /// a ±1000-sample fine scan at step 10 (~200 windows), for both
    /// reference signals detected in one pass ⇒ ~300 FFTs per device.
    const TYPICAL_FFTS: usize = 320;

    #[test]
    fn authentication_finishes_within_about_three_seconds() {
        let m = TimingModel::galaxy_s4();
        // 2 signals × 4096 samples × 2 bytes ≈ 16 KiB signal payload plus
        // a small report; 6 one-way messages.
        let d = m.phase_durations(2.4, 0.093, TYPICAL_FFTS, 17_000, 6);
        let total = m.total_latency_s(&d);
        assert!(total < 3.2, "total {total} s exceeds the paper's ≈3 s");
        assert!(
            total > 2.0,
            "total {total} s suspiciously fast for a 2.4 s recording"
        );
    }

    #[test]
    fn compute_scales_with_fft_count() {
        let m = TimingModel::galaxy_s4();
        let few = m.phase_durations(2.4, 0.093, 100, 0, 0);
        let many = m.phase_durations(2.4, 0.093, 1000, 0, 0);
        assert!(many.compute_s > few.compute_s);
        assert!((many.compute_s - few.compute_s - 900.0 * m.fft_4096_s).abs() < 1e-9);
    }

    #[test]
    fn bluetooth_time_includes_latency_and_throughput() {
        let m = TimingModel::galaxy_s4();
        let d = m.phase_durations(0.0, 0.0, 0, 120_000, 2);
        assert!((d.bluetooth_s - (2.0 * 0.035 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn recording_dominates_the_budget() {
        // The paper's ≈3 s is mostly the listening window, not compute —
        // the model should reflect that structure.
        let m = TimingModel::galaxy_s4();
        let d = m.phase_durations(2.4, 0.093, TYPICAL_FFTS, 17_000, 6);
        assert!(d.recording_s > d.compute_s);
        assert!(d.recording_s > d.bluetooth_s);
    }
}
