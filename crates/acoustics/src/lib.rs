//! # piano-acoustics
//!
//! Simulated acoustic substrate for the PIANO reproduction (Gong et al.,
//! ICDCS 2017).
//!
//! The paper's testbed is two Samsung Galaxy S4 smartphones exchanging
//! near-ultrasonic reference signals through real air in real rooms. This
//! crate replaces that physical layer with a deterministic, seedable
//! simulation that preserves every mechanism the paper's evaluation depends
//! on:
//!
//! * **Propagation** ([`field`]): speed-of-sound delay with sub-sample
//!   precision (1 sample ≈ 0.78 cm at 44.1 kHz), spherical spreading,
//!   frequency-dependent air absorption ([`absorption`]), wall transmission
//!   loss ([`geometry`]), and randomized early reflections.
//! * **Hardware** ([`hardware`]): speaker/microphone frequency-response
//!   ripple and phase dispersion (the *frequency smoothing* that defeats
//!   cross-correlation in the paper's Fig. 2b), transducer gains, and 16-bit
//!   ADC quantization.
//! * **Clocks and latency** ([`clock`], [`latency`]): independent per-device
//!   sample clocks with ppm-scale skew, plus the unpredictable audio-stack
//!   scheduling latency that ruins the Echo baseline while leaving ACTION's
//!   in-recording time differences intact.
//! * **Environments** ([`environment`], [`noise`]): office / home / street /
//!   restaurant noise profiles, concentrated below 6 kHz as the paper
//!   measured, with an environment-scaled broadband tail that sets the
//!   ranging jitter ordering of Fig. 1.
//! * **Cost models** ([`energy`], [`timing`]): component-level energy and
//!   wall-clock models reproducing Sec. VI-D (≈3 s and ≈0.6 % battery per
//!   100 authentications).
//!
//! Everything stochastic flows from explicit `rand_chacha` seeds, so every
//! experiment in the reproduction is replayable bit-for-bit.

#![forbid(unsafe_code)]

pub mod absorption;
pub mod buffer;
pub mod clock;
pub mod energy;
pub mod environment;
pub mod field;
pub mod geometry;
pub mod hardware;
pub mod latency;
pub mod noise;
pub mod timing;

pub use buffer::AudioBuffer;
pub use clock::DeviceClock;
pub use environment::Environment;
pub use field::{AcousticField, Emission};
pub use geometry::{Position, Wall};
pub use hardware::{MicrophoneModel, SpeakerModel};

/// Nominal sampling rate used throughout the reproduction (Hz).
///
/// The paper sets both phones to 44.1 kHz, "the largest sampling frequency
/// supported by the Android system".
pub const NOMINAL_SAMPLE_RATE: f64 = 44_100.0;

/// Speed of sound in air (m/s) at a given temperature in °C.
///
/// Linear approximation `331.3 + 0.606·T`; at 20 °C this gives 343.4 m/s,
/// matching the paper's "around 340 m/s".
pub fn speed_of_sound(temperature_c: f64) -> f64 {
    331.3 + 0.606 * temperature_c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_of_sound_near_340() {
        assert!((speed_of_sound(20.0) - 343.42).abs() < 0.01);
        assert!(speed_of_sound(0.0) > 330.0 && speed_of_sound(0.0) < 332.0);
    }
}
