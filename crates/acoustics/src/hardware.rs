//! Speaker and microphone models.
//!
//! Two hardware effects carry the paper's story:
//!
//! 1. **Attenuation** — "reference signals are often attenuated by
//!    hardware"; Algorithm 2's α parameter exists to absorb it. Transducer
//!    gains here (default 0.5 each) combine with spreading loss so that a
//!    reference signal retains ≈1 % of its power at 2.5 m, which is where
//!    the paper's prototype stops detecting signals (d_s ≈ 2.5 m).
//! 2. **Frequency smoothing / waveform distortion** — after a signal is
//!    played and recorded "its recorded version becomes S′, which is
//!    significantly different from S" (Sec. IV-C). Cheap phone transducers
//!    near their resonance have strongly frequency-dependent gain *and
//!    phase*. [`FrequencyResponse`] models both as smooth random curves,
//!    fixed per device (seeded), decorrelating over a few hundred Hz — so
//!    tones 333 Hz apart acquire essentially independent phase shifts. That
//!    preserves per-bin *power* (ACTION survives) while scrambling the time
//!    waveform (cross-correlation fails), exactly the Fig. 2b contrast.

use piano_dsp::filter::apply_transfer_function;
use piano_dsp::Complex64;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::absorption::fold_to_physical;
use crate::buffer::I16_FULL_SCALE;

/// A smooth random frequency response: gain ripple (dB) and phase dispersion
/// (radians), both varying over a configurable correlation bandwidth.
///
/// The response is deterministic given the seed, modeling a fixed physical
/// device. Gain and phase are independent sums of `K` random-phase cosines
/// in frequency, giving curves that are smooth but decorrelate over roughly
/// `correlation_hz`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrequencyResponse {
    gain_components: Vec<ResponseComponent>,
    phase_components: Vec<ResponseComponent>,
    /// Peak-ish gain ripple amplitude in dB.
    ripple_db: f64,
    /// Peak-ish phase dispersion amplitude in radians.
    dispersion_rad: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct ResponseComponent {
    period_hz: f64,
    phase: f64,
    weight: f64,
}

impl FrequencyResponse {
    /// Number of cosine components per curve.
    const COMPONENTS: usize = 24;

    /// Builds a random response curve.
    ///
    /// * `ripple_db` — RMS-scale gain ripple in dB (typical phone
    ///   transducer in the 9–19 kHz band: 3–6 dB).
    /// * `dispersion_rad` — RMS-scale phase dispersion in radians. Around
    ///   1 rad of tone-to-tone phase scrambling suppresses the central
    ///   cross-correlation lobe below its ±3 ms neighbours (the paper's
    ///   "frequency smoothing"), while keeping transducer group-delay
    ///   ripple at the realistic sub-millisecond scale.
    /// * `correlation_hz` — bandwidth over which the curves decorrelate.
    pub fn random(ripple_db: f64, dispersion_rad: f64, correlation_hz: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let gen_components = |rng: &mut ChaCha8Rng| {
            (0..Self::COMPONENTS)
                .map(|_| {
                    // Periods log-uniform in [correlation, 16·correlation]:
                    // structure at and above the correlation scale.
                    let log_span = rng.gen_range(0.0..1.0) * (16.0f64).ln();
                    ResponseComponent {
                        period_hz: correlation_hz * log_span.exp(),
                        phase: rng.gen_range(0.0..std::f64::consts::TAU),
                        weight: rng.gen_range(0.5..1.0),
                    }
                })
                .collect::<Vec<_>>()
        };
        let gain_components = gen_components(&mut rng);
        let phase_components = gen_components(&mut rng);
        FrequencyResponse {
            gain_components,
            phase_components,
            ripple_db,
            dispersion_rad,
        }
    }

    /// A perfectly flat response (unity gain, zero phase).
    pub fn flat() -> Self {
        FrequencyResponse {
            gain_components: Vec::new(),
            phase_components: Vec::new(),
            ripple_db: 0.0,
            dispersion_rad: 0.0,
        }
    }

    fn curve(components: &[ResponseComponent], f_hz: f64) -> f64 {
        if components.is_empty() {
            return 0.0;
        }
        let norm = (components.iter().map(|c| c.weight * c.weight).sum::<f64>() / 2.0).sqrt();
        components
            .iter()
            .map(|c| c.weight * (std::f64::consts::TAU * f_hz / c.period_hz + c.phase).cos())
            .sum::<f64>()
            / norm.max(1e-12)
    }

    /// Gain ripple in dB at a physical frequency.
    pub fn gain_db(&self, f_hz: f64) -> f64 {
        self.ripple_db * Self::curve(&self.gain_components, f_hz)
    }

    /// Phase shift in radians at a physical frequency.
    pub fn phase_rad(&self, f_hz: f64) -> f64 {
        self.dispersion_rad * Self::curve(&self.phase_components, f_hz)
    }

    /// Complex transfer value at a physical frequency.
    pub fn transfer(&self, f_hz: f64) -> Complex64 {
        Complex64::from_polar(
            piano_dsp::db::db_to_amplitude(self.gain_db(f_hz)),
            self.phase_rad(f_hz),
        )
    }
}

/// A loudspeaker model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeakerModel {
    /// Broadband amplitude efficiency (dimensionless; the fraction of
    /// commanded amplitude radiated at 1 m equivalent).
    pub efficiency: f64,
    /// Frequency response of the driver.
    pub response: FrequencyResponse,
    /// Onset/offset ramp applied by the audio pipeline, in samples.
    pub fade_samples: usize,
}

impl SpeakerModel {
    /// A phone-class speaker with a seeded random response.
    pub fn phone(seed: u64) -> Self {
        SpeakerModel {
            efficiency: 0.575,
            response: FrequencyResponse::random(0.7, 0.9, 700.0, seed),
            fade_samples: 64,
        }
    }

    /// An ideal speaker: unity efficiency, flat response, no ramp.
    pub fn ideal() -> Self {
        SpeakerModel {
            efficiency: 1.0,
            response: FrequencyResponse::flat(),
            fade_samples: 0,
        }
    }

    /// Renders the waveform the speaker actually radiates for a commanded
    /// digital signal: fade ramps, efficiency, and frequency response
    /// (evaluated at the folded physical frequency of each FFT bin).
    pub fn radiate(&self, commanded: &[f64], sample_rate: f64) -> Vec<f64> {
        if commanded.is_empty() {
            return Vec::new();
        }
        let mut signal = commanded.to_vec();
        piano_dsp::window::apply_fade(&mut signal, self.fade_samples);
        let eff = self.efficiency;
        let resp = &self.response;
        apply_transfer_function(&signal, sample_rate, |f| {
            let phys = fold_to_physical(f, sample_rate);
            resp.transfer(phys).scale(eff)
        })
    }
}

/// A microphone + ADC model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MicrophoneModel {
    /// Broadband amplitude sensitivity (dimensionless).
    pub sensitivity: f64,
    /// Frequency response of the capsule.
    pub response: FrequencyResponse,
    /// Whether to quantize to 16-bit integers (true for realistic devices).
    pub quantize: bool,
}

impl MicrophoneModel {
    /// A phone-class microphone with a seeded random response.
    pub fn phone(seed: u64) -> Self {
        MicrophoneModel {
            sensitivity: 0.575,
            response: FrequencyResponse::random(0.5, 0.7, 700.0, seed),
            quantize: true,
        }
    }

    /// An ideal microphone: unity sensitivity, flat, unquantized.
    pub fn ideal() -> Self {
        MicrophoneModel {
            sensitivity: 1.0,
            response: FrequencyResponse::flat(),
            quantize: false,
        }
    }

    /// Converts air pressure samples at the capsule into recorded samples:
    /// sensitivity, frequency response, and optional 16-bit quantization.
    pub fn transduce(&self, air: Vec<f64>, sample_rate: f64) -> Vec<f64> {
        if air.is_empty() {
            return air;
        }
        let sens = self.sensitivity;
        let resp = &self.response;
        let mut out = apply_transfer_function(&air, sample_rate, |f| {
            let phys = fold_to_physical(f, sample_rate);
            resp.transfer(phys).scale(sens)
        });
        if self.quantize {
            for s in &mut out {
                *s = s.round().clamp(-I16_FULL_SCALE, I16_FULL_SCALE);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_dsp::spectrum::{band_power, freq_to_bin, power_spectrum};
    use piano_dsp::tone;

    const FS: f64 = 44_100.0;

    #[test]
    fn flat_response_is_identity() {
        let r = FrequencyResponse::flat();
        assert_eq!(r.gain_db(12_345.0), 0.0);
        assert_eq!(r.phase_rad(9_999.0), 0.0);
        assert!((r.transfer(5_000.0) - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn response_is_deterministic_per_seed() {
        let a = FrequencyResponse::random(4.0, 2.0, 400.0, 7);
        let b = FrequencyResponse::random(4.0, 2.0, 400.0, 7);
        let c = FrequencyResponse::random(4.0, 2.0, 400.0, 8);
        assert_eq!(a.gain_db(10_000.0), b.gain_db(10_000.0));
        assert_ne!(a.gain_db(10_000.0), c.gain_db(10_000.0));
    }

    #[test]
    fn ripple_magnitude_is_bounded() {
        let r = FrequencyResponse::random(1.5, 2.0, 400.0, 3);
        let mut max_gain: f64 = 0.0;
        for k in 0..500 {
            let f = 9_000.0 + k as f64 * 20.0;
            max_gain = max_gain.max(r.gain_db(f).abs());
        }
        // Sum of 24 cosines normalized to unit RMS: excursions stay within
        // a few sigma of the nominal 1.5 dB ripple.
        assert!(max_gain < 4.0 * 1.5, "max ripple {max_gain} dB");
        assert!(max_gain > 0.5, "response suspiciously flat: {max_gain} dB");
    }

    #[test]
    fn phases_decorrelate_across_candidate_spacing() {
        // Candidates are ~333 Hz apart; phases of adjacent candidates must
        // differ substantially for the Fig. 2b mechanism to exist.
        let r = FrequencyResponse::random(4.0, 2.2, 400.0, 11);
        let mut distinct = 0;
        for k in 0..29 {
            let f = 9_100.0 + k as f64 * 333.0;
            let dp = (r.phase_rad(f) - r.phase_rad(f + 333.0)).abs();
            if dp > 0.5 {
                distinct += 1;
            }
        }
        assert!(
            distinct > 10,
            "only {distinct}/29 adjacent pairs decorrelated"
        );
    }

    #[test]
    fn ideal_speaker_radiates_input() {
        let sig = tone::sine(14_000.0, 0.0, 100.0, FS, 1024);
        let out = SpeakerModel::ideal().radiate(&sig, FS);
        for (a, b) in out.iter().zip(&sig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn phone_speaker_preserves_band_power_roughly() {
        // Gain ripple is a few dB: power at the tone's bin cluster should
        // be within ~±8 dB of the ideal, never wiped out.
        let amp = 1_000.0;
        let sig = tone::sine(30_000.0, 0.0, amp, FS, 4096);
        let spk = SpeakerModel::phone(5);
        let out = spk.radiate(&sig, FS);
        let ps = power_spectrum(&out);
        let p = band_power(&ps, freq_to_bin(30_000.0, FS, 4096), 5);
        let nominal = (amp * spk.efficiency).powi(2);
        assert!(
            p > nominal / 8.0 && p < nominal * 8.0,
            "band power {p} vs nominal {nominal}"
        );
    }

    #[test]
    fn phone_speaker_scrambles_waveform_but_not_spectrum() {
        // The frequency-smoothing effect: radiated waveform correlates
        // poorly with the commanded one even though band power survives.
        let tones: Vec<tone::ToneSpec> = (0..8)
            .map(|k| tone::ToneSpec::new(25_300.0 + 1_200.0 * k as f64, 100.0))
            .collect();
        let sig = tone::multi_tone(&tones, FS, 4096);
        let out = SpeakerModel::phone(9).radiate(&sig, FS);
        // Normalized zero-lag correlation between commanded and radiated.
        let dot: f64 = sig.iter().zip(&out).map(|(a, b)| a * b).sum();
        let na: f64 = sig.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = out.iter().map(|b| b * b).sum::<f64>().sqrt();
        let corr = (dot / (na * nb)).abs();
        assert!(
            corr < 0.8,
            "waveform correlation {corr} too high for dispersion to matter"
        );
    }

    #[test]
    fn mic_quantizes_to_integers() {
        let air = vec![0.4; 256];
        let mic = MicrophoneModel {
            quantize: true,
            ..MicrophoneModel::ideal()
        };
        let out = mic.transduce(air, FS);
        assert!(out.iter().all(|s| s.fract() == 0.0));
    }

    #[test]
    fn mic_clamps_to_full_scale() {
        let air = vec![1e6; 64];
        let mic = MicrophoneModel {
            quantize: true,
            ..MicrophoneModel::ideal()
        };
        let out = mic.transduce(air, FS);
        assert!(out.iter().all(|&s| s == I16_FULL_SCALE));
    }

    #[test]
    fn empty_signals_pass_through() {
        assert!(SpeakerModel::phone(1).radiate(&[], FS).is_empty());
        assert!(MicrophoneModel::phone(1)
            .transduce(Vec::new(), FS)
            .is_empty());
    }
}
