//! Positions and walls.
//!
//! The paper's security argument leans on acoustic signals *not* passing
//! through walls (Sec. II and the "separated by a wall" experiment in
//! Sec. VI-B): radio-based ranging fails exactly because radio does. Walls
//! here are infinite axis-aligned planes with a transmission loss; a
//! propagation path is attenuated by every wall it crosses.

use serde::{Deserialize, Serialize};

/// A point in 3-D space, in meters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
    /// Z coordinate (m).
    pub z: f64,
}

impl Position {
    /// Creates a position from coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// The origin.
    pub const ORIGIN: Position = Position::new(0.0, 0.0, 0.0);

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// A position displaced along the x axis — convenient for the paper's
    /// experiments, which place two devices `d` meters apart.
    #[must_use]
    pub fn along_x(&self, dx: f64) -> Position {
        Position::new(self.x + dx, self.y, self.z)
    }
}

/// Axis along which a wall plane is defined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Plane of constant x.
    X,
    /// Plane of constant y.
    Y,
    /// Plane of constant z.
    Z,
}

/// An infinite axis-aligned wall with a transmission loss.
///
/// The default 45 dB transmission loss models a typical interior wall at
/// the reproduction's 9–19 kHz physical signal band (sound-transmission
/// class rises steeply with frequency); it pushes a reference signal far
/// below ACTION's 1 % presence threshold, reproducing the paper's
/// observation that a wall between the devices causes denial.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// Axis perpendicular to the wall plane.
    pub axis: Axis,
    /// Coordinate of the plane along that axis (m).
    pub coordinate: f64,
    /// Transmission loss in dB applied to paths crossing the wall
    /// (amplitude gain `10^(-dB/20)`).
    pub attenuation_db: f64,
}

impl Wall {
    /// A wall plane `x = coordinate` with the default 45 dB loss.
    pub fn at_x(coordinate: f64) -> Self {
        Wall {
            axis: Axis::X,
            coordinate,
            attenuation_db: 45.0,
        }
    }

    /// Sets the attenuation, returning the modified wall.
    #[must_use]
    pub fn with_attenuation_db(mut self, db: f64) -> Self {
        self.attenuation_db = db;
        self
    }

    /// Whether the straight path from `a` to `b` crosses this wall.
    ///
    /// Points exactly on the plane are treated as on the side they came
    /// from; a degenerate path lying in the plane does not cross.
    pub fn blocks(&self, a: &Position, b: &Position) -> bool {
        let (pa, pb) = match self.axis {
            Axis::X => (a.x, b.x),
            Axis::Y => (a.y, b.y),
            Axis::Z => (a.z, b.z),
        };
        (pa - self.coordinate) * (pb - self.coordinate) < 0.0
    }

    /// Linear amplitude gain for a path crossing this wall.
    pub fn amplitude_gain(&self) -> f64 {
        piano_dsp::db::db_to_amplitude(-self.attenuation_db)
    }
}

/// Total amplitude gain from all walls crossed by the path `a → b`.
pub fn wall_gain(walls: &[Wall], a: &Position, b: &Position) -> f64 {
    walls
        .iter()
        .filter(|w| w.blocks(a, b))
        .map(Wall::amplitude_gain)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn along_x_displaces() {
        let p = Position::ORIGIN.along_x(1.5);
        assert_eq!(p, Position::new(1.5, 0.0, 0.0));
    }

    #[test]
    fn wall_blocks_only_crossing_paths() {
        let w = Wall::at_x(1.0);
        let left = Position::new(0.0, 0.0, 0.0);
        let right = Position::new(2.0, 0.0, 0.0);
        let also_left = Position::new(0.5, 3.0, -1.0);
        assert!(w.blocks(&left, &right));
        assert!(w.blocks(&right, &left));
        assert!(!w.blocks(&left, &also_left));
    }

    #[test]
    fn point_on_plane_does_not_cross() {
        let w = Wall::at_x(1.0);
        let on = Position::new(1.0, 0.0, 0.0);
        let left = Position::new(0.0, 0.0, 0.0);
        assert!(!w.blocks(&on, &left));
    }

    #[test]
    fn wall_gain_multiplies_crossed_walls() {
        let walls = vec![
            Wall::at_x(1.0).with_attenuation_db(20.0),
            Wall::at_x(2.0).with_attenuation_db(20.0),
            Wall {
                axis: Axis::Y,
                coordinate: 5.0,
                attenuation_db: 20.0,
            },
        ];
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 0.0, 0.0);
        // Crosses the two x walls (−40 dB total) but not the y wall.
        assert!((wall_gain(&walls, &a, &b) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn no_walls_means_unity_gain() {
        assert_eq!(
            wall_gain(&[], &Position::ORIGIN, &Position::new(1.0, 0.0, 0.0)),
            1.0
        );
    }

    #[test]
    fn default_wall_attenuates_enough_to_deny() {
        // 45 dB ⇒ power ×10⁻⁴·⁵: far below ACTION's 1 % presence threshold
        // even at point-blank range.
        let gain = Wall::at_x(0.0).amplitude_gain();
        assert!(gain * gain < 1e-4);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric_and_nonnegative(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
        ) {
            let a = Position::new(ax, ay, az);
            let b = Position::new(bx, by, bz);
            prop_assert!(a.distance_to(&b) >= 0.0);
            prop_assert!((a.distance_to(&b) - b.distance_to(&a)).abs() < 1e-12);
        }

        #[test]
        fn triangle_inequality(
            ax in -5.0f64..5.0, bx in -5.0f64..5.0, cx in -5.0f64..5.0,
            ay in -5.0f64..5.0, by in -5.0f64..5.0, cy in -5.0f64..5.0,
        ) {
            let a = Position::new(ax, ay, 0.0);
            let b = Position::new(bx, by, 0.0);
            let c = Position::new(cx, cy, 0.0);
            prop_assert!(a.distance_to(&c) <= a.distance_to(&b) + b.distance_to(&c) + 1e-9);
        }
    }
}
