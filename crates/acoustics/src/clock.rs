//! Per-device clocks.
//!
//! The paper's central measurement trick (Eq. 3, adopted from BeepBeep) is
//! that each device only ever computes *differences of sample locations
//! inside its own recording*, so the two devices' clocks never need to be
//! synchronized. To honor that, the simulator gives every device its own
//! clock with a random offset (seconds to minutes of disagreement) and a
//! crystal skew measured in parts per million — and the reproduction's
//! tests verify that ACTION's accuracy is unaffected while naive one-way
//! timestamping (Eq. 1/2) would be wrecked.

use serde::{Deserialize, Serialize};

/// A device-local clock related to world time by an offset and a rate skew.
///
/// Local time is `(world − offset) · (1 + skew)`: the device's crystal runs
/// `skew_ppm` parts per million fast (positive) or slow (negative), and the
/// device booted at world time `offset_s`.
///
/// # Example
///
/// ```
/// use piano_acoustics::DeviceClock;
///
/// let clock = DeviceClock::new(100.0, 50.0); // booted at t=100s, +50 ppm
/// let w = 160.0;
/// let l = clock.world_to_local(w);
/// assert!((clock.local_to_world(l) - w).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceClock {
    offset_s: f64,
    skew_ppm: f64,
}

impl DeviceClock {
    /// Creates a clock with the given world-time offset and skew in ppm.
    pub fn new(offset_s: f64, skew_ppm: f64) -> Self {
        DeviceClock { offset_s, skew_ppm }
    }

    /// An ideal clock: zero offset, zero skew.
    pub fn ideal() -> Self {
        DeviceClock::new(0.0, 0.0)
    }

    /// Crystal skew in parts per million.
    pub fn skew_ppm(&self) -> f64 {
        self.skew_ppm
    }

    /// World-time offset in seconds.
    pub fn offset_s(&self) -> f64 {
        self.offset_s
    }

    /// Rate multiplier `1 + skew`.
    #[inline]
    pub fn rate(&self) -> f64 {
        1.0 + self.skew_ppm * 1e-6
    }

    /// Converts a world time to this device's local time.
    #[inline]
    pub fn world_to_local(&self, world_s: f64) -> f64 {
        (world_s - self.offset_s) * self.rate()
    }

    /// Converts a local time to world time.
    #[inline]
    pub fn local_to_world(&self, local_s: f64) -> f64 {
        local_s / self.rate() + self.offset_s
    }

    /// World-time duration of one sample period at a nominal rate, as
    /// produced by this device's ADC/DAC: `1 / (f_s · (1 + skew))`.
    #[inline]
    pub fn sample_interval_world(&self, nominal_rate_hz: f64) -> f64 {
        1.0 / (nominal_rate_hz * self.rate())
    }
}

impl Default for DeviceClock {
    fn default() -> Self {
        DeviceClock::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ideal_clock_is_identity() {
        let c = DeviceClock::ideal();
        assert_eq!(c.world_to_local(5.0), 5.0);
        assert_eq!(c.local_to_world(5.0), 5.0);
        assert_eq!(c.rate(), 1.0);
    }

    #[test]
    fn positive_skew_runs_fast() {
        let c = DeviceClock::new(0.0, 100.0);
        // After 1 world second the local clock shows slightly more.
        assert!(c.world_to_local(1.0) > 1.0);
        assert!((c.world_to_local(1.0) - 1.0001).abs() < 1e-9);
    }

    #[test]
    fn offset_shifts_epoch() {
        let c = DeviceClock::new(10.0, 0.0);
        assert_eq!(c.world_to_local(10.0), 0.0);
        assert_eq!(c.local_to_world(0.0), 10.0);
    }

    #[test]
    fn sample_interval_reflects_skew() {
        let fast = DeviceClock::new(0.0, 1000.0); // +1000 ppm
        let slow = DeviceClock::new(0.0, -1000.0);
        let nominal = 1.0 / 44_100.0;
        assert!(fast.sample_interval_world(44_100.0) < nominal);
        assert!(slow.sample_interval_world(44_100.0) > nominal);
    }

    #[test]
    fn two_clocks_disagree_but_are_internally_consistent() {
        // The situation ACTION must survive: two devices with wildly
        // different epochs measuring the same world-time interval.
        let a = DeviceClock::new(1_000.0, 30.0);
        let v = DeviceClock::new(-500.0, -70.0);
        let t0 = 2_000.0;
        let t1 = 2_000.5;
        let da = a.world_to_local(t1) - a.world_to_local(t0);
        let dv = v.world_to_local(t1) - v.world_to_local(t0);
        // Intervals agree to within the 100 ppm skew difference …
        assert!((da - dv).abs() < 0.5 * 200e-6);
        // … while absolute timestamps disagree by ~1500 s.
        assert!((a.world_to_local(t0) - v.world_to_local(t0)).abs() > 1_000.0);
    }

    proptest! {
        #[test]
        fn roundtrip(
            offset in -1e4f64..1e4,
            skew in -200.0f64..200.0,
            t in -1e4f64..1e4,
        ) {
            let c = DeviceClock::new(offset, skew);
            prop_assert!((c.local_to_world(c.world_to_local(t)) - t).abs() < 1e-6);
        }
    }
}
