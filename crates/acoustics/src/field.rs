//! The acoustic field: propagation and recording rendering.
//!
//! [`AcousticField`] is the stand-in for "air" in the reproduction. Devices
//! register [`Emission`]s (a radiated waveform at a position and world
//! time); microphones render recordings of everything audible at their
//! position. Rendering applies, per propagation path:
//!
//! * speed-of-sound delay with **sub-sample precision** (the paper's
//!   centimeter errors are fractions of the 0.78 cm sample distance);
//! * spherical spreading `1/d` (pressure), the dominant attenuation that —
//!   together with transducer gains — yields the paper's ≈2.5 m maximum
//!   ranging distance;
//! * frequency-dependent air absorption;
//! * wall transmission loss for paths crossing registered [`Wall`]s (the
//!   "separated by a wall ⇒ denial" experiment);
//! * randomized early reflections per the environment's
//!   [`ReflectionSpec`](crate::environment::ReflectionSpec);
//! * sample-clock conversion between the emitter's and recorder's skewed
//!   clocks;
//! * environment background noise, then microphone transduction (response +
//!   16-bit quantization).

use piano_dsp::filter::apply_transfer_function;
use piano_dsp::resample::FractionalDelayReader;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::absorption::{absorption_gain, fold_to_physical};
use crate::buffer::AudioBuffer;
use crate::clock::DeviceClock;
use crate::environment::Environment;
use crate::geometry::{wall_gain, Position, Wall};
use crate::hardware::MicrophoneModel;

/// Closest approach used for the spreading law, in meters.
///
/// Two jobs: it keeps the `1/d` far-field law from diverging as a path
/// length approaches zero, and it models the near-field/body-shadowing
/// attenuation of a device hearing its *own* speaker — real phones couple
/// speaker to microphone at roughly the level of a 25 cm free-air path.
/// (If self-coupling were modeled at full point-blank level, its spectral
/// sidelobe leakage would trip Algorithm 2's β sanity check — a failure
/// mode real prototypes avoid exactly because of this coupling loss.)
pub const MIN_SPREADING_DISTANCE_M: f64 = 0.25;

/// Equivalent free-air path length for a device hearing its *own* speaker,
/// in meters.
///
/// Phone speaker→own-microphone coupling is heavily attenuated (off-axis
/// placement, body shadowing); measurements on commodity phones put it near
/// the level of a half-meter free-air path. Modeling it faithfully matters:
/// if self-coupling were near-field loud, the self-heard reference signal's
/// rectangular-window sidelobe splatter would hover at Algorithm 2's β
/// ceiling and fragment the detector's passing region — a failure mode the
/// paper's prototype visibly does not have.
pub const SELF_COUPLING_DISTANCE_M: f64 = 0.6;

/// A radiated waveform at a position and time.
///
/// The waveform must already include speaker effects (see
/// [`SpeakerModel::radiate`](crate::hardware::SpeakerModel::radiate));
/// the field applies only propagation.
#[derive(Clone, Debug)]
pub struct Emission {
    /// Radiated samples, in sample units referenced to 1 m.
    pub waveform: Vec<f64>,
    /// World time at which sample 0 leaves the speaker (seconds).
    pub start_world_s: f64,
    /// World-time spacing between consecutive waveform samples (seconds) —
    /// `clock.sample_interval_world(nominal_rate)` of the emitting device.
    pub sample_interval_s: f64,
    /// Speaker position.
    pub position: Position,
}

/// The shared acoustic medium for one simulated scenario.
#[derive(Debug)]
pub struct AcousticField {
    environment: Environment,
    walls: Vec<Wall>,
    emissions: Vec<Emission>,
    rng: ChaCha8Rng,
    /// This trial's relative path-length perturbation, drawn once per
    /// field from the environment's `path_jitter_rel` (clamped to ±25 %).
    placement_factor: f64,
}

impl AcousticField {
    /// Creates a field for an environment, seeding all stochastic physics
    /// (noise, reflections) from `seed`.
    pub fn new(environment: Environment, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Box–Muller: one Gaussian draw for this trial's geometry jitter,
        // clamped so pathological draws cannot push a path into the near
        // field (where the 1/d law and the β leakage budget break down).
        let placement_factor = if environment.path_jitter_rel > 0.0 {
            let u1: f64 = rand::Rng::gen_range(&mut rng, 1e-12..1.0);
            let u2: f64 = rand::Rng::gen_range(&mut rng, 0.0..std::f64::consts::TAU);
            let g = environment.path_jitter_rel * (-2.0 * u1.ln()).sqrt() * u2.cos();
            1.0 + g.clamp(-0.25, 0.25)
        } else {
            1.0
        };
        AcousticField {
            environment,
            walls: Vec::new(),
            emissions: Vec::new(),
            rng,
            placement_factor,
        }
    }

    /// This trial's relative path-length perturbation (diagnostics); `1.0`
    /// means the nominal geometry.
    pub fn placement_factor(&self) -> f64 {
        self.placement_factor
    }

    /// The environment this field simulates.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// Speed of sound in this environment (m/s).
    pub fn speed_of_sound(&self) -> f64 {
        self.environment.speed_of_sound()
    }

    /// Registers a wall.
    pub fn add_wall(&mut self, wall: Wall) {
        self.walls.push(wall);
    }

    /// Registers an emission.
    ///
    /// # Panics
    ///
    /// Panics if the emission's sample interval is not strictly positive.
    pub fn emit(&mut self, emission: Emission) {
        assert!(
            emission.sample_interval_s > 0.0,
            "emission sample interval must be positive"
        );
        self.emissions.push(emission);
    }

    /// Number of registered emissions.
    pub fn emission_count(&self) -> usize {
        self.emissions.len()
    }

    /// Removes all emissions (walls stay), e.g. between protocol rounds.
    pub fn clear_emissions(&mut self) {
        self.emissions.clear();
    }

    /// Renders what a microphone records.
    ///
    /// * `mic`, `clock`, `position` — the recording device's capsule, clock
    ///   and location.
    /// * `record_start_world_s` — world time of the first captured sample.
    /// * `len` — number of samples to capture.
    /// * `nominal_rate_hz` — the nominal ADC rate (44.1 kHz in the paper);
    ///   the device's actual rate differs by its clock skew.
    ///
    /// Rendering consumes RNG state (noise, reflections), so render order
    /// matters for bit-exact reproducibility; the protocol layer always
    /// renders in a fixed device order.
    pub fn render_recording(
        &mut self,
        mic: &MicrophoneModel,
        clock: &DeviceClock,
        position: Position,
        record_start_world_s: f64,
        len: usize,
        nominal_rate_hz: f64,
    ) -> AudioBuffer {
        let mut air = vec![0.0; len];
        let recv_interval = clock.sample_interval_world(nominal_rate_hz);
        let c = self.speed_of_sound();

        // The borrow checker would flag `self.rng` use inside a loop over
        // `self.emissions`; clone the RNG handle pattern by splitting.
        let walls = &self.walls;
        let reflections = self.environment.reflections;
        for emission in &self.emissions {
            let nominal_d = emission.position.distance_to(&position);
            // Inter-device paths carry this trial's geometry jitter; a
            // device hearing itself does not (same chassis).
            let d = if nominal_d < 1e-9 {
                nominal_d
            } else {
                nominal_d * self.placement_factor
            };
            let spread = if d < 1e-9 {
                1.0 / SELF_COUPLING_DISTANCE_M
            } else {
                1.0 / d.max(MIN_SPREADING_DISTANCE_M)
            };
            let wgain = wall_gain(walls, &emission.position, &position);
            if wgain * spread < 1e-9 {
                continue; // inaudible; skip the filtering work
            }

            // Air absorption for this path length, evaluated per FFT bin at
            // the folded physical frequency.
            let filtered = apply_transfer_function(&emission.waveform, nominal_rate_hz, |f| {
                piano_dsp::Complex64::from_real(absorption_gain(
                    fold_to_physical(f, nominal_rate_hz),
                    d,
                ))
            });
            let reader = FractionalDelayReader::new(&filtered);

            let step = recv_interval / emission.sample_interval_s;
            let direct_arrival = emission.start_world_s + d / c;
            let start = (record_start_world_s - direct_arrival) / emission.sample_interval_s;
            reader.mix_into(&mut air, start, step, spread * wgain);

            // Early reflections: longer paths, weaker, same filtered source
            // (the small extra air absorption is negligible at room scale).
            for (extra_delay_s, echo_gain) in reflections.sample(&mut self.rng) {
                let echo_start = start - extra_delay_s / emission.sample_interval_s;
                reader.mix_into(&mut air, echo_start, step, spread * wgain * echo_gain);
            }
        }

        // Ambient noise at the capsule.
        let noise = self
            .environment
            .noise
            .render(len, nominal_rate_hz, &mut self.rng);
        for (a, n) in air.iter_mut().zip(&noise) {
            *a += n;
        }

        let recorded = mic.transduce(air, nominal_rate_hz);
        AudioBuffer::new(recorded, nominal_rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::SpeakerModel;
    use crate::NOMINAL_SAMPLE_RATE as FS;
    use piano_dsp::tone;

    fn tone_emission(at: Position, start_world_s: f64, f: f64, amp: f64) -> Emission {
        let wave = tone::sine(f, 0.0, amp, FS, 4096);
        Emission {
            waveform: SpeakerModel::ideal().radiate(&wave, FS),
            start_world_s,
            sample_interval_s: 1.0 / FS,
            position: at,
        }
    }

    fn quiet_field() -> AcousticField {
        AcousticField::new(Environment::anechoic(), 99)
    }

    #[test]
    fn arrival_time_matches_distance() {
        let mut field = quiet_field();
        let d = 2.0;
        field.emit(tone_emission(Position::ORIGIN, 0.10, 14_000.0, 1_000.0));
        let mic = MicrophoneModel::ideal();
        let rec = field.render_recording(
            &mic,
            &DeviceClock::ideal(),
            Position::new(d, 0.0, 0.0),
            0.0,
            (0.5 * FS) as usize,
            FS,
        );
        // First sample with meaningful energy should appear at
        // (0.10 + d/c)·fs samples.
        let c = field.speed_of_sound();
        let expected = ((0.10 + d / c) * FS) as usize;
        let onset = rec
            .samples()
            .iter()
            .position(|&s| s.abs() > 50.0)
            .expect("signal must arrive");
        assert!(
            (onset as isize - expected as isize).abs() < 40,
            "onset {onset} vs expected {expected}"
        );
    }

    #[test]
    fn spreading_halves_amplitude_per_doubled_distance() {
        let measure_at = |d: f64| -> f64 {
            let mut field = quiet_field();
            field.emit(tone_emission(Position::ORIGIN, 0.0, 14_000.0, 10_000.0));
            let rec = field.render_recording(
                &MicrophoneModel::ideal(),
                &DeviceClock::ideal(),
                Position::new(d, 0.0, 0.0),
                0.0,
                (0.3 * FS) as usize,
                FS,
            );
            rec.peak()
        };
        let near = measure_at(1.0);
        let far = measure_at(2.0);
        assert!((near / far - 2.0).abs() < 0.2, "ratio {}", near / far);
    }

    #[test]
    fn wall_attenuates_crossing_path() {
        let rec_with_wall = |wall: Option<Wall>| -> f64 {
            let mut field = quiet_field();
            if let Some(w) = wall {
                field.add_wall(w);
            }
            field.emit(tone_emission(Position::ORIGIN, 0.0, 14_000.0, 10_000.0));
            let rec = field.render_recording(
                &MicrophoneModel::ideal(),
                &DeviceClock::ideal(),
                Position::new(1.0, 0.0, 0.0),
                0.0,
                (0.3 * FS) as usize,
                FS,
            );
            rec.peak()
        };
        let open = rec_with_wall(None);
        let blocked = rec_with_wall(Some(Wall::at_x(0.5)));
        assert!(
            blocked < open / 100.0,
            "wall should attenuate ≥40 dB power: open {open}, blocked {blocked}"
        );
    }

    #[test]
    fn recording_before_emission_is_silent() {
        let mut field = quiet_field();
        field.emit(tone_emission(Position::ORIGIN, 10.0, 14_000.0, 1_000.0));
        let rec = field.render_recording(
            &MicrophoneModel::ideal(),
            &DeviceClock::ideal(),
            Position::new(1.0, 0.0, 0.0),
            0.0,
            4_410,
            FS,
        );
        assert!(
            rec.peak() < 1e-9,
            "nothing should arrive in the first 0.1 s"
        );
    }

    #[test]
    fn clock_offset_does_not_move_world_time_arrivals() {
        // Two recorders with wildly different clock epochs but the same
        // world start time must capture the same signal.
        let render = |clock: DeviceClock| {
            let mut field = quiet_field();
            field.emit(tone_emission(Position::ORIGIN, 0.05, 14_000.0, 5_000.0));
            field.render_recording(
                &MicrophoneModel::ideal(),
                &clock,
                Position::new(1.0, 0.0, 0.0),
                0.0,
                (0.3 * FS) as usize,
                FS,
            )
        };
        let a = render(DeviceClock::ideal());
        let b = render(DeviceClock::new(12_345.0, 0.0)); // offset only
        for (x, y) in a.samples().iter().zip(b.samples()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_recorder_drifts_relative_to_ideal() {
        let render = |skew_ppm: f64| {
            let mut field = quiet_field();
            field.emit(tone_emission(Position::ORIGIN, 0.0, 1_000.0, 5_000.0));
            field.render_recording(
                &MicrophoneModel::ideal(),
                &DeviceClock::new(0.0, skew_ppm),
                Position::new(0.3, 0.0, 0.0),
                0.0,
                4096,
                FS,
            )
        };
        let ideal = render(0.0);
        let skewed = render(500.0);
        // Same start, but by the end of 4096 samples a +500 ppm clock has
        // drifted ~2 samples; the waveforms must diverge.
        let diff: f64 = ideal
            .samples()
            .iter()
            .zip(skewed.samples())
            .skip(3000)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 1.0,
            "skew should visibly shift the waveform, diff={diff}"
        );
    }

    #[test]
    fn noise_environment_adds_noise() {
        let mut field = AcousticField::new(Environment::office(), 3);
        let rec = field.render_recording(
            &MicrophoneModel::ideal(),
            &DeviceClock::ideal(),
            Position::ORIGIN,
            0.0,
            8_192,
            FS,
        );
        assert!(rec.rms() > 50.0, "office noise missing, rms {}", rec.rms());
    }

    #[test]
    fn same_seed_same_recording() {
        let render = || {
            let mut field = AcousticField::new(Environment::street(), 42);
            field.emit(tone_emission(Position::ORIGIN, 0.01, 14_000.0, 2_000.0));
            field.render_recording(
                &MicrophoneModel::phone(1),
                &DeviceClock::ideal(),
                Position::new(1.0, 0.0, 0.0),
                0.0,
                8_192,
                FS,
            )
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn clear_emissions_resets_sources() {
        let mut field = quiet_field();
        field.emit(tone_emission(Position::ORIGIN, 0.0, 14_000.0, 1_000.0));
        assert_eq!(field.emission_count(), 1);
        field.clear_emissions();
        assert_eq!(field.emission_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn emit_rejects_bad_sample_interval() {
        let mut field = quiet_field();
        field.emit(Emission {
            waveform: vec![0.0; 8],
            start_world_s: 0.0,
            sample_interval_s: 0.0,
            position: Position::ORIGIN,
        });
    }

    #[test]
    fn reflections_add_trailing_energy() {
        let reverberant = Environment {
            reflections: crate::environment::ReflectionSpec {
                count: (4, 4),
                delay_ms: (8.0, 12.0),
                gain_db: (-8.0, -6.0),
            },
            ..Environment::anechoic()
        };
        let render = |env: Environment| {
            let mut field = AcousticField::new(env, 7);
            field.emit(tone_emission(Position::ORIGIN, 0.0, 14_000.0, 10_000.0));
            field.render_recording(
                &MicrophoneModel::ideal(),
                &DeviceClock::ideal(),
                Position::new(0.5, 0.0, 0.0),
                0.0,
                (0.25 * FS) as usize,
                FS,
            )
        };
        let dry = render(Environment::anechoic());
        let wet = render(reverberant);
        // Energy in the tail region after the direct copy ends
        // (waveform is 4096 samples ≈ 93 ms; look at 100–180 ms).
        let tail = |b: &AudioBuffer| -> f64 {
            let lo = (0.105 * FS) as usize;
            let hi = (0.180 * FS) as usize;
            b.samples()[lo..hi].iter().map(|s| s * s).sum()
        };
        assert!(tail(&wet) > 10.0 * tail(&dry).max(1e-12), "echoes missing");
    }
}
