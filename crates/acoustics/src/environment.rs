//! Environment presets.
//!
//! The paper evaluates PIANO "in a shared office, at home, on the street,
//! and in a restaurant … represent\[ing\] different levels of background
//! noises" (Sec. VI-B1). An [`Environment`] bundles everything that varies
//! between those places: the noise profile, the air temperature (speed of
//! sound), and the room's early-reflection statistics.
//!
//! Noise levels below are calibrated (see `piano-eval`'s calibration
//! experiment) so the simulated per-environment ranging jitter reproduces
//! Fig. 1's ordering and magnitudes: office ≈ 5–7 cm mean absolute error,
//! street ≈ 10–15 cm, with home and restaurant in between.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::noise::NoiseProfile;

/// Statistics for randomized early reflections (image-source style echoes).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReflectionSpec {
    /// Minimum and maximum number of echoes per propagation path.
    pub count: (usize, usize),
    /// Extra path delay range in milliseconds.
    pub delay_ms: (f64, f64),
    /// Echo amplitude relative to the direct path, in dB (negative).
    pub gain_db: (f64, f64),
}

impl ReflectionSpec {
    /// No reflections at all (anechoic).
    pub fn none() -> Self {
        ReflectionSpec {
            count: (0, 0),
            delay_ms: (0.0, 0.0),
            gain_db: (0.0, 0.0),
        }
    }

    /// Samples a concrete set of `(extra_delay_s, amplitude_gain)` echoes.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<(f64, f64)> {
        let n = if self.count.1 > self.count.0 {
            rng.gen_range(self.count.0..=self.count.1)
        } else {
            self.count.0
        };
        (0..n)
            .map(|_| {
                let delay_s = if self.delay_ms.1 > self.delay_ms.0 {
                    rng.gen_range(self.delay_ms.0..self.delay_ms.1) / 1_000.0
                } else {
                    self.delay_ms.0 / 1_000.0
                };
                let gain_db = if self.gain_db.1 > self.gain_db.0 {
                    rng.gen_range(self.gain_db.0..self.gain_db.1)
                } else {
                    self.gain_db.0
                };
                (delay_s, piano_dsp::db::db_to_amplitude(gain_db))
            })
            .collect()
    }
}

/// A complete acoustic environment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Human-readable name ("office", "street", …).
    pub name: String,
    /// Background noise generator.
    pub noise: NoiseProfile,
    /// Air temperature in °C (sets the speed of sound).
    pub temperature_c: f64,
    /// Early-reflection statistics for propagation paths.
    pub reflections: ReflectionSpec,
    /// Per-trial inter-device path-length perturbation, as a *relative*
    /// standard deviation (fraction of the nominal distance; the draw is
    /// clamped to ±25 %).
    ///
    /// The paper's per-environment error bars (Fig. 1) fold in everything
    /// that varied between its hand-run trials: device re-placement and
    /// orientation (speaker/mic ports sit centimeters from the case
    /// center), people moving nearby, outdoor air currents. ACTION's
    /// detector itself is nearly immune to stationary background noise (the
    /// sanity checks reject corrupted windows outright rather than
    /// degrading gracefully), so this explicit per-trial geometry jitter is
    /// the calibrated stand-in for those unmodeled trial-to-trial factors —
    /// see DESIGN.md §1/§5. Zero-mean: it perturbs precision, not truth.
    pub path_jitter_rel: f64,
}

impl Environment {
    /// Shared office (paper Fig. 1a): moderate chatter and HVAC, quiet in
    /// the signal band, reflective interior.
    pub fn office() -> Self {
        Environment {
            name: "office".to_owned(),
            noise: NoiseProfile::new("office", 300.0, 11.0).with_tone(120.0, 60.0),
            temperature_c: 21.0,
            reflections: ReflectionSpec {
                count: (2, 4),
                delay_ms: (1.0, 10.0),
                gain_db: (-30.0, -22.0),
            },
            path_jitter_rel: 0.035,
        }
    }

    /// Home (paper Fig. 1b): TV/appliance noise, soft furnishings.
    pub fn home() -> Self {
        Environment {
            name: "home".to_owned(),
            noise: NoiseProfile::new("home", 500.0, 20.0).with_tone(60.0, 80.0),
            temperature_c: 22.0,
            reflections: ReflectionSpec {
                count: (2, 4),
                delay_ms: (1.5, 12.0),
                gain_db: (-32.0, -24.0),
            },
            path_jitter_rel: 0.075,
        }
    }

    /// Street (paper Fig. 1c): traffic rumble plus substantial broadband
    /// tire/wind hiss reaching the signal band — the noisiest scenario.
    pub fn street() -> Self {
        Environment {
            name: "street".to_owned(),
            noise: NoiseProfile::new("street", 2_200.0, 30.0).with_tone(95.0, 300.0),
            temperature_c: 15.0,
            reflections: ReflectionSpec {
                count: (0, 2),
                delay_ms: (4.0, 25.0),
                gain_db: (-36.0, -28.0),
            },
            path_jitter_rel: 0.105,
        }
    }

    /// Restaurant (paper Fig. 1d): babble and cutlery clatter.
    pub fn restaurant() -> Self {
        Environment {
            name: "restaurant".to_owned(),
            noise: NoiseProfile::new("restaurant", 1_200.0, 17.0).with_tone(180.0, 120.0),
            temperature_c: 22.0,
            reflections: ReflectionSpec {
                count: (3, 5),
                delay_ms: (1.0, 9.0),
                gain_db: (-30.0, -21.0),
            },
            path_jitter_rel: 0.060,
        }
    }

    /// A perfectly quiet, reflection-free room — not a paper scenario, but
    /// the right fixture for isolating algorithmic error sources in tests.
    pub fn anechoic() -> Self {
        Environment {
            name: "anechoic".to_owned(),
            noise: NoiseProfile::silent(),
            temperature_c: 20.0,
            reflections: ReflectionSpec::none(),
            path_jitter_rel: 0.0,
        }
    }

    /// The four paper environments in Fig. 1 order.
    pub fn paper_environments() -> Vec<Environment> {
        vec![
            Self::office(),
            Self::home(),
            Self::street(),
            Self::restaurant(),
        ]
    }

    /// Speed of sound at this environment's temperature (m/s).
    pub fn speed_of_sound(&self) -> f64 {
        crate::speed_of_sound(self.temperature_c)
    }

    /// Replaces the noise profile, returning the modified environment —
    /// used by noise-sweep ablations.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn presets_have_expected_names() {
        assert_eq!(Environment::office().name, "office");
        assert_eq!(Environment::home().name, "home");
        assert_eq!(Environment::street().name, "street");
        assert_eq!(Environment::restaurant().name, "restaurant");
        assert_eq!(Environment::paper_environments().len(), 4);
    }

    #[test]
    fn disturbance_ordering_matches_fig1() {
        // Fig. 1 accuracy ordering: office best, street worst; home and
        // restaurant in between. Both the broadband noise tail and the
        // per-trial path jitter must respect it.
        let envs = [
            Environment::office(),
            Environment::restaurant(),
            Environment::home(),
            Environment::street(),
        ];
        for w in envs.windows(2) {
            assert!(w[0].noise.broadband_rms < w[1].noise.broadband_rms);
            assert!(w[0].path_jitter_rel < w[1].path_jitter_rel);
        }
    }

    #[test]
    fn anechoic_is_silent_and_dry() {
        let env = Environment::anechoic();
        assert_eq!(env.noise.low_band_rms, 0.0);
        assert_eq!(env.reflections.count, (0, 0));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(env.reflections.sample(&mut rng).is_empty());
    }

    #[test]
    fn speed_of_sound_tracks_temperature() {
        assert!(Environment::street().speed_of_sound() < Environment::home().speed_of_sound());
    }

    #[test]
    fn reflection_sampling_respects_ranges() {
        let spec = ReflectionSpec {
            count: (2, 4),
            delay_ms: (1.0, 10.0),
            gain_db: (-24.0, -14.0),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let echoes = spec.sample(&mut rng);
            assert!((2..=4).contains(&echoes.len()));
            for (delay, gain) in echoes {
                assert!((0.001..0.010).contains(&delay));
                let db = piano_dsp::db::amplitude_to_db(gain);
                assert!((-24.0..-14.0).contains(&db), "gain {db} dB");
            }
        }
    }

    #[test]
    fn fixed_point_reflection_spec_is_deterministic() {
        let spec = ReflectionSpec {
            count: (1, 1),
            delay_ms: (5.0, 5.0),
            gain_db: (-20.0, -20.0),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let echoes = spec.sample(&mut rng);
        assert_eq!(echoes.len(), 1);
        assert!((echoes[0].0 - 0.005).abs() < 1e-12);
    }
}
