//! Atmospheric absorption of sound.
//!
//! Beyond spherical spreading, air itself absorbs acoustic energy, more
//! strongly at higher frequencies. At the reproduction's physical signal
//! band (the 25–35 kHz candidates fold to 9.1–19.1 kHz) absorption is a
//! fraction of a dB per meter — a small but honest contribution to the
//! ≈2.5 m maximum ranging distance the paper observes.
//!
//! The model is a simplified fit to ISO 9613-1 at 20 °C / 50 % relative
//! humidity: `a(f) ≈ a₁·(f/1kHz)²` dB per meter with a gentle saturation,
//! which is accurate to tens of percent over 1–20 kHz — ample for a
//! simulation whose dominant losses are spreading and transducer gain.

/// Absorption coefficient in dB (amplitude) per meter at frequency `f_hz`.
///
/// Clamped to the physical (folded) band: callers should pass physical
/// frequencies ≤ Nyquist; values are clamped at 25 kHz where the fit ends.
pub fn absorption_db_per_m(f_hz: f64) -> f64 {
    let f_khz = (f_hz.abs() / 1_000.0).min(25.0);
    // ~0.005 dB/m at 1 kHz rising roughly quadratically, saturating toward
    // ~0.6 dB/m at 20 kHz (ISO 9613-1 magnitude at 20 °C, 50 % RH).
    let quad = 0.0016 * f_khz * f_khz;
    quad / (1.0 + 0.04 * f_khz)
}

/// Linear amplitude gain after traveling `distance_m` at `f_hz`.
pub fn absorption_gain(f_hz: f64, distance_m: f64) -> f64 {
    piano_dsp::db::db_to_amplitude(-absorption_db_per_m(f_hz) * distance_m.max(0.0))
}

/// Folds a (possibly above-Nyquist) digital frequency to its physical alias
/// for a given sample rate.
///
/// A 30 kHz tone synthesized at 44.1 kHz physically emerges at 14.1 kHz;
/// propagation physics must be evaluated at the latter.
pub fn fold_to_physical(f_hz: f64, sample_rate: f64) -> f64 {
    let nyquist = sample_rate / 2.0;
    let f = f_hz.abs() % sample_rate;
    if f <= nyquist {
        f
    } else {
        sample_rate - f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn absorption_grows_with_frequency() {
        assert!(absorption_db_per_m(1_000.0) < absorption_db_per_m(5_000.0));
        assert!(absorption_db_per_m(5_000.0) < absorption_db_per_m(15_000.0));
    }

    #[test]
    fn magnitudes_are_physically_plausible() {
        // Sub-0.01 dB/m at 1 kHz; a few tenths of a dB/m in the signal band.
        assert!(absorption_db_per_m(1_000.0) < 0.01);
        let band = absorption_db_per_m(14_000.0);
        assert!(band > 0.1 && band < 0.5, "14 kHz absorption {band} dB/m");
    }

    #[test]
    fn absorption_over_protocol_distances_is_small() {
        // At the paper's 2.5 m maximum range the loss must be a minor
        // correction (< 2 dB), not the dominant cutoff mechanism.
        let g = absorption_gain(19_000.0, 2.5);
        assert!(g > piano_dsp::db::db_to_amplitude(-2.0), "gain {g}");
        assert!(g < 1.0);
    }

    #[test]
    fn zero_distance_is_unity_gain() {
        assert_eq!(absorption_gain(10_000.0, 0.0), 1.0);
        assert_eq!(absorption_gain(10_000.0, -5.0), 1.0); // clamped
    }

    #[test]
    fn folding_matches_aliasing() {
        let fs = 44_100.0;
        assert!((fold_to_physical(30_000.0, fs) - 14_100.0).abs() < 1e-9);
        assert!((fold_to_physical(25_000.0, fs) - 19_100.0).abs() < 1e-9);
        assert!((fold_to_physical(35_000.0, fs) - 9_100.0).abs() < 1e-9);
        assert_eq!(fold_to_physical(5_000.0, fs), 5_000.0);
        assert_eq!(fold_to_physical(22_050.0, fs), 22_050.0);
    }

    proptest! {
        #[test]
        fn folded_frequency_is_within_nyquist(f in 0.0f64..200_000.0) {
            let folded = fold_to_physical(f, 44_100.0);
            prop_assert!((0.0..=22_050.0).contains(&folded));
        }

        #[test]
        fn gain_decreases_with_distance(f in 1_000.0f64..20_000.0, d in 0.0f64..10.0) {
            prop_assert!(absorption_gain(f, d + 1.0) < absorption_gain(f, d) + 1e-15);
        }
    }
}
