//! Environment background noise.
//!
//! Sec. VI-A of the paper: "We collected background acoustic noises in
//! various environments (office, home, street, etc.) and found that most
//! powers of background noises concentrate on frequencies that are smaller
//! than around 6K Hz." The candidate band was chosen to dodge that energy.
//!
//! A [`NoiseProfile`] therefore has two parts:
//!
//! * a **low band** — white noise low-passed below ~6 kHz, carrying almost
//!   all the acoustic power (plus optional tonal hum components such as
//!   mains hum or engine drone), and
//! * a **broadband tail** — the small residue of real-world noise (tire
//!   hiss, cutlery clatter, HVAC turbulence) that does reach the signal
//!   band and therefore perturbs ACTION's detector. The tail level is what
//!   differentiates the four environments' ranging accuracy in Fig. 1.
//!
//! Levels are in the reproduction's 16-bit sample units (full scale 32767).

use piano_dsp::filter;
use piano_dsp::tone::ToneSpec;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A stochastic background-noise generator for one environment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Human-readable environment label (e.g. "office").
    pub label: String,
    /// RMS level of the low-frequency bulk, in sample units.
    pub low_band_rms: f64,
    /// Cutoff of the low-frequency bulk (Hz). The paper measured ~6 kHz.
    pub low_cutoff_hz: f64,
    /// RMS level of the broadband tail reaching the signal band.
    pub broadband_rms: f64,
    /// Deterministic tonal components (hums, drones) mixed on top.
    pub tones: Vec<NoiseTone>,
}

/// A tonal noise component.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseTone {
    /// Frequency in Hz.
    pub frequency_hz: f64,
    /// Peak amplitude in sample units.
    pub amplitude: f64,
}

impl NoiseProfile {
    /// A profile with no noise at all — useful for clean-room unit tests.
    pub fn silent() -> Self {
        NoiseProfile {
            label: "silent".to_owned(),
            low_band_rms: 0.0,
            low_cutoff_hz: 6_000.0,
            broadband_rms: 0.0,
            tones: Vec::new(),
        }
    }

    /// Builds a profile from the two level knobs.
    pub fn new(label: &str, low_band_rms: f64, broadband_rms: f64) -> Self {
        NoiseProfile {
            label: label.to_owned(),
            low_band_rms,
            low_cutoff_hz: 6_000.0,
            broadband_rms,
            tones: Vec::new(),
        }
    }

    /// Adds a tonal component, returning the modified profile.
    #[must_use]
    pub fn with_tone(mut self, frequency_hz: f64, amplitude: f64) -> Self {
        self.tones.push(NoiseTone {
            frequency_hz,
            amplitude,
        });
        self
    }

    /// Scales both stochastic levels by a factor — used by the noise-sweep
    /// ablation experiment.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.low_band_rms *= factor;
        self.broadband_rms *= factor;
        for t in &mut self.tones {
            t.amplitude *= factor;
        }
        self
    }

    /// Renders `len` samples of noise at `sample_rate`, consuming entropy
    /// from `rng`.
    pub fn render(&self, len: usize, sample_rate: f64, rng: &mut ChaCha8Rng) -> Vec<f64> {
        let mut out = vec![0.0; len];
        if len == 0 {
            return out;
        }
        if self.low_band_rms > 0.0 {
            let white: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let kernel =
                filter::lowpass(self.low_cutoff_hz.min(sample_rate * 0.45), sample_rate, 129);
            let mut low = filter::filter_same(&white, &kernel);
            let rms = piano_dsp::tone::rms(&low).max(1e-12);
            let scale = self.low_band_rms / rms;
            for (o, l) in out.iter_mut().zip(low.iter_mut()) {
                *o += *l * scale;
            }
        }
        if self.broadband_rms > 0.0 {
            // Gaussian-ish broadband tail via sum of two uniforms (keeps the
            // generator cheap; detector behaviour depends only on level).
            let s = self.broadband_rms * (6.0f64).sqrt() / 2.0;
            for o in out.iter_mut() {
                *o += s * (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0));
            }
        }
        for t in &self.tones {
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            piano_dsp::tone::add_multi_tone(
                &mut out,
                &[ToneSpec::new(t.frequency_hz, t.amplitude).with_phase(phase)],
                sample_rate,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_dsp::spectrum::{power_in_range, power_spectrum};
    use rand::SeedableRng;

    fn render_one(profile: &NoiseProfile, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        profile.render(8192, 44_100.0, &mut rng)
    }

    #[test]
    fn silent_profile_renders_zeros() {
        let sig = render_one(&NoiseProfile::silent(), 1);
        assert!(sig.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn render_zero_length_is_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(NoiseProfile::new("x", 100.0, 10.0)
            .render(0, 44_100.0, &mut rng)
            .is_empty());
    }

    #[test]
    fn power_concentrates_below_cutoff() {
        // The paper's measurement: most noise power below ~6 kHz.
        let profile = NoiseProfile::new("office-like", 300.0, 10.0);
        let sig = render_one(&profile, 7);
        let ps = power_spectrum(&sig[..4096]);
        let low = power_in_range(&ps, 0.0, 6_000.0, 44_100.0);
        let high = power_in_range(&ps, 8_000.0, 22_000.0, 44_100.0);
        assert!(low > 20.0 * high, "low {low} vs high {high}");
    }

    #[test]
    fn broadband_tail_reaches_signal_band() {
        let profile = NoiseProfile::new("tail-only", 0.0, 50.0);
        let sig = render_one(&profile, 9);
        let ps = power_spectrum(&sig[..4096]);
        let band = power_in_range(&ps, 9_000.0, 19_000.0, 44_100.0);
        assert!(band > 0.0, "tail must inject power into the signal band");
    }

    #[test]
    fn rms_levels_are_respected() {
        let profile = NoiseProfile::new("levels", 500.0, 0.0);
        let sig = render_one(&profile, 3);
        let rms = piano_dsp::tone::rms(&sig);
        assert!((rms - 500.0).abs() < 50.0, "rms {rms}");

        let tail = NoiseProfile::new("tail", 0.0, 80.0);
        let sig = render_one(&tail, 4);
        let rms = piano_dsp::tone::rms(&sig);
        assert!((rms - 80.0).abs() < 8.0, "rms {rms}");
    }

    #[test]
    fn tones_appear_at_their_frequency() {
        let profile = NoiseProfile::new("hum", 0.0, 0.0).with_tone(120.0, 200.0);
        let sig = render_one(&profile, 5);
        let ps = power_spectrum(&sig[..4096]);
        let hum = power_in_range(&ps, 60.0, 180.0, 44_100.0);
        assert!(hum > 200.0 * 200.0 * 0.5, "hum power {hum}");
    }

    #[test]
    fn scaled_profile_scales_levels() {
        let p = NoiseProfile::new("x", 100.0, 10.0)
            .with_tone(100.0, 5.0)
            .scaled(2.0);
        assert_eq!(p.low_band_rms, 200.0);
        assert_eq!(p.broadband_rms, 20.0);
        assert_eq!(p.tones[0].amplitude, 10.0);
    }

    #[test]
    fn same_seed_reproduces_noise() {
        let p = NoiseProfile::new("det", 100.0, 20.0);
        assert_eq!(render_one(&p, 42), render_one(&p, 42));
    }

    #[test]
    fn different_seeds_differ() {
        let p = NoiseProfile::new("det", 100.0, 20.0);
        assert_ne!(render_one(&p, 42), render_one(&p, 43));
    }
}
