//! Audio-stack scheduling latency.
//!
//! The paper (Sec. VI-B3): "processing delay is very unpredictable on the
//! devices. For instance, when the vouching device wants to play the
//! reference signal, there is an unpredictable delay between the API to
//! play acoustic signal is called and the signal is actually played."
//!
//! That unpredictability is precisely why Echo-style one-way ranging fails
//! on commodity devices (Fig. 2b) and why ACTION is designed to cancel it.
//! [`LatencyModel`] samples those delays: a fixed mean (the pipeline depth)
//! plus a uniform jitter term (scheduler, buffer boundaries, GC pauses).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Distribution of playback / recording start latencies for one device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Mean delay between a playback API call and sound leaving the
    /// speaker (seconds).
    pub playback_mean_s: f64,
    /// Half-width of the uniform playback jitter (seconds).
    pub playback_jitter_s: f64,
    /// Mean delay between a record API call and the first captured sample
    /// (seconds).
    pub record_mean_s: f64,
    /// Half-width of the uniform recording jitter (seconds).
    pub record_jitter_s: f64,
}

impl LatencyModel {
    /// Phone-class defaults: ~150 ms pipelines with tens of ms of jitter —
    /// the regime in which Echo's calibrated-delay subtraction leaves
    /// meters of ranging error (speed of sound ≈ 0.34 m/ms).
    pub fn phone() -> Self {
        LatencyModel {
            playback_mean_s: 0.150,
            playback_jitter_s: 0.030,
            record_mean_s: 0.120,
            record_jitter_s: 0.025,
        }
    }

    /// Zero latency, zero jitter — for isolating other error sources.
    pub fn ideal() -> Self {
        LatencyModel {
            playback_mean_s: 0.0,
            playback_jitter_s: 0.0,
            record_mean_s: 0.0,
            record_jitter_s: 0.0,
        }
    }

    /// Scales the *jitter* terms only (the means calibrate away), returning
    /// the modified model. Used by the Echo-sensitivity ablation.
    #[must_use]
    pub fn with_jitter_scale(mut self, factor: f64) -> Self {
        self.playback_jitter_s *= factor;
        self.record_jitter_s *= factor;
        self
    }

    /// Samples a playback start latency in seconds.
    pub fn sample_playback(&self, rng: &mut ChaCha8Rng) -> f64 {
        sample(self.playback_mean_s, self.playback_jitter_s, rng)
    }

    /// Samples a recording start latency in seconds.
    pub fn sample_record(&self, rng: &mut ChaCha8Rng) -> f64 {
        sample(self.record_mean_s, self.record_jitter_s, rng)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::phone()
    }
}

fn sample(mean: f64, jitter: f64, rng: &mut ChaCha8Rng) -> f64 {
    if jitter <= 0.0 {
        return mean.max(0.0);
    }
    (mean + rng.gen_range(-jitter..jitter)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_deterministic_zero() {
        let m = LatencyModel::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(m.sample_playback(&mut rng), 0.0);
        assert_eq!(m.sample_record(&mut rng), 0.0);
    }

    #[test]
    fn samples_stay_within_jitter_bounds() {
        let m = LatencyModel::phone();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let p = m.sample_playback(&mut rng);
            assert!(p >= m.playback_mean_s - m.playback_jitter_s);
            assert!(p < m.playback_mean_s + m.playback_jitter_s);
            let r = m.sample_record(&mut rng);
            assert!(r >= m.record_mean_s - m.record_jitter_s);
            assert!(r < m.record_mean_s + m.record_jitter_s);
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let m = LatencyModel::phone();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = m.sample_playback(&mut rng);
        let b = m.sample_playback(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn latency_never_negative() {
        let m = LatencyModel {
            playback_mean_s: 0.001,
            playback_jitter_s: 0.1,
            record_mean_s: 0.0,
            record_jitter_s: 0.05,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(m.sample_playback(&mut rng) >= 0.0);
            assert!(m.sample_record(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn jitter_scale_affects_only_jitter() {
        let m = LatencyModel::phone().with_jitter_scale(2.0);
        assert_eq!(m.playback_mean_s, LatencyModel::phone().playback_mean_s);
        assert_eq!(
            m.playback_jitter_s,
            2.0 * LatencyModel::phone().playback_jitter_s
        );
    }

    #[test]
    fn jitter_magnitude_ruins_sub_meter_one_way_ranging() {
        // Sanity-check the premise of Fig. 2b: ±30 ms of playback jitter is
        // ±10 m of one-way ranging error at 343 m/s.
        let m = LatencyModel::phone();
        let worst = m.playback_jitter_s + m.record_jitter_s;
        assert!(
            worst * 343.0 > 5.0,
            "jitter too small to demonstrate Echo failure"
        );
    }
}
