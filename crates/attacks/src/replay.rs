//! Guessing-based replay attacks (paper Sec. V).
//!
//! "An attacker could guess the reference signals and use them to perform
//! replay attacks. Specifically, the attacker uses our signal construction
//! algorithm to synthesize reference signals. Performing a successful
//! replay attack requires the attacker to guess the two reference signals
//! correctly."
//!
//! The attacker here is given every advantage except the secret: two
//! emitters (one within acoustic range of each legitimate device), full
//! knowledge of the candidate grid, the sampler, the protocol schedule, and
//! the Bluetooth timing — so it can place its guessed signals at exactly
//! the times that would fake a sub-threshold distance. Only the frequency
//! subsets are unknown (they traveled encrypted in Step II).
//!
//! [`OracleReplayAttacker`] is the same attack with the secret handed over;
//! it exists to prove the simulation gives the attacker everything but the
//! guess — if the oracle variant failed too, the 0/100 result of the
//! security experiment would be vacuous.

use piano_acoustics::field::Emission;
use piano_acoustics::{AcousticField, Position, SpeakerModel};
use piano_core::config::ActionConfig;
use piano_core::signal::ReferenceSignal;
use rand_chacha::ChaCha8Rng;

/// A guessing-based replay attacker with two emitters.
#[derive(Clone, Debug)]
pub struct ReplayAttacker {
    /// Emitter placed near the authenticating device.
    pub emitter_near_auth: Position,
    /// Emitter placed near the vouching device.
    pub emitter_near_vouch: Position,
    /// The attacker's speaker hardware.
    pub speaker: SpeakerModel,
    /// Distance the attacker wants the protocol to report (meters).
    pub faked_distance_m: f64,
    /// The playback latency the attacker assumes for the legitimate
    /// devices. The *actual* per-run latencies are random, and Eq. 3 makes
    /// their deviation land directly in the attacker's faked distance —
    /// an unpredictable timing nonce the paper's analysis never even needs
    /// to invoke (frequency guessing already kills the attack). The oracle
    /// variant neutralizes it with deterministic devices to isolate the
    /// frequency-secrecy defense.
    pub assumed_playback_latency_s: f64,
}

impl ReplayAttacker {
    /// An attacker whose emitters sit 0.3 m from each legitimate device.
    pub fn flanking(auth_pos: Position, vouch_pos: Position) -> Self {
        ReplayAttacker {
            emitter_near_auth: auth_pos.along_x(0.3),
            emitter_near_vouch: vouch_pos.along_x(-0.3),
            speaker: SpeakerModel::phone(0xA77A),
            faked_distance_m: 0.2,
            assumed_playback_latency_s: piano_acoustics::latency::LatencyModel::phone()
                .playback_mean_s,
        }
    }

    /// Overrides the assumed playback latency, returning the attacker.
    #[must_use]
    pub fn with_assumed_latency(mut self, latency_s: f64) -> Self {
        self.assumed_playback_latency_s = latency_s;
        self
    }

    /// Guesses both reference signals with the configured sampler and
    /// injects them into the field at protocol-accurate times.
    ///
    /// `start_cmd_estimate_s` is the attacker's estimate of the session's
    /// start command (observable from Bluetooth traffic timing). Returns
    /// the guessed signals so the harness can count frequency-set
    /// collisions.
    pub fn inject_guesses(
        &self,
        field: &mut AcousticField,
        config: &ActionConfig,
        start_cmd_estimate_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> (ReferenceSignal, ReferenceSignal) {
        let guess_sa = ReferenceSignal::random(config, rng);
        let guess_sv = ReferenceSignal::random(config, rng);
        self.inject_signals(field, config, start_cmd_estimate_s, &guess_sa, &guess_sv);
        (guess_sa, guess_sv)
    }

    /// Injects *specific* signals (the oracle variant shares this path).
    pub fn inject_signals(
        &self,
        field: &mut AcousticField,
        config: &ActionConfig,
        start_cmd_estimate_s: f64,
        sa: &ReferenceSignal,
        sv: &ReferenceSignal,
    ) {
        let rate = config.sample_rate;
        let interval = 1.0 / rate;
        // Timing that fakes `faked_distance_m`: each device must hear "the
        // other device's signal" at (schedule offset + faked tof) after its
        // own. The legitimate mean playback latency is public knowledge
        // (it's a device model constant), so the attacker centers on it;
        // the per-run jitter it cannot know lands in its faked distance.
        let latency = self.assumed_playback_latency_s;
        let tof = self.faked_distance_m / config.assumed_speed_of_sound;

        // Near the authenticating device: play the guessed S_V when the
        // real S_V "would have arrived" had the vouching device been close.
        field.emit(Emission {
            waveform: self.speaker.radiate(&sv.waveform(), rate),
            start_world_s: start_cmd_estimate_s + config.play_offset_vouch_s + latency + tof,
            sample_interval_s: interval,
            position: self.emitter_near_auth,
        });
        // Near the vouching device: play the guessed S_A likewise.
        field.emit(Emission {
            waveform: self.speaker.radiate(&sa.waveform(), rate),
            start_world_s: start_cmd_estimate_s + config.play_offset_auth_s + latency + tof,
            sample_interval_s: interval,
            position: self.emitter_near_vouch,
        });
    }
}

/// The replay attacker with the secret frequency sets handed to it —
/// an upper bound that validates the simulation (see module docs).
#[derive(Clone, Debug)]
pub struct OracleReplayAttacker(pub ReplayAttacker);

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::Environment;
    use piano_core::device::Device;
    use piano_core::piano::{AuthDecision, PianoConfig};
    use piano_core::stream::AuthService;
    use rand::SeedableRng;

    /// Scenario: user away (vouch at 6 m), attacker flanks both devices.
    fn scenario(seed: u64) -> (AuthService, Device, Device, AcousticField, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let auth_dev = Device::phone(1, Position::ORIGIN, seed + 1);
        let vouch_dev = Device::phone(2, Position::new(6.0, 0.0, 0.0), seed + 2);
        let mut authenticator = AuthService::new(PianoConfig::default());
        authenticator.register(&auth_dev, &vouch_dev, &mut rng);
        let field = AcousticField::new(Environment::office(), seed ^ 0xBEE);
        (authenticator, auth_dev, vouch_dev, field, rng)
    }

    #[test]
    fn guessing_replay_fails_with_overwhelming_probability() {
        for seed in 0..4 {
            let (mut authn, auth_dev, vouch_dev, mut field, mut rng) = scenario(seed);
            let attacker = ReplayAttacker::flanking(auth_dev.position, vouch_dev.position);
            // Attacker observes the BT send at t=0 and knows link latency.
            let start_cmd = 0.035;
            let mut attacker_rng = ChaCha8Rng::seed_from_u64(0xFF00 + seed);
            attacker.inject_guesses(
                &mut field,
                &authn.config().action.clone(),
                start_cmd,
                &mut attacker_rng,
            );
            let decision =
                authn.authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng);
            assert!(
                !decision.is_granted(),
                "seed {seed}: replay succeeded: {decision:?}"
            );
        }
    }

    #[test]
    fn oracle_replay_succeeds_validating_the_simulation() {
        // Hand the attacker the exact signals the session will draw (by
        // replaying the session RNG) *and* deterministic device timing —
        // the attack must then work, proving that secrecy of the frequency
        // sets (plus unpredictable latency) is what defeats the real
        // attacker, not a simulation artifact.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut auth_dev = Device::phone(1, Position::ORIGIN, 78);
        let mut vouch_dev = Device::phone(2, Position::new(6.0, 0.0, 0.0), 79);
        auth_dev.latency = piano_acoustics::latency::LatencyModel::ideal();
        vouch_dev.latency = piano_acoustics::latency::LatencyModel::ideal();
        let mut authn = AuthService::new(PianoConfig::default());
        authn.register(&auth_dev, &vouch_dev, &mut rng);
        let mut field = AcousticField::new(Environment::office(), 77 ^ 0xBEE);
        let config = authn.config().action.clone();

        // Replicate the session's secret draws from a cloned RNG.
        let mut oracle_rng = rng.clone();
        let (_session, sa, sv) = piano_core::action::draw_session_signals(&config, &mut oracle_rng);

        let attacker = ReplayAttacker::flanking(auth_dev.position, vouch_dev.position)
            .with_assumed_latency(0.0);
        attacker.inject_signals(&mut field, &config, 0.035, &sa, &sv);
        let decision = authn.authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng);
        match decision {
            AuthDecision::Granted { distance_m } => {
                assert!(
                    distance_m < 1.0,
                    "oracle replay should fake a short distance, got {distance_m}"
                );
            }
            other => panic!("oracle replay should succeed, got {other:?}"),
        }
    }

    #[test]
    fn oracle_replay_with_realistic_latency_jitter_is_unreliable() {
        // Bonus finding: even with the secret signals, the legitimate
        // devices' random audio-stack latencies land directly in the faked
        // distance (Eq. 3), so the replay misses the threshold in most
        // runs. The paper's security argument never needs this margin, but
        // it exists.
        let mut grants = 0;
        for seed in 0..6u64 {
            let (mut authn, auth_dev, vouch_dev, mut field, mut rng) = scenario(300 + seed);
            let config = authn.config().action.clone();
            let mut oracle_rng = rng.clone();
            let (_s, sa, sv) = piano_core::action::draw_session_signals(&config, &mut oracle_rng);
            let attacker = ReplayAttacker::flanking(auth_dev.position, vouch_dev.position);
            attacker.inject_signals(&mut field, &config, 0.035, &sa, &sv);
            if authn
                .authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng)
                .is_granted()
            {
                grants += 1;
            }
        }
        assert!(
            grants < 5,
            "latency jitter should make blind-timed replay unreliable"
        );
    }
}
