//! All-frequency-based spoofing attacks (paper Sec. V).
//!
//! "An attacker can construct a spoofing reference signal that includes all
//! candidate frequencies … and plays it in the entire authentication
//! process." The β sanity check defeats it for *any* attacker power `P_a`
//! (the paper's case analysis):
//!
//! * `P_a ≥ α·R_f` — the unchosen-candidate check fails (every candidate is
//!   powered);
//! * `P_a ≤ β` — the attack adds nothing that survives the checks;
//! * `β < P_a < α·R_f` — both can fail; either way windows containing the
//!   spoof score `−∞`.
//!
//! So the detector either still finds the genuine signal or reports
//! absence; the attacker never shortens the distance.

use piano_acoustics::field::Emission;
use piano_acoustics::{AcousticField, Position, SpeakerModel};
use piano_core::config::ActionConfig;
use piano_dsp::tone::{multi_tone, ToneSpec};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The all-frequency spoofing attacker.
#[derive(Clone, Debug)]
pub struct AllFrequencyAttacker {
    /// Where the attacker's speaker sits.
    pub position: Position,
    /// Per-tone amplitude of the spoofing signal (the paper's `√P_a`).
    pub tone_amplitude: f64,
    /// The attacker's speaker hardware.
    pub speaker: SpeakerModel,
}

impl AllFrequencyAttacker {
    /// An attacker `0.3 m` from the target with a mid-range power choice
    /// (comparable to a legitimate tone's received level).
    pub fn near(position: Position) -> Self {
        AllFrequencyAttacker {
            position: position.along_x(0.3),
            tone_amplitude: 2_000.0,
            speaker: SpeakerModel::phone(0xFEED),
        }
    }

    /// Sets the per-tone amplitude, returning the modified attacker — used
    /// by the power-sweep security experiment to cover the paper's three
    /// `P_a` regimes.
    #[must_use]
    pub fn with_tone_amplitude(mut self, amplitude: f64) -> Self {
        self.tone_amplitude = amplitude;
        self
    }

    /// Builds the spoofing waveform: one sine per candidate frequency, all
    /// at the same power, random phases, `duration_s` long.
    pub fn spoof_waveform(
        &self,
        config: &ActionConfig,
        duration_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<f64> {
        let len = (duration_s * config.sample_rate).round() as usize;
        let tones: Vec<ToneSpec> = (0..config.grid.len())
            .map(|i| {
                ToneSpec::new(config.grid.candidate_hz(i), self.tone_amplitude)
                    .with_phase(rng.gen_range(0.0..std::f64::consts::TAU))
            })
            .collect();
        multi_tone(&tones, config.sample_rate, len)
    }

    /// Injects the spoofing emission, covering `[start_s, start_s +
    /// duration_s]` in world time — long enough to blanket the entire
    /// authentication recording, per the paper's attack description.
    pub fn inject(
        &self,
        field: &mut AcousticField,
        config: &ActionConfig,
        start_s: f64,
        duration_s: f64,
        rng: &mut ChaCha8Rng,
    ) {
        let wave = self.spoof_waveform(config, duration_s, rng);
        field.emit(Emission {
            waveform: self.speaker.radiate(&wave, config.sample_rate),
            start_world_s: start_s,
            sample_interval_s: 1.0 / config.sample_rate,
            position: self.position,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::Environment;
    use piano_core::device::Device;
    use piano_core::piano::PianoConfig;
    use piano_core::stream::AuthService;
    use rand::SeedableRng;

    /// Full-stack attempt: user away (6 m), attacker blankets the
    /// authenticating device with the all-frequency spoof.
    fn attempt(tone_amplitude: f64, seed: u64) -> bool {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let auth_dev = Device::phone(1, Position::ORIGIN, seed + 1);
        let vouch_dev = Device::phone(2, Position::new(6.0, 0.0, 0.0), seed + 2);
        let mut authn = AuthService::new(PianoConfig::default());
        authn.register(&auth_dev, &vouch_dev, &mut rng);
        let mut field = AcousticField::new(Environment::office(), seed ^ 0xD00D);
        let attacker =
            AllFrequencyAttacker::near(auth_dev.position).with_tone_amplitude(tone_amplitude);
        let cfg = authn.config().action.clone();
        attacker.inject(&mut field, &cfg, 0.0, 3.0, &mut rng);
        // Second emitter near the vouching device, as the threat model
        // allows "around the authenticating device and/or vouching device".
        let attacker2 =
            AllFrequencyAttacker::near(vouch_dev.position).with_tone_amplitude(tone_amplitude);
        attacker2.inject(&mut field, &cfg, 0.0, 3.0, &mut rng);
        authn
            .authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng)
            .is_granted()
    }

    #[test]
    fn loud_spoof_fails() {
        // P_a ≥ α·R_f regime.
        assert!(!attempt(8_000.0, 11));
    }

    #[test]
    fn midrange_spoof_fails() {
        // β < P_a < α·R_f regime.
        assert!(!attempt(1_000.0, 12));
    }

    #[test]
    fn quiet_spoof_fails() {
        // P_a ≤ β regime: harmless, but also useless for the attacker.
        assert!(!attempt(50.0, 13));
    }

    #[test]
    fn spoof_waveform_covers_all_candidates() {
        let cfg = ActionConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let attacker = AllFrequencyAttacker::near(Position::ORIGIN);
        let wave = attacker.spoof_waveform(&cfg, 0.2, &mut rng);
        let ps = piano_dsp::spectrum::power_spectrum(&wave[..4096]);
        for i in 0..cfg.grid.len() {
            let bin = cfg.grid.fft_bin(i, cfg.sample_rate, cfg.signal_len);
            let p = piano_dsp::spectrum::band_power(&ps, bin, cfg.theta);
            assert!(
                p > 0.5 * attacker.tone_amplitude * attacker.tone_amplitude,
                "candidate {i} underpowered: {p}"
            );
        }
    }

    #[test]
    fn spoof_also_denies_legitimate_user() {
        // Collateral effect the paper accepts: with the spoof blanketing
        // the room, even a nearby legitimate user is denied (availability,
        // not authentication, is sacrificed).
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let auth_dev = Device::phone(1, Position::ORIGIN, 31);
        let vouch_dev = Device::phone(2, Position::new(0.5, 0.0, 0.0), 32);
        let mut authn = AuthService::new(PianoConfig::default());
        authn.register(&auth_dev, &vouch_dev, &mut rng);
        let mut field = AcousticField::new(Environment::office(), 0xCAFE);
        let cfg = authn.config().action.clone();
        AllFrequencyAttacker::near(auth_dev.position)
            .with_tone_amplitude(8_000.0)
            .inject(&mut field, &cfg, 0.0, 3.0, &mut rng);
        let decision = authn.authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng);
        assert!(!decision.is_granted());
    }
}
