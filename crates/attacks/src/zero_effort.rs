//! Zero-effort attacks (paper Sec. III).
//!
//! "An attacker can directly try to use the authenticating device while the
//! legitimate user is away. Due to distance estimation errors, the
//! authenticating device would falsely authenticate the attacker with a
//! certain probability."
//!
//! No adversarial sound is played; the attack succeeds only if ACTION's
//! error crosses the threshold (quantified by Table II's FARs) — or not at
//! all once the vouching device is beyond acoustic range.

use piano_acoustics::{AcousticField, Environment, Position};
use piano_core::device::Device;
use piano_core::piano::AuthDecision;
use piano_core::stream::AuthService;
use rand_chacha::ChaCha8Rng;

/// The geometry of a zero-effort attempt: the legitimate user (and the
/// vouching device) is `vouch_distance_m` away from the authenticating
/// device the attacker is touching.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZeroEffortScenario {
    /// Distance between authenticating and vouching device in meters.
    pub vouch_distance_m: f64,
}

impl ZeroEffortScenario {
    /// The paper's canonical "user went to lunch" geometry: vouching device
    /// across the room, inside Bluetooth range but beyond acoustic reach.
    pub fn user_away() -> Self {
        ZeroEffortScenario {
            vouch_distance_m: 6.0,
        }
    }
}

/// Runs one zero-effort attempt and returns the authenticator's decision.
///
/// The caller supplies a registered authenticator; devices are created
/// fresh per attempt with seeds derived from `seed`.
pub fn attempt(
    scenario: &ZeroEffortScenario,
    environment: Environment,
    seed: u64,
    rng: &mut ChaCha8Rng,
) -> AuthDecision {
    let mut authenticator = AuthService::new(piano_core::piano::PianoConfig::default());
    let auth_dev = Device::phone(1, Position::ORIGIN, seed.wrapping_add(17));
    let vouch_dev = Device::phone(
        2,
        Position::new(scenario.vouch_distance_m, 0.0, 0.0),
        seed.wrapping_add(29),
    );
    authenticator.register(&auth_dev, &vouch_dev, rng);
    let mut field = AcousticField::new(environment, seed.wrapping_mul(0x9E37).wrapping_add(3));
    authenticator.authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_core::piano::DenialReason;
    use rand::SeedableRng;

    #[test]
    fn user_away_attempts_are_denied() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for seed in 0..5 {
            let d = attempt(
                &ZeroEffortScenario::user_away(),
                Environment::office(),
                seed,
                &mut rng,
            );
            assert!(
                !d.is_granted(),
                "zero-effort attempt {seed} succeeded: {d:?}"
            );
        }
    }

    #[test]
    fn beyond_acoustic_range_denial_is_signal_absent() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = attempt(
            &ZeroEffortScenario {
                vouch_distance_m: 7.0,
            },
            Environment::office(),
            99,
            &mut rng,
        );
        assert_eq!(
            d,
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent
            }
        );
    }

    #[test]
    fn outside_bluetooth_never_reaches_the_protocol() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = attempt(
            &ZeroEffortScenario {
                vouch_distance_m: 14.0,
            },
            Environment::office(),
            7,
            &mut rng,
        );
        assert_eq!(
            d,
            AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable
            }
        );
    }
}
