//! Batch attack trials (the paper's Sec. VI-E experiment).
//!
//! "We performed 100 trials of guessing-based replay attacks and
//! all-frequency-based spoofing attacks … In all of these trials, ACTION
//! detects that the reference signals are not in the recorded signal …
//! As a result, all these attack trials failed."
//!
//! [`run_trials`] reproduces that experiment for any [`AttackKind`],
//! tallying outcomes and denial reasons.

use std::collections::BTreeMap;

use piano_acoustics::{AcousticField, Environment, Position};
use piano_core::device::Device;
use piano_core::piano::{AuthDecision, DenialReason, PianoConfig};
use piano_core::stream::AuthService;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::all_freq::AllFrequencyAttacker;
use crate::replay::ReplayAttacker;

/// The attack to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttackKind {
    /// No adversarial sound; rely on estimator error (Sec. III).
    ZeroEffort,
    /// Guess both reference signals and replay them (Sec. V).
    GuessingReplay,
    /// Blanket the room with all candidate frequencies at the given
    /// per-tone amplitude (Sec. V).
    AllFrequency {
        /// Per-tone amplitude of the spoofing signal.
        tone_amplitude: f64,
    },
}

/// Outcome of one attack trial.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// Whether the attacker was (falsely) granted access.
    pub granted: bool,
    /// The authenticator's decision.
    pub decision: AuthDecision,
}

/// Aggregated results over a batch of trials.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttackStats {
    /// Number of trials run.
    pub trials: usize,
    /// Number of trials where access was granted (attack successes).
    pub successes: usize,
    /// Histogram of denial reasons (by display label).
    pub denial_reasons: BTreeMap<String, usize>,
}

impl AttackStats {
    /// Empirical success rate.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

fn reason_label(reason: &DenialReason) -> String {
    match reason {
        DenialReason::NotPaired => "not-paired".into(),
        DenialReason::BluetoothUnreachable => "bluetooth-unreachable".into(),
        DenialReason::SignalAbsent => "signal-absent".into(),
        DenialReason::TooFar { .. } => "distance-exceeds-threshold".into(),
        DenialReason::ProtocolFailure(_) => "protocol-failure".into(),
    }
}

/// Runs `trials` independent attack attempts in the "user away" geometry
/// (vouching device `vouch_distance_m` from the authenticating device,
/// inside Bluetooth range) and tallies outcomes.
///
/// Every trial uses fresh devices, field and RNG streams derived from
/// `base_seed`, so batches are reproducible and embarrassingly parallel.
pub fn run_trials(
    kind: AttackKind,
    environment: &Environment,
    vouch_distance_m: f64,
    trials: usize,
    base_seed: u64,
) -> AttackStats {
    let mut stats = AttackStats {
        trials,
        ..Default::default()
    };
    for t in 0..trials as u64 {
        let outcome = run_one(
            kind,
            environment.clone(),
            vouch_distance_m,
            base_seed ^ (t << 16) ^ t,
        );
        if outcome.granted {
            stats.successes += 1;
        } else if let AuthDecision::Denied { reason } = &outcome.decision {
            *stats
                .denial_reasons
                .entry(reason_label(reason))
                .or_insert(0) += 1;
        }
    }
    stats
}

fn run_one(
    kind: AttackKind,
    environment: Environment,
    vouch_distance_m: f64,
    seed: u64,
) -> AttackOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let auth_dev = Device::phone(1, Position::ORIGIN, seed.wrapping_add(0x11));
    let vouch_dev = Device::phone(
        2,
        Position::new(vouch_distance_m, 0.0, 0.0),
        seed.wrapping_add(0x22),
    );
    let mut authn = AuthService::new(PianoConfig::default());
    authn.register(&auth_dev, &vouch_dev, &mut rng);
    let mut field = AcousticField::new(environment, seed.wrapping_mul(0x1234_5677).wrapping_add(9));
    let config = authn.config().action.clone();

    // Attacker acts before the protocol begins (it blankets/anticipates).
    let mut attacker_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xADAD_ADAD);
    match kind {
        AttackKind::ZeroEffort => {}
        AttackKind::GuessingReplay => {
            let attacker = ReplayAttacker::flanking(auth_dev.position, vouch_dev.position);
            // The attacker observes the Bluetooth send and knows the link
            // latency, so its start-command estimate is exact.
            attacker.inject_guesses(&mut field, &config, 0.035, &mut attacker_rng);
        }
        AttackKind::AllFrequency { tone_amplitude } => {
            AllFrequencyAttacker::near(auth_dev.position)
                .with_tone_amplitude(tone_amplitude)
                .inject(&mut field, &config, 0.0, 3.5, &mut attacker_rng);
            AllFrequencyAttacker::near(vouch_dev.position)
                .with_tone_amplitude(tone_amplitude)
                .inject(&mut field, &config, 0.0, 3.5, &mut attacker_rng);
        }
    }

    let decision = authn.authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng);
    AttackOutcome {
        granted: decision.is_granted(),
        decision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_batch_all_fail() {
        let stats = run_trials(
            AttackKind::GuessingReplay,
            &Environment::office(),
            6.0,
            5,
            0xABCD,
        );
        assert_eq!(stats.trials, 5);
        assert_eq!(stats.successes, 0);
        assert_eq!(stats.success_rate(), 0.0);
        assert_eq!(stats.denial_reasons.values().sum::<usize>(), 5);
    }

    #[test]
    fn all_frequency_batch_all_fail() {
        let stats = run_trials(
            AttackKind::AllFrequency {
                tone_amplitude: 4_000.0,
            },
            &Environment::office(),
            6.0,
            4,
            0x1234,
        );
        assert_eq!(stats.successes, 0);
    }

    #[test]
    fn zero_effort_batch_all_fail_when_user_away() {
        let stats = run_trials(
            AttackKind::ZeroEffort,
            &Environment::office(),
            6.0,
            4,
            0x777,
        );
        assert_eq!(stats.successes, 0);
        // Beyond acoustic range the denial reason must be signal absence.
        assert!(
            stats.denial_reasons.contains_key("signal-absent"),
            "{stats:?}"
        );
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let stats = run_trials(AttackKind::ZeroEffort, &Environment::office(), 6.0, 0, 1);
        assert_eq!(stats.success_rate(), 0.0);
    }
}
