//! # piano-attacks
//!
//! Attacker models from the paper's threat model (Sec. III) and spoofing
//! analysis (Sec. V), implemented against the full simulated stack:
//!
//! * [`zero_effort`] — the attacker simply tries to use the authenticating
//!   device while the legitimate user is away. Success requires the
//!   distance estimator to err across the threshold.
//! * [`replay`] — **guessing-based replay**: the attacker synthesizes
//!   reference signals with the same construction algorithm and plays them
//!   near the authenticating and/or vouching device, timed to fake a small
//!   distance. Succeeds only if both frequency-set guesses are exactly
//!   right.
//! * [`all_freq`] — **all-frequency spoofing**: a sine at every candidate
//!   frequency, played throughout the authentication. Defeated by the β
//!   sanity check of Algorithm 2 for any attacker power (the case analysis
//!   of Sec. V).
//! * [`analysis`] — the guessing-success probability, exact and Monte
//!   Carlo, for both signal samplers; quantifies the gap between the
//!   paper's two-stage construction and its `1/2^(N+1)` claim
//!   (DESIGN.md §5, experiment E10).
//! * [`harness`] — batch attack trials with outcome accounting, used by the
//!   security experiment (E9: 100 + 100 trials, 0 successes).

#![forbid(unsafe_code)]

pub mod all_freq;
pub mod analysis;
pub mod harness;
pub mod replay;
pub mod zero_effort;

pub use harness::{run_trials, AttackKind, AttackOutcome, AttackStats};
