//! Guessing-success probability analysis (paper Sec. V; experiment E10).
//!
//! The paper claims the probability of guessing one reference signal's
//! frequency set is `1/(2^N − 2) ≈ 1/2^N`, and that a replay needs two
//! correct guesses, for `1/2^(N+1)` overall. Two observations, both
//! quantified here and in EXPERIMENTS.md:
//!
//! 1. `1/(2^N − 2)` is correct **only for uniform-subset sampling**. The
//!    paper's own two-stage construction (uniform size, then uniform
//!    subset of that size) concentrates probability on extreme sizes: a
//!    mimicking attacker collides with probability
//!    `Σ_n 1/((N−1)²·C(N,n))` ≈ 7.7·10⁻⁵ at N = 30 — about 10⁵× the
//!    claimed bound (still far too small to matter in 100 trials, but a
//!    real gap).
//! 2. Two independent guesses multiply: the success probability is `p²`,
//!    i.e. `≈ 1/2^(2N)` for uniform subsets — the paper's `1/2^(N+1)`
//!    appears to be an algebra slip (`(1/2^N)² ≠ 1/2^(N+1)`); we report
//!    the exact figure.

use piano_core::signal::SignalSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Exact probability that two independent draws from the sampler produce
/// the same frequency subset, for a grid of `n_candidates`.
///
/// # Panics
///
/// Panics if `n_candidates < 2`.
pub fn collision_probability(sampler: SignalSampler, n_candidates: usize) -> f64 {
    assert!(n_candidates >= 2, "need at least 2 candidates");
    match sampler {
        SignalSampler::UniformSubset => {
            // All subsets with 1 ≤ |F| ≤ N−1 equally likely.
            1.0 / (2f64.powi(n_candidates as i32) - 2.0)
        }
        SignalSampler::TwoStage => {
            // P = Σ_n P(size n)²·Σ_F P(F | n)² · C(N,n)
            //   = Σ_n (1/(N−1))²·C(N,n)·(1/C(N,n))²
            //   = Σ_n 1/((N−1)²·C(N,n)).
            let nm1 = (n_candidates - 1) as f64;
            (1..n_candidates)
                .map(|k| 1.0 / (nm1 * nm1 * binomial(n_candidates, k)))
                .sum()
        }
    }
}

/// Probability that a replay attack guessing both signals succeeds:
/// the square of the single-signal collision probability.
pub fn replay_success_probability(sampler: SignalSampler, n_candidates: usize) -> f64 {
    let p = collision_probability(sampler, n_candidates);
    p * p
}

/// The paper's claimed single-guess probability `1/(2^N − 2)` (its Sec. V
/// analysis), for comparison against [`collision_probability`].
pub fn paper_claimed_single_guess(n_candidates: usize) -> f64 {
    1.0 / (2f64.powi(n_candidates as i32) - 2.0)
}

/// The paper's claimed replay probability `1/2^(N+1)` — reported verbatim
/// so EXPERIMENTS.md can show it alongside the exact value.
pub fn paper_claimed_replay(n_candidates: usize) -> f64 {
    1.0 / 2f64.powi(n_candidates as i32 + 1)
}

/// Monte-Carlo estimate of the collision probability: draws `trials`
/// independent (truth, guess) pairs and counts exact frequency-set matches.
///
/// Useful at small `n_candidates`, where collisions are observable.
pub fn monte_carlo_collision(
    sampler: SignalSampler,
    n_candidates: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials {
        let truth = sampler.sample(n_candidates, &mut rng);
        let guess = sampler.sample(n_candidates, &mut rng);
        if truth == guess {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_matches_known_values() {
        assert_eq!(binomial(6, 0), 1.0);
        assert_eq!(binomial(6, 3), 20.0);
        assert_eq!(binomial(30, 15), 155_117_520.0);
    }

    #[test]
    fn uniform_subset_matches_paper_formula() {
        assert!(
            (collision_probability(SignalSampler::UniformSubset, 30) - 1.0 / (2f64.powi(30) - 2.0))
                .abs()
                < 1e-18
        );
        assert_eq!(
            collision_probability(SignalSampler::UniformSubset, 30),
            paper_claimed_single_guess(30)
        );
    }

    #[test]
    fn two_stage_exact_small_case() {
        // N = 6: Σ_n 1/(25·C(6,n)) for n = 1..5
        //      = (1/6 + 1/15 + 1/20 + 1/15 + 1/6)/25.
        let expected = (1.0 / 6.0 + 1.0 / 15.0 + 1.0 / 20.0 + 1.0 / 15.0 + 1.0 / 6.0) / 25.0;
        assert!((collision_probability(SignalSampler::TwoStage, 6) - expected).abs() < 1e-15);
    }

    #[test]
    fn two_stage_is_much_weaker_than_claimed_at_paper_size() {
        let two_stage = collision_probability(SignalSampler::TwoStage, 30);
        let claimed = paper_claimed_single_guess(30);
        assert!(
            two_stage > 1e4 * claimed,
            "two-stage {two_stage:e} vs claimed {claimed:e}"
        );
        // Known value ≈ 7.7e-5, dominated by the singleton/co-singleton sizes.
        assert!((7e-5..9e-5).contains(&two_stage), "two-stage {two_stage:e}");
    }

    #[test]
    fn replay_squares_single_probability() {
        for sampler in [SignalSampler::TwoStage, SignalSampler::UniformSubset] {
            let p = collision_probability(sampler, 12);
            assert!((replay_success_probability(sampler, 12) - p * p).abs() < 1e-18);
        }
    }

    #[test]
    fn papers_replay_claim_is_not_the_square() {
        // Document the paper's algebra slip: 1/2^(N+1) ≫ (1/2^N)².
        let claimed = paper_claimed_replay(30);
        let exact = replay_success_probability(SignalSampler::UniformSubset, 30);
        assert!(
            claimed > 1e8 * exact,
            "claimed {claimed:e}, exact {exact:e}"
        );
    }

    #[test]
    fn monte_carlo_agrees_with_exact_small_n() {
        for sampler in [SignalSampler::TwoStage, SignalSampler::UniformSubset] {
            let exact = collision_probability(sampler, 6);
            let mc = monte_carlo_collision(sampler, 6, 60_000, 99);
            let rel = (mc - exact).abs() / exact;
            assert!(
                rel < 0.15,
                "{sampler:?}: mc {mc} vs exact {exact} (rel {rel})"
            );
        }
    }

    #[test]
    fn collisions_at_paper_size_are_unobservable() {
        // 2000 trials at N = 30 should see zero collisions for either
        // sampler (E9's 100 trials are a strict subset of this claim).
        for sampler in [SignalSampler::TwoStage, SignalSampler::UniformSubset] {
            assert_eq!(monte_carlo_collision(sampler, 30, 2_000, 7), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_grid_rejected() {
        let _ = collision_probability(SignalSampler::UniformSubset, 1);
    }
}
