//! Experiment E1 — Fig. 1(a–d): distance-estimation error bars per
//! environment.
//!
//! For each of the four environments and each real distance in
//! {0.5, 1.0, 1.5, 2.0} m, run N trials of the full ACTION protocol and
//! report the mean absolute error with its spread — the series plotted in
//! the paper's Fig. 1. Paper reference values: office 5–7 cm average
//! absolute error; street 10–15 cm.

use serde::Serialize;

use piano_acoustics::Environment;

use crate::report::{cm, Table};
use crate::trials::{run_trials, TrialSetup, TrialStats};
use crate::{PAPER_DISTANCES_M, PAPER_TRIALS_PER_POINT};

/// One (environment, distance) cell of Fig. 1.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Cell {
    /// Environment name.
    pub environment: String,
    /// True distance (m).
    pub distance_m: f64,
    /// Mean absolute error (m).
    pub mean_abs_error_m: f64,
    /// Standard deviation of the signed error (m) — the error bar.
    pub error_std_m: f64,
    /// Mean signed error (m).
    pub bias_m: f64,
    /// Trials that measured a distance.
    pub measured: usize,
    /// Trials declared signal-absent.
    pub absent: usize,
}

/// Full Fig. 1 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Result {
    /// All cells in environment-major order.
    pub cells: Vec<Fig1Cell>,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

/// Runs E1 with `trials` per point (the paper used 10).
pub fn run(trials: usize, seed: u64) -> Fig1Result {
    let mut cells = Vec::new();
    for (env_idx, env) in Environment::paper_environments().into_iter().enumerate() {
        for (d_idx, &d) in PAPER_DISTANCES_M.iter().enumerate() {
            let setup = TrialSetup::new(
                env.clone(),
                d,
                seed ^ ((env_idx as u64) << 40) ^ ((d_idx as u64) << 32),
            );
            let outcomes = run_trials(&setup, trials);
            let stats = TrialStats::of(&outcomes);
            cells.push(Fig1Cell {
                environment: env.name.clone(),
                distance_m: d,
                mean_abs_error_m: stats.mean_abs_error_m,
                error_std_m: stats.error_std_m,
                bias_m: stats.bias_m,
                measured: stats.measured,
                absent: stats.absent,
            });
        }
    }
    Fig1Result {
        cells,
        trials,
        seed,
    }
}

/// Runs E1 with the paper's 10 trials per point.
pub fn run_paper(seed: u64) -> Fig1Result {
    run(PAPER_TRIALS_PER_POINT, seed)
}

impl Fig1Result {
    /// Renders the figure as a table (one row per environment × distance).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Fig. 1 — distance estimation errors ({} trials/point)",
                self.trials
            ),
            &[
                "environment",
                "distance (m)",
                "MAE (cm)",
                "std (cm)",
                "bias (cm)",
                "absent",
            ],
        );
        for c in &self.cells {
            t.push_row(vec![
                c.environment.clone(),
                format!("{:.1}", c.distance_m),
                cm(c.mean_abs_error_m),
                cm(c.error_std_m),
                cm(c.bias_m),
                format!("{}/{}", c.absent, c.absent + c.measured),
            ]);
        }
        t
    }

    /// Mean absolute error averaged over the four distances for one
    /// environment (the summary quoted in the paper's prose).
    pub fn environment_mae_m(&self, environment: &str) -> Option<f64> {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.environment == environment)
            .map(|c| c.mean_abs_error_m)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_full_grid() {
        let result = run(2, 42);
        assert_eq!(result.cells.len(), 16); // 4 environments × 4 distances
        let table = result.table();
        assert_eq!(table.len(), 16);
        assert!(result.environment_mae_m("office").is_some());
        assert!(result.environment_mae_m("mars").is_none());
    }

    #[test]
    fn office_errors_are_centimeter_scale() {
        let result = run(3, 7);
        let office = result.environment_mae_m("office").unwrap();
        assert!(
            office < 0.20,
            "office MAE {office} m is not centimeter-scale"
        );
    }
}
