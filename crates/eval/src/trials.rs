//! Trial runner: one authenticated ranging attempt per trial, optionally
//! with interfering PIANO users, parallelized and deterministic.
//!
//! Trials drive the streaming session API
//! ([`piano_core::run_session_pair`]): each attempt wires a pair of
//! sans-IO `AuthSession` state machines to the simulated substrates, and a
//! batch shares one `Arc<Detector>` across all of its worker threads, so
//! FFT plans and window tables are built once per [`TrialSetup`] rather
//! than once per trial.

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use piano_acoustics::field::Emission;
use piano_acoustics::{AcousticField, Environment, Position};
use piano_bluetooth::{BluetoothLink, PairingRegistry};
use piano_core::action::{run_session_pair, ActionOutcome, DistanceEstimate};
use piano_core::config::ActionConfig;
use piano_core::detect::Detector;
use piano_core::device::Device;
use piano_core::signal::ReferenceSignal;

/// Configuration of a batch of ranging trials.
#[derive(Clone, Debug)]
pub struct TrialSetup {
    /// ACTION configuration (usually [`ActionConfig::default`]).
    pub action: ActionConfig,
    /// Acoustic environment.
    pub environment: Environment,
    /// True distance between the devices (m).
    pub distance_m: f64,
    /// Number of *other* PIANO user pairs running concurrently (Fig. 2a
    /// uses 2, i.e. three users total).
    pub interferer_pairs: usize,
    /// Base seed; trial `i` derives all its randomness from it.
    pub base_seed: u64,
}

impl TrialSetup {
    /// A plain single-user setup.
    pub fn new(environment: Environment, distance_m: f64, base_seed: u64) -> Self {
        TrialSetup {
            action: ActionConfig::default(),
            environment,
            distance_m,
            interferer_pairs: 0,
            base_seed,
        }
    }

    /// Enables `pairs` interfering user pairs, returning the setup.
    #[must_use]
    pub fn with_interferers(mut self, pairs: usize) -> Self {
        self.interferer_pairs = pairs;
        self
    }
}

/// The outcome of one ranging trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Ground-truth distance (m).
    pub true_distance_m: f64,
    /// ACTION's estimate, or `None` when a signal was declared absent.
    pub estimate_m: Option<f64>,
}

impl TrialOutcome {
    /// Absolute error in meters, when measured.
    pub fn abs_error_m(&self) -> Option<f64> {
        self.estimate_m.map(|e| (e - self.true_distance_m).abs())
    }

    /// Signed error in meters, when measured.
    pub fn signed_error_m(&self) -> Option<f64> {
        self.estimate_m.map(|e| e - self.true_distance_m)
    }
}

/// Runs a single trial (deterministic in `(setup.base_seed, index)`).
pub fn run_trial(setup: &TrialSetup, index: u64) -> TrialOutcome {
    run_trial_detailed(setup, index).0
}

/// Like [`run_trial`] but also returns the protocol diagnostics (used by
/// the efficiency experiment).
pub fn run_trial_detailed(setup: &TrialSetup, index: u64) -> (TrialOutcome, Option<ActionOutcome>) {
    let detector = Arc::new(Detector::new(&setup.action));
    run_trial_with_detector(setup, index, &detector)
}

/// [`run_trial_detailed`] against a caller-shared detector — the batch
/// runner amortizes one detector across every worker this way.
fn run_trial_with_detector(
    setup: &TrialSetup,
    index: u64,
    detector: &Arc<Detector>,
) -> (TrialOutcome, Option<ActionOutcome>) {
    let seed = setup
        .base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0x0123_4567_89AB_CDEF) ^ index);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut field = AcousticField::new(setup.environment.clone(), seed ^ 0x00FF_00FF);
    let mut link = BluetoothLink::new();
    let mut registry = PairingRegistry::new();
    let auth = Device::phone(1, Position::ORIGIN, seed.wrapping_add(0xA));
    let vouch = Device::phone(
        2,
        Position::new(setup.distance_m, 0.0, 0.0),
        seed.wrapping_add(0xB),
    );
    registry.pair(auth.id, vouch.id, &mut rng);

    // Interfering PIANO users: each pair plays its own randomized signals
    // on its own schedule, launched "at close times" (Sec. VI-B2).
    let mut int_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1111_2222_3333_4444);
    for p in 0..setup.interferer_pairs {
        inject_interferer_pair(&mut field, &setup.action, p, &mut int_rng);
    }

    let outcome = run_session_pair(
        detector, &mut field, &mut link, &registry, &auth, &vouch, 0.0, &mut rng,
    );
    match outcome {
        Ok(outcome) => {
            let estimate_m = match outcome.estimate {
                DistanceEstimate::Measured(d) => Some(d),
                DistanceEstimate::SignalAbsent => None,
            };
            (
                TrialOutcome {
                    true_distance_m: setup.distance_m,
                    estimate_m,
                },
                Some(outcome),
            )
        }
        Err(_) => (
            TrialOutcome {
                true_distance_m: setup.distance_m,
                estimate_m: None,
            },
            None,
        ),
    }
}

/// Emits the playback of one interfering PIANO pair: two devices ~1 m
/// apart, offset laterally from the measured pair, playing their own two
/// randomized reference signals on the standard schedule with a random
/// session start within ±0.4 s of ours.
fn inject_interferer_pair(
    field: &mut AcousticField,
    config: &ActionConfig,
    pair_index: usize,
    rng: &mut ChaCha8Rng,
) {
    // Other users sit at desk distances in the shared office (2.5 m and
    // 4 m away), not shoulder-to-shoulder.
    let y = 2.5 + pair_index as f64 * 1.5;
    let pos_a = Position::new(0.2, y, 0.0);
    let pos_v = Position::new(1.2, y, 0.0);
    let speaker_a = piano_acoustics::SpeakerModel::phone(rng.gen());
    let speaker_v = piano_acoustics::SpeakerModel::phone(rng.gen());
    let sa = ReferenceSignal::random(config, rng);
    let sv = ReferenceSignal::random(config, rng);
    // "At close times" (Sec. VI-B2): the concurrent sessions start within
    // about a second of ours. Signals are 93 ms long, so overlaps are
    // possible but not the norm — the paper observed 3 suppressed trials
    // in 40.
    let session_start = 0.035 + rng.gen_range(-2.0..2.0);
    let latency = piano_acoustics::latency::LatencyModel::phone();
    let start_a = session_start + config.play_offset_auth_s + latency.sample_playback(rng);
    let start_v = session_start + config.play_offset_vouch_s + latency.sample_playback(rng);
    field.emit(Emission {
        waveform: speaker_a.radiate(&sa.waveform(), config.sample_rate),
        start_world_s: start_a,
        sample_interval_s: 1.0 / config.sample_rate,
        position: pos_a,
    });
    field.emit(Emission {
        waveform: speaker_v.radiate(&sv.waveform(), config.sample_rate),
        start_world_s: start_v,
        sample_interval_s: 1.0 / config.sample_rate,
        position: pos_v,
    });
}

/// Runs `n` trials, parallelized across worker threads; results are in
/// trial-index order and identical to a sequential run. The pool width
/// follows [`piano_core::stream::scan_workers_from_env`], so the
/// `PIANO_SCAN_WORKERS` knob that sizes the service scan driver also
/// pins the trial runner (the CI matrix exercises both at 1 and 4).
pub fn run_trials(setup: &TrialSetup, n: usize) -> Vec<TrialOutcome> {
    if n == 0 {
        return Vec::new();
    }
    let workers = piano_core::stream::scan_workers_from_env().min(n);
    // One detector serves every worker: it is `Sync`, and sharing it means
    // plan construction happens once per batch, not once per trial.
    let detector = Arc::new(Detector::new(&setup.action));
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Dynamic work stealing over trial indices; each worker tags outcomes
    // with their index so the merge restores trial order exactly.
    let partials: Vec<Vec<(usize, TrialOutcome)>> = std::thread::scope(|scope| {
        let next = &next;
        let detector = &detector;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, run_trial_with_detector(setup, i as u64, detector).0));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<TrialOutcome>> = vec![None; n];
    for (i, outcome) in partials.into_iter().flatten() {
        results[i] = Some(outcome);
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial slot filled"))
        .collect()
}

/// Summary statistics over a batch of trial outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrialStats {
    /// Trials where a distance was measured.
    pub measured: usize,
    /// Trials where a signal was declared absent.
    pub absent: usize,
    /// Mean absolute error over measured trials (m).
    pub mean_abs_error_m: f64,
    /// Standard deviation of the signed error (m).
    pub error_std_m: f64,
    /// Mean signed error (bias) over measured trials (m).
    pub bias_m: f64,
}

impl TrialStats {
    /// Computes statistics for a batch.
    pub fn of(outcomes: &[TrialOutcome]) -> Self {
        let errors: Vec<f64> = outcomes
            .iter()
            .filter_map(TrialOutcome::signed_error_m)
            .collect();
        let absent = outcomes.len() - errors.len();
        if errors.is_empty() {
            return TrialStats {
                absent,
                ..Default::default()
            };
        }
        let summary = piano_dsp::stats::Summary::of(&errors);
        let mae = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
        TrialStats {
            measured: errors.len(),
            absent,
            mean_abs_error_m: mae,
            error_std_m: summary.std,
            bias_m: summary.mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_setup() -> TrialSetup {
        TrialSetup::new(Environment::anechoic(), 1.0, 0xDEAD)
    }

    #[test]
    fn trials_are_deterministic_by_index() {
        let setup = quick_setup();
        assert_eq!(run_trial(&setup, 3), run_trial(&setup, 3));
        assert_ne!(run_trial(&setup, 3), run_trial(&setup, 4));
    }

    #[test]
    fn parallel_matches_sequential() {
        let setup = quick_setup();
        let parallel = run_trials(&setup, 4);
        let sequential: Vec<TrialOutcome> = (0..4).map(|i| run_trial(&setup, i as u64)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn stats_handle_absent_and_measured() {
        let outcomes = vec![
            TrialOutcome {
                true_distance_m: 1.0,
                estimate_m: Some(1.05),
            },
            TrialOutcome {
                true_distance_m: 1.0,
                estimate_m: Some(0.95),
            },
            TrialOutcome {
                true_distance_m: 1.0,
                estimate_m: None,
            },
        ];
        let stats = TrialStats::of(&outcomes);
        assert_eq!(stats.measured, 2);
        assert_eq!(stats.absent, 1);
        assert!((stats.mean_abs_error_m - 0.05).abs() < 1e-12);
        assert!(stats.bias_m.abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_defined() {
        assert_eq!(run_trials(&quick_setup(), 0), Vec::new());
        let stats = TrialStats::of(&[]);
        assert_eq!(stats.measured, 0);
    }

    #[test]
    fn interferers_are_injected() {
        // With interferers the recording contains extra emissions; the
        // trial still completes (possibly absent, per the paper's 3/40).
        let setup = quick_setup().with_interferers(2);
        let outcome = run_trial(&setup, 1);
        assert_eq!(outcome.true_distance_m, 1.0);
    }
}
