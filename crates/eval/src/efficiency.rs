//! Experiment E8 — Sec. VI-D: time and energy per authentication.
//!
//! The paper: "one authentication can be finished within around 3 seconds"
//! and "performing 100 times of authentication only consumes 0.6% of the
//! smartphone battery" (measured with PowerTutor on a Galaxy S4).
//!
//! The reproduction feeds *measured protocol diagnostics* (recording
//! length, FFT counts from the actual detector scans, Bluetooth bytes and
//! message counts from the actual link) into the S4-class timing and
//! energy cost models of [`piano_acoustics::timing`] and
//! [`piano_acoustics::energy`].

use serde::Serialize;

use piano_acoustics::energy::{EnergyModel, PhaseDurations};
use piano_acoustics::timing::TimingModel;
use piano_acoustics::Environment;

use crate::report::Table;
use crate::trials::{run_trial_detailed, TrialSetup};

/// Efficiency result for one authentication.
#[derive(Clone, Debug, Serialize)]
pub struct EfficiencyResult {
    /// Phase durations of one authentication.
    pub durations: PhaseDurations,
    /// Total wall-clock latency (s). Paper: ≈3 s.
    pub total_latency_s: f64,
    /// Energy per authentication (J).
    pub energy_per_auth_j: f64,
    /// Battery percentage for 100 authentications. Paper: ≈0.6 %.
    pub battery_percent_100: f64,
    /// FFTs per device scan (from the real detector).
    pub ffts_per_device: usize,
    /// Bluetooth payload bytes per authentication.
    pub bluetooth_bytes: usize,
    /// Bluetooth messages per authentication.
    pub bluetooth_messages: usize,
}

/// Runs E8: executes one real protocol run for the diagnostics, then
/// evaluates the cost models.
pub fn run(seed: u64) -> EfficiencyResult {
    let setup = TrialSetup::new(Environment::office(), 1.0, seed);
    let (_, outcome) = run_trial_detailed(&setup, 0);
    let outcome = outcome.expect("protocol must complete at 1 m");
    let d = outcome.diagnostics;

    let timing = TimingModel::galaxy_s4();
    let playback_s = setup.action.signal_len as f64 / setup.action.sample_rate;
    let ffts = d.ffts_auth.max(d.ffts_vouch);
    let durations = timing.phase_durations(
        setup.action.recording_duration_s,
        playback_s,
        ffts,
        d.bluetooth_bytes,
        d.bluetooth_messages,
    );
    let energy = EnergyModel::galaxy_s4();
    EfficiencyResult {
        durations,
        total_latency_s: timing.total_latency_s(&durations),
        energy_per_auth_j: energy.energy_per_auth_j(&durations),
        battery_percent_100: energy.battery_percent(&durations, 100),
        ffts_per_device: ffts,
        bluetooth_bytes: d.bluetooth_bytes,
        bluetooth_messages: d.bluetooth_messages,
    }
}

impl EfficiencyResult {
    /// Renders the budget breakdown.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sec. VI-D — efficiency (S4-class cost models on measured diagnostics)",
            &["quantity", "value", "paper"],
        );
        t.push_row(vec![
            "total latency".into(),
            format!("{:.2} s", self.total_latency_s),
            "≈3 s".into(),
        ]);
        t.push_row(vec![
            "recording window".into(),
            format!("{:.2} s", self.durations.recording_s),
            "—".into(),
        ]);
        t.push_row(vec![
            "compute (detection)".into(),
            format!(
                "{:.2} s ({} FFTs)",
                self.durations.compute_s, self.ffts_per_device
            ),
            "—".into(),
        ]);
        t.push_row(vec![
            "bluetooth".into(),
            format!(
                "{:.2} s ({} msgs, {} B)",
                self.durations.bluetooth_s, self.bluetooth_messages, self.bluetooth_bytes
            ),
            "—".into(),
        ]);
        t.push_row(vec![
            "energy / auth".into(),
            format!("{:.2} J", self.energy_per_auth_j),
            "—".into(),
        ]);
        t.push_row(vec![
            "battery / 100 auths".into(),
            format!("{:.2} %", self.battery_percent_100),
            "≈0.6 %".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_scale() {
        let r = run(17);
        assert!(r.total_latency_s < 3.5, "latency {} s", r.total_latency_s);
        assert!(
            r.total_latency_s > 1.5,
            "latency {} s suspiciously low",
            r.total_latency_s
        );
        assert!(
            (0.2..1.2).contains(&r.battery_percent_100),
            "battery {} %",
            r.battery_percent_100
        );
        assert!(r.ffts_per_device > 50);
        assert!(r.bluetooth_bytes > 100);
        let _ = r.table();
    }
}
