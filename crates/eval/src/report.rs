//! Result rendering: fixed-width text tables for stdout and
//! machine-readable JSON for archival next to EXPERIMENTS.md.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple text table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:w$} |", w = *w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Writes a serializable result as pretty JSON under `dir/name.json`.
/// Creates the directory if needed.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Formats meters as centimeters with one decimal ("12.3").
pub fn cm(meters: f64) -> String {
    format!("{:.1}", meters * 100.0)
}

/// Formats a probability as a percentage with one decimal ("5.6%").
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

/// Formats a probability as a percentage with two decimals ("0.31%").
pub fn pct2(p: f64) -> String {
    format!("{:.2}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["env", "value"]);
        t.push_row(vec!["office".into(), "5.6".into()]);
        t.push_row(vec!["street-long-name".into(), "12.6".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| office "));
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(cm(0.056), "5.6");
        assert_eq!(pct(0.056), "5.6%");
        assert_eq!(pct2(0.0031), "0.31%");
    }

    #[test]
    fn write_json_roundtrips() {
        let dir = std::env::temp_dir().join("piano-eval-test");
        write_json(&dir, "demo", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(body.contains('2'));
    }
}
