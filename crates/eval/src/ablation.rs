//! Ablations A1–A6: design choices the paper commits to, quantified.
//!
//! | Id | Knob | Paper's choice | Question |
//! |----|------|----------------|----------|
//! | A1 | fine scan step δ | 10 | accuracy/work trade-off |
//! | A2 | smoothing width θ | 5 | tolerance vs selectivity |
//! | A3 | candidate count N | 30 | accuracy vs guessing security |
//! | A4 | β sanity check | on | spoofing resistance (Sec. V claim) |
//! | A5 | Echo latency jitter | phone-scale | why one-way ranging fails |
//! | A6 | analysis window | rectangular | localization vs leakage |

use serde::Serialize;

use piano_acoustics::Environment;
use piano_attacks::{run_trials as run_attack_trials, AttackKind};
use piano_core::config::ActionConfig;
use piano_core::freqgrid::FrequencyGrid;
use piano_core::signal::SignalSampler;
use piano_dsp::window::WindowKind;

use crate::report::{cm, Table};
use crate::trials::{run_trials, TrialSetup, TrialStats};

/// One ablation data point.
#[derive(Clone, Debug, Serialize)]
pub struct AblationPoint {
    /// Which ablation (A1..A6).
    pub ablation: String,
    /// The knob value, rendered.
    pub setting: String,
    /// Primary metric, rendered (metric named in `metric`).
    pub value: String,
    /// What the metric is.
    pub metric: String,
}

/// Full ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct AblationResult {
    /// All points, grouped by ablation id.
    pub points: Vec<AblationPoint>,
    /// Trials per point.
    pub trials: usize,
}

fn ranging_mae(action: ActionConfig, trials: usize, seed: u64) -> (f64, usize) {
    let mut setup = TrialSetup::new(Environment::office(), 1.0, seed);
    setup.action = action;
    let outcomes = run_trials(&setup, trials);
    let stats = TrialStats::of(&outcomes);
    (stats.mean_abs_error_m, stats.absent)
}

/// Runs all ablations with `trials` protocol runs per point.
pub fn run(trials: usize, seed: u64) -> AblationResult {
    let mut points = Vec::new();

    // A1: fine step.
    for step in [1usize, 10, 50, 200] {
        let cfg = ActionConfig {
            fine_step: step,
            ..ActionConfig::default()
        };
        let (mae, absent) = ranging_mae(cfg, trials, seed ^ 0xA1);
        points.push(AblationPoint {
            ablation: "A1 fine step δ".into(),
            setting: format!("{step}"),
            value: format!("{} cm ({} absent)", cm(mae), absent),
            metric: "office MAE @1 m".into(),
        });
    }

    // A2: smoothing width θ.
    for theta in [1usize, 3, 5, 10] {
        let cfg = ActionConfig {
            theta,
            ..ActionConfig::default()
        };
        let (mae, absent) = ranging_mae(cfg, trials, seed ^ 0xA2);
        points.push(AblationPoint {
            ablation: "A2 smoothing θ".into(),
            setting: format!("{theta}"),
            value: format!("{} cm ({} absent)", cm(mae), absent),
            metric: "office MAE @1 m".into(),
        });
    }

    // A3: candidate count N — accuracy and guessing security together.
    for n in [10usize, 20, 30] {
        let cfg = ActionConfig {
            grid: FrequencyGrid::new(25_000.0, 35_000.0, n).expect("valid grid"),
            ..ActionConfig::default()
        };
        let (mae, absent) = ranging_mae(cfg, trials, seed ^ 0xA3);
        let guess = piano_attacks::analysis::collision_probability(SignalSampler::UniformSubset, n);
        points.push(AblationPoint {
            ablation: "A3 candidates N".into(),
            setting: format!("{n}"),
            value: format!("{} cm ({} absent), P(guess) {:.1e}", cm(mae), absent, guess),
            metric: "office MAE @1 m + guessing odds".into(),
        });
    }

    // A4: β sanity check on/off under the all-frequency attack.
    for enforce in [true, false] {
        // Success rate of the mid-power all-frequency attack.
        let (successes, n) = if enforce {
            let stats = run_attack_trials(
                AttackKind::AllFrequency {
                    tone_amplitude: 1_500.0,
                },
                &Environment::office(),
                6.0,
                trials,
                seed ^ 0xA4,
            );
            (stats.successes, stats.trials)
        } else {
            // Custom run with the check disabled: replicate the harness
            // geometry but patch the authenticator config.
            run_attack_trials_no_beta(trials, seed ^ 0xA4)
        };
        points.push(AblationPoint {
            ablation: "A4 β sanity check".into(),
            setting: if enforce {
                "enforced".into()
            } else {
                "disabled".into()
            },
            value: format!("{successes}/{n} attacks succeed"),
            metric: "all-frequency spoofing success".into(),
        });
    }

    // A5: Echo-Secure error vs latency jitter scale.
    for scale in [0.0, 0.25, 1.0, 2.0] {
        let err = echo_error_with_jitter(scale, trials, seed ^ 0xA5);
        points.push(AblationPoint {
            ablation: "A5 Echo latency jitter".into(),
            setting: format!("×{scale}"),
            value: format!("{} cm", cm(err)),
            metric: "Echo-Secure MAE @1 m".into(),
        });
    }

    // A6: analysis window.
    for window in [WindowKind::Rectangular, WindowKind::Hann] {
        let cfg = ActionConfig {
            analysis_window: window,
            ..ActionConfig::default()
        };
        let (mae, absent) = ranging_mae(cfg, trials, seed ^ 0xA6);
        points.push(AblationPoint {
            ablation: "A6 analysis window".into(),
            setting: format!("{window:?}"),
            value: format!("{} cm ({} absent)", cm(mae), absent),
            metric: "office MAE @1 m".into(),
        });
    }

    AblationResult { points, trials }
}

/// All-frequency attack with the β check disabled: (successes, trials).
fn run_attack_trials_no_beta(trials: usize, seed: u64) -> (usize, usize) {
    use piano_acoustics::{AcousticField, Position};
    use piano_attacks::all_freq::AllFrequencyAttacker;
    use piano_core::device::Device;
    use piano_core::piano::PianoConfig;
    use piano_core::stream::AuthService;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let mut successes = 0;
    for t in 0..trials as u64 {
        let s = seed ^ (t << 10) ^ t;
        let mut rng = ChaCha8Rng::seed_from_u64(s);
        let auth_dev = Device::phone(1, Position::ORIGIN, s + 1);
        let vouch_dev = Device::phone(2, Position::new(6.0, 0.0, 0.0), s + 2);
        let mut config = PianoConfig::default();
        config.action.enforce_beta_check = false;
        let mut authn = AuthService::new(config);
        authn.register(&auth_dev, &vouch_dev, &mut rng);
        let mut field = AcousticField::new(Environment::office(), s ^ 0xAB);
        let mut attacker_rng = ChaCha8Rng::seed_from_u64(s ^ 0xFFFF);
        let action = authn.config().action.clone();
        AllFrequencyAttacker::near(auth_dev.position)
            .with_tone_amplitude(1_500.0)
            .inject(&mut field, &action, 0.0, 3.5, &mut attacker_rng);
        AllFrequencyAttacker::near(vouch_dev.position)
            .with_tone_amplitude(1_500.0)
            .inject(&mut field, &action, 0.0, 3.5, &mut attacker_rng);
        if authn
            .authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng)
            .is_granted()
        {
            successes += 1;
        }
    }
    (successes, trials)
}

/// Echo-Secure MAE at 1 m with latency jitter scaled by `scale`.
fn echo_error_with_jitter(scale: f64, trials: usize, seed: u64) -> f64 {
    use piano_acoustics::{AcousticField, Position};
    use piano_baselines::echo::EchoCalibration;
    use piano_bluetooth::{BluetoothLink, PairingRegistry};
    use piano_core::action::DistanceEstimate;
    use piano_core::device::Device;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let config = ActionConfig::default();
    let make = |d: f64, s: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(s);
        let field = AcousticField::new(Environment::office(), s ^ 0xE5E5);
        let link = BluetoothLink::new();
        let mut registry = PairingRegistry::new();
        let mut auth = Device::phone(1, Position::ORIGIN, s + 1);
        let mut vouch = Device::phone(2, Position::new(d, 0.0, 0.0), s + 2);
        auth.latency = auth.latency.with_jitter_scale(scale);
        vouch.latency = vouch.latency.with_jitter_scale(scale);
        registry.pair(auth.id, vouch.id, &mut rng);
        (field, link, registry, auth, vouch, rng)
    };

    let (mut field, mut link, registry, auth, vouch, mut rng) = make(0.05, seed);
    let cal = EchoCalibration::calibrate(
        &config, &mut field, &mut link, &registry, &auth, &vouch, 6, &mut rng,
    )
    .expect("calibration");

    let mut total = 0.0;
    let mut n = 0;
    for t in 0..trials as u64 {
        let (mut field, mut link, registry, auth, vouch, mut rng) = make(1.0, seed ^ (t << 7));
        if let Ok(DistanceEstimate::Measured(est)) = piano_baselines::run_echo_secure(
            &config, &mut field, &mut link, &registry, &auth, &vouch, &cal, 0.0, &mut rng,
        ) {
            total += (est - 1.0).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

impl AblationResult {
    /// Renders all ablation points.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!("Ablations A1–A6 ({} trials/point)", self.trials),
            &["ablation", "setting", "result", "metric"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.ablation.clone(),
                p.setting.clone(),
                p.value.clone(),
                p.metric.clone(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_error_grows_with_jitter() {
        let small = echo_error_with_jitter(0.0, 3, 5);
        let large = echo_error_with_jitter(2.0, 3, 5);
        assert!(
            large > small,
            "echo error should grow with jitter: {small} vs {large}"
        );
    }

    #[test]
    fn beta_matters_against_all_frequency() {
        // With the β check off, the mid-power attack should start working
        // at least occasionally; with it on, never.
        let (on, _) = {
            let stats = run_attack_trials(
                AttackKind::AllFrequency {
                    tone_amplitude: 1_500.0,
                },
                &Environment::office(),
                6.0,
                3,
                77,
            );
            (stats.successes, stats.trials)
        };
        assert_eq!(on, 0);
        // The disabled case is probabilistic; just verify it runs.
        let (_, trials) = run_attack_trials_no_beta(2, 78);
        assert_eq!(trials, 2);
    }
}
