//! Experiment E10 — Sec. V guessing probabilities.
//!
//! Quantifies the gap analyzed in DESIGN.md §5: the paper's claimed
//! `1/(2^N−2)` single-guess probability holds for uniform-subset sampling
//! but not for its own two-stage construction, and the replay probability
//! is the square of the single-guess probability (the paper's `1/2^(N+1)`
//! appears to be an algebra slip). Monte-Carlo estimates at a small grid
//! size validate the closed forms.

use serde::Serialize;

use piano_attacks::analysis::{
    collision_probability, monte_carlo_collision, paper_claimed_replay, paper_claimed_single_guess,
    replay_success_probability,
};
use piano_core::signal::SignalSampler;

use crate::report::Table;

/// One sampler's row of the analysis.
#[derive(Clone, Debug, Serialize)]
pub struct GuessingRow {
    /// Sampler label.
    pub sampler: String,
    /// Exact single-guess collision probability at N = 30.
    pub single_exact: f64,
    /// Exact replay (two-guess) probability at N = 30.
    pub replay_exact: f64,
    /// Monte-Carlo single-guess estimate at N = 6 (validation).
    pub mc_small_n: f64,
    /// Exact single-guess at N = 6 (validation target).
    pub exact_small_n: f64,
}

/// Full E10 result.
#[derive(Clone, Debug, Serialize)]
pub struct GuessingResult {
    /// Per-sampler rows.
    pub rows: Vec<GuessingRow>,
    /// The paper's claimed single-guess probability at N = 30.
    pub paper_single: f64,
    /// The paper's claimed replay probability at N = 30.
    pub paper_replay: f64,
}

/// Runs E10 (`mc_trials` Monte-Carlo draws at N = 6 per sampler).
pub fn run(mc_trials: usize, seed: u64) -> GuessingResult {
    let rows = [SignalSampler::TwoStage, SignalSampler::UniformSubset]
        .into_iter()
        .map(|sampler| GuessingRow {
            sampler: format!("{sampler:?}"),
            single_exact: collision_probability(sampler, 30),
            replay_exact: replay_success_probability(sampler, 30),
            mc_small_n: monte_carlo_collision(sampler, 6, mc_trials, seed),
            exact_small_n: collision_probability(sampler, 6),
        })
        .collect();
    GuessingResult {
        rows,
        paper_single: paper_claimed_single_guess(30),
        paper_replay: paper_claimed_replay(30),
    }
}

impl GuessingResult {
    /// Renders the analysis.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sec. V — guessing probabilities (N = 30 candidates)",
            &[
                "sampler",
                "P(guess one)",
                "P(replay)",
                "MC @N=6",
                "exact @N=6",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.sampler.clone(),
                format!("{:.3e}", r.single_exact),
                format!("{:.3e}", r.replay_exact),
                format!("{:.4}", r.mc_small_n),
                format!("{:.4}", r.exact_small_n),
            ]);
        }
        t.push_row(vec![
            "paper claims".into(),
            format!("{:.3e}", self.paper_single),
            format!("{:.3e}", self.paper_replay),
            "—".into(),
            "—".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_is_consistent() {
        let r = run(20_000, 3);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            let rel = (row.mc_small_n - row.exact_small_n).abs() / row.exact_small_n;
            assert!(
                rel < 0.25,
                "{}: MC {} vs exact {}",
                row.sampler,
                row.mc_small_n,
                row.exact_small_n
            );
        }
        // The uniform-subset row matches the paper's single-guess claim.
        let uniform = r
            .rows
            .iter()
            .find(|r| r.sampler.contains("Uniform"))
            .unwrap();
        assert!((uniform.single_exact - r.paper_single).abs() < 1e-15);
        let _ = r.table();
    }
}
