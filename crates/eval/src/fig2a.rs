//! Experiment E2 — Fig. 2a: multiple users in a shared office.
//!
//! Sec. VI-B2: three PIANO users launch the system "at close times" — we
//! measure one pair while two other pairs play their own randomized
//! reference signals nearby. Two paper observations to reproduce:
//!
//! 1. occasionally a signal overlap trips the sanity check and the trial
//!    reports "not present" (the paper saw 3 of 40 trials);
//! 2. errors in the remaining trials are only slightly larger than the
//!    single-user office case (Fig. 1a).

use serde::Serialize;

use piano_acoustics::Environment;

use crate::report::{cm, Table};
use crate::trials::{run_trials, TrialSetup, TrialStats};
use crate::{PAPER_DISTANCES_M, PAPER_TRIALS_PER_POINT};

/// One distance row of Fig. 2a.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2aCell {
    /// True distance (m).
    pub distance_m: f64,
    /// Mean absolute error among measured trials (m).
    pub mean_abs_error_m: f64,
    /// Error-bar standard deviation (m).
    pub error_std_m: f64,
    /// Measured trials.
    pub measured: usize,
    /// Trials where overlap suppressed detection.
    pub absent: usize,
}

/// Full Fig. 2a result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2aResult {
    /// Rows at the paper's four distances.
    pub cells: Vec<Fig2aCell>,
    /// Interfering pairs (paper: 2, i.e. three users total).
    pub interferer_pairs: usize,
    /// Trials per distance.
    pub trials: usize,
    /// Total not-present count across all trials (paper: 3 of 40).
    pub total_absent: usize,
    /// Base seed.
    pub seed: u64,
}

/// Runs E2.
pub fn run(trials: usize, seed: u64) -> Fig2aResult {
    let interferer_pairs = 2;
    let mut cells = Vec::new();
    let mut total_absent = 0;
    for (d_idx, &d) in PAPER_DISTANCES_M.iter().enumerate() {
        let setup = TrialSetup::new(Environment::office(), d, seed ^ ((d_idx as u64) << 24))
            .with_interferers(interferer_pairs);
        let outcomes = run_trials(&setup, trials);
        let stats = TrialStats::of(&outcomes);
        total_absent += stats.absent;
        cells.push(Fig2aCell {
            distance_m: d,
            mean_abs_error_m: stats.mean_abs_error_m,
            error_std_m: stats.error_std_m,
            measured: stats.measured,
            absent: stats.absent,
        });
    }
    Fig2aResult {
        cells,
        interferer_pairs,
        trials,
        total_absent,
        seed,
    }
}

/// Runs E2 at the paper's scale (10 trials × 4 distances = 40).
pub fn run_paper(seed: u64) -> Fig2aResult {
    run(PAPER_TRIALS_PER_POINT, seed)
}

impl Fig2aResult {
    /// Renders the result rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Fig. 2a — multi-user office ({} interfering pairs, {} trials/distance; \
                 overlap-suppressed trials: {}/{})",
                self.interferer_pairs,
                self.trials,
                self.total_absent,
                self.trials * self.cells.len()
            ),
            &["distance (m)", "MAE (cm)", "std (cm)", "absent"],
        );
        for c in &self.cells {
            t.push_row(vec![
                format!("{:.1}", c.distance_m),
                cm(c.mean_abs_error_m),
                cm(c.error_std_m),
                format!("{}", c.absent),
            ]);
        }
        t
    }

    /// Grand mean absolute error over measured trials (m).
    pub fn overall_mae_m(&self) -> f64 {
        let (sum, n) = self.cells.iter().fold((0.0, 0usize), |(s, n), c| {
            (s + c.mean_abs_error_m * c.measured as f64, n + c.measured)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows_and_tolerates_interference() {
        let r = run(2, 9);
        assert_eq!(r.cells.len(), 4);
        // Most trials must still measure: interference is disruptive only
        // on signal overlap.
        let measured: usize = r.cells.iter().map(|c| c.measured).sum();
        assert!(measured >= 5, "only {measured}/8 trials measured");
        let _ = r.table();
    }
}
