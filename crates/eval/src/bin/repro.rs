//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT…] [--trials N] [--seed S] [--out DIR]
//!
//! EXPERIMENT: all | fig1 | fig2a | fig2b | tables | wall | range |
//!             efficiency | security | guessing | ablation
//! ```
//!
//! Results print as text tables and are archived as JSON under `--out`
//! (default `results/`).

use std::path::PathBuf;

use piano_eval::{
    ablation, efficiency, fig1, fig2a, fig2b, guessing, range, report, security, tables, wall,
};

struct Args {
    experiments: Vec<String>,
    trials: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut experiments = Vec::new();
    let mut trials = piano_eval::PAPER_TRIALS_PER_POINT;
    let mut seed = 20170411; // the paper's arXiv date
    let mut out = PathBuf::from("results");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trials" => {
                trials = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials needs a number"));
            }
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--out" => {
                out = argv
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [all|fig1|fig2a|fig2b|tables|wall|range|efficiency|security|\
                     guessing|ablation]… [--trials N] [--seed S] [--out DIR]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiments.push(other.to_owned()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_owned());
    }
    Args {
        experiments,
        trials,
        seed,
        out,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let run_all = args.experiments.iter().any(|e| e == "all");
    let wants = |name: &str| run_all || args.experiments.iter().any(|e| e == name);
    let mut ran = 0;

    if wants("fig1") {
        let r = fig1::run(args.trials, args.seed);
        println!("{}", r.table().render());
        archive(&args, "fig1", &r);
        ran += 1;
    }
    if wants("fig2a") {
        let r = fig2a::run(args.trials, args.seed ^ 0x2A);
        println!("{}", r.table().render());
        archive(&args, "fig2a", &r);
        ran += 1;
    }
    if wants("fig2b") {
        let r = fig2b::run(args.trials, args.seed ^ 0x2B);
        println!("{}", r.table().render());
        archive(&args, "fig2b", &r);
        ran += 1;
    }
    if wants("tables") || wants("table1") || wants("table2") {
        let r = tables::run(args.trials.max(8), args.seed ^ 0x7AB);
        println!("{}", r.table_frr().render());
        println!("{}", r.table_far().render());
        archive(&args, "tables", &r);
        ran += 1;
    }
    if wants("wall") {
        let r = wall::run(args.trials, args.seed ^ 0x3A11);
        println!("{}", r.table().render());
        archive(&args, "wall", &r);
        ran += 1;
    }
    if wants("range") {
        let r = range::run(args.trials.min(8), args.seed ^ 0x4A);
        println!("{}", r.table().render());
        archive(&args, "range", &r);
        ran += 1;
    }
    if wants("efficiency") {
        let r = efficiency::run(args.seed ^ 0xEF);
        println!("{}", r.table().render());
        archive(&args, "efficiency", &r);
        ran += 1;
    }
    if wants("security") {
        let trials = if run_all { args.trials.max(10) } else { 100 };
        let r = security::run(trials, args.seed ^ 0x5EC);
        println!("{}", r.table().render());
        println!(
            "total attack successes: {} (paper: 0 in 100+100 trials)\n",
            r.total_successes()
        );
        archive(&args, "security", &r);
        ran += 1;
    }
    if wants("guessing") {
        let r = guessing::run(100_000, args.seed ^ 0x6E);
        println!("{}", r.table().render());
        archive(&args, "guessing", &r);
        ran += 1;
    }
    if wants("ablation") {
        let r = ablation::run(args.trials.min(8), args.seed ^ 0xAB1);
        println!("{}", r.table().render());
        archive(&args, "ablation", &r);
        ran += 1;
    }

    if ran == 0 {
        die(&format!("no experiment matched {:?}", args.experiments));
    }
    eprintln!(
        "done: {ran} experiment group(s); JSON archived under {}",
        args.out.display()
    );
}

fn archive<T: serde::Serialize>(args: &Args, name: &str, value: &T) {
    if let Err(e) = report::write_json(&args.out, name, value) {
        eprintln!("warning: could not archive {name}: {e}");
    }
}
