//! Experiments E4 & E5 — Tables I and II: FRRs and FARs.
//!
//! The paper's methodology (Sec. VI-C), followed exactly:
//!
//! 1. estimate the constant σ_d per scenario by averaging the per-distance
//!    standard deviations of the ranging trials at 0.5/1.0/1.5/2.0 m;
//! 2. model the estimate as Gaussian `N(d, σ_d²)`;
//! 3. FRR(τ) = mean over legitimate distances `d ≤ τ` of `Q((τ−d)/σ)`;
//!    FAR(τ) = mean over illegitimate `τ < d ≤ 10 m` of acceptance
//!    probability, zero beyond the acoustic range d_s and beyond Bluetooth.
//!
//! A direct Monte-Carlo cross-check (threshold decisions on fresh
//! simulated runs) is included for the FRR side, where rates are large
//! enough to measure at paper scale.

use serde::Serialize;

use piano_acoustics::Environment;
use piano_core::metrics::{estimate_sigma, GaussianRangingModel};

use crate::report::{pct, pct2, Table};
use crate::trials::{run_trials, TrialSetup};
use crate::{PAPER_DISTANCES_M, PAPER_THRESHOLDS_M};

/// The five scenario rows of Tables I/II.
pub const SCENARIOS: [&str; 5] = ["office", "home", "street", "restaurant", "multiple users"];

/// Per-scenario model and derived rates.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioRates {
    /// Scenario label (paper row).
    pub scenario: String,
    /// Fitted σ_d (m).
    pub sigma_m: f64,
    /// FRR at each threshold of [`PAPER_THRESHOLDS_M`].
    pub frr: Vec<f64>,
    /// FAR at each threshold.
    pub far: Vec<f64>,
}

/// Full Tables I & II result.
#[derive(Clone, Debug, Serialize)]
pub struct TablesResult {
    /// One entry per scenario row.
    pub rows: Vec<ScenarioRates>,
    /// Ranging trials per (scenario, distance) used for the σ fit.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

fn scenario_setup(scenario: &str, d: f64, seed: u64) -> TrialSetup {
    match scenario {
        "office" => TrialSetup::new(Environment::office(), d, seed),
        "home" => TrialSetup::new(Environment::home(), d, seed),
        "street" => TrialSetup::new(Environment::street(), d, seed),
        "restaurant" => TrialSetup::new(Environment::restaurant(), d, seed),
        "multiple users" => TrialSetup::new(Environment::office(), d, seed).with_interferers(2),
        other => panic!("unknown scenario {other}"),
    }
}

/// Fits σ_d for one scenario from fresh ranging trials, the paper's way.
///
/// Estimates outside the physically plausible band `(-0.5 m, 3.0 m)` are
/// discarded before fitting: a reading beyond the maximum acoustic range
/// d_s is self-contradictory (the signal could not have been detected from
/// there) and a real deployment would rerun rather than trust it. This
/// only matters for the multi-user scenario, where rare partial-overlap
/// trials displace the detection peak by meters (see EXPERIMENTS.md E2).
pub fn fit_sigma(scenario: &str, trials: usize, seed: u64) -> f64 {
    let mut pairs = Vec::new();
    for (d_idx, &d) in PAPER_DISTANCES_M.iter().enumerate() {
        let setup = scenario_setup(scenario, d, seed ^ ((d_idx as u64) << 16));
        for outcome in run_trials(&setup, trials) {
            if let Some(est) = outcome.estimate_m {
                if (-0.5..3.0).contains(&est) {
                    pairs.push((d, est));
                }
            }
        }
    }
    estimate_sigma(&pairs).expect("enough measured trials to fit sigma")
}

/// Runs E4+E5: fits σ per scenario and evaluates the Gaussian model.
pub fn run(trials: usize, seed: u64) -> TablesResult {
    let rows = SCENARIOS
        .iter()
        .enumerate()
        .map(|(s_idx, scenario)| {
            let sigma = fit_sigma(scenario, trials, seed ^ ((s_idx as u64) << 48));
            let model = GaussianRangingModel::with_sigma(sigma.max(1e-4));
            ScenarioRates {
                scenario: (*scenario).to_owned(),
                sigma_m: sigma,
                frr: PAPER_THRESHOLDS_M.iter().map(|&t| model.frr(t)).collect(),
                far: PAPER_THRESHOLDS_M.iter().map(|&t| model.far(t)).collect(),
            }
        })
        .collect();
    TablesResult { rows, trials, seed }
}

impl TablesResult {
    /// Renders Table I (FRRs).
    pub fn table_frr(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Table I — FRRs (σ fitted from {} trials/distance)",
                self.trials
            ),
            &["scenario", "σ (cm)", "0.5m", "1.0m", "1.5m", "2.0m"],
        );
        for r in &self.rows {
            let mut row = vec![r.scenario.clone(), format!("{:.1}", r.sigma_m * 100.0)];
            row.extend(r.frr.iter().map(|&p| pct(p)));
            t.push_row(row);
        }
        t
    }

    /// Renders Table II (FARs).
    pub fn table_far(&self) -> Table {
        let mut t = Table::new(
            "Table II — FARs (within Bluetooth range)",
            &["scenario", "0.5m", "1.0m", "1.5m", "2.0m"],
        );
        for r in &self.rows {
            let mut row = vec![r.scenario.clone()];
            row.extend(r.far.iter().map(|&p| pct2(p)));
            t.push_row(row);
        }
        t
    }
}

/// Direct Monte-Carlo FRR at one threshold for a scenario: fraction of
/// legitimate attempts (true distance drawn uniformly in `(0, τ]`) that are
/// denied. Cross-checks the model-based Table I.
pub fn monte_carlo_frr(scenario: &str, tau_m: f64, attempts: usize, seed: u64) -> f64 {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut rejected = 0;
    for a in 0..attempts {
        let d = rng.gen_range(0.05..tau_m);
        let setup = scenario_setup(scenario, d, seed ^ ((a as u64) << 8));
        let outcome = crate::trials::run_trial(&setup, a as u64);
        match outcome.estimate_m {
            Some(est) if est <= tau_m => {}
            _ => rejected += 1,
        }
    }
    rejected as f64 / attempts.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_follow_paper_shape() {
        let r = run(4, 11);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            // FRR decreases with threshold; FAR stays within a small band.
            assert!(row.frr[0] > row.frr[3], "{}: {:?}", row.scenario, row.frr);
            assert!(
                row.far.iter().all(|&f| f < 0.03),
                "{}: {:?}",
                row.scenario,
                row.far
            );
            assert!(row.sigma_m > 0.0 && row.sigma_m < 0.5);
        }
        // Ordering: office σ < street σ (Fig. 1 / Table I ordering).
        let office = r
            .rows
            .iter()
            .find(|x| x.scenario == "office")
            .unwrap()
            .sigma_m;
        let street = r
            .rows
            .iter()
            .find(|x| x.scenario == "street")
            .unwrap()
            .sigma_m;
        assert!(office < street);
        let _ = (r.table_frr(), r.table_far());
    }

    #[test]
    fn monte_carlo_frr_is_a_probability() {
        let frr = monte_carlo_frr("office", 1.0, 4, 3);
        assert!((0.0..=1.0).contains(&frr));
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        let _ = fit_sigma("spaceship", 1, 1);
    }
}
