//! Experiment E9 — Sec. VI-E: attack trials.
//!
//! "We performed 100 trials of guessing-based replay attacks and
//! all-frequency-based spoofing attacks … all these attack trials failed."
//!
//! The reproduction runs the same batches through the full stack (plus a
//! zero-effort batch, and a power sweep of the all-frequency attack over
//! the paper's three `P_a` regimes).

use serde::Serialize;

use piano_acoustics::Environment;
use piano_attacks::{run_trials, AttackKind, AttackStats};

use crate::report::Table;

/// One attack batch result.
#[derive(Clone, Debug, Serialize)]
pub struct AttackBatch {
    /// Attack label.
    pub attack: String,
    /// Trials run.
    pub trials: usize,
    /// Successful grants (paper: 0).
    pub successes: usize,
    /// Denial reasons histogram.
    pub denial_reasons: Vec<(String, usize)>,
}

impl AttackBatch {
    fn of(attack: &str, stats: &AttackStats) -> Self {
        AttackBatch {
            attack: attack.to_owned(),
            trials: stats.trials,
            successes: stats.successes,
            denial_reasons: stats
                .denial_reasons
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// Full E9 result.
#[derive(Clone, Debug, Serialize)]
pub struct SecurityResult {
    /// All batches.
    pub batches: Vec<AttackBatch>,
    /// Base seed.
    pub seed: u64,
}

/// Runs E9 with `trials` per batch (the paper used 100).
pub fn run(trials: usize, seed: u64) -> SecurityResult {
    let env = Environment::office();
    let vouch_distance = 6.0; // user away: in BT range, out of acoustic range
    let mut batches = Vec::new();

    let stats = run_trials(
        AttackKind::GuessingReplay,
        &env,
        vouch_distance,
        trials,
        seed,
    );
    batches.push(AttackBatch::of("guessing-based replay", &stats));

    // The paper's three P_a regimes for the all-frequency attack.
    for (label, amplitude) in [
        ("all-frequency (P_a ≥ α·R_f)", 8_000.0),
        ("all-frequency (β < P_a < α·R_f)", 1_000.0),
        ("all-frequency (P_a ≤ β)", 60.0),
    ] {
        let stats = run_trials(
            AttackKind::AllFrequency {
                tone_amplitude: amplitude,
            },
            &env,
            vouch_distance,
            trials / 3 + 1,
            seed ^ 0xAF00 ^ amplitude as u64,
        );
        batches.push(AttackBatch::of(label, &stats));
    }

    let stats = run_trials(
        AttackKind::ZeroEffort,
        &env,
        vouch_distance,
        trials,
        seed ^ 0x2E00,
    );
    batches.push(AttackBatch::of("zero-effort", &stats));

    SecurityResult { batches, seed }
}

impl SecurityResult {
    /// Total successes across all batches (paper: 0).
    pub fn total_successes(&self) -> usize {
        self.batches.iter().map(|b| b.successes).sum()
    }

    /// Renders the summary.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sec. VI-E — attack trials (user away: vouching device 6 m)",
            &["attack", "trials", "successes", "denial reasons"],
        );
        for b in &self.batches {
            let reasons = b
                .denial_reasons
                .iter()
                .map(|(k, v)| format!("{k}×{v}"))
                .collect::<Vec<_>>()
                .join(", ");
            t.push_row(vec![
                b.attack.clone(),
                format!("{}", b.trials),
                format!("{}", b.successes),
                reasons,
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_attack_succeeds() {
        let r = run(3, 0x5EED);
        assert_eq!(r.total_successes(), 0);
        assert_eq!(r.batches.len(), 5);
        let _ = r.table();
    }
}
