//! Experiment E3 — Fig. 2b: ACTION vs ACTION-CC vs Echo-Secure.
//!
//! The paper's comparison of the three *secure* acoustic ranging protocols
//! in a shared office: "ACTION is orders of magnitude more accurate than
//! ACTION-CC and Echo-Secure." ACTION errors are centimeters; the
//! baselines' reach meters (the paper's axis tops out at 3000 cm).

use serde::Serialize;

use piano_acoustics::{AcousticField, Environment, Position};
use piano_bluetooth::{BluetoothLink, PairingRegistry};
use piano_core::action::DistanceEstimate;
use piano_core::config::ActionConfig;
use piano_core::device::Device;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano_baselines::echo::EchoCalibration;

use crate::report::{cm, Table};
use crate::trials::{run_trials, TrialSetup};
use crate::{PAPER_DISTANCES_M, PAPER_TRIALS_PER_POINT};

/// The three compared protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Protocol {
    /// The paper's contribution.
    Action,
    /// ACTION with a cross-correlation detector.
    ActionCc,
    /// One-way Echo with randomized signals and calibrated delay.
    EchoSecure,
}

impl Protocol {
    /// Display label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Action => "ACTION",
            Protocol::ActionCc => "ACTION-CC",
            Protocol::EchoSecure => "Echo-Secure",
        }
    }
}

/// One (protocol, distance) cell.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2bCell {
    /// Which protocol.
    pub protocol: Protocol,
    /// True distance (m).
    pub distance_m: f64,
    /// Mean absolute error (m).
    pub mean_abs_error_m: f64,
    /// Error standard deviation (m).
    pub error_std_m: f64,
    /// Measured / absent counts.
    pub measured: usize,
    /// Trials with no detection.
    pub absent: usize,
}

/// Full Fig. 2b result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2bResult {
    /// All cells, protocol-major.
    pub cells: Vec<Fig2bCell>,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

fn baseline_setup(
    d: f64,
    seed: u64,
) -> (
    AcousticField,
    BluetoothLink,
    PairingRegistry,
    Device,
    Device,
    ChaCha8Rng,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let field = AcousticField::new(Environment::office(), seed ^ 0x5A5A);
    let link = BluetoothLink::new();
    let mut registry = PairingRegistry::new();
    let auth = Device::phone(1, Position::ORIGIN, seed.wrapping_add(0xA));
    let vouch = Device::phone(2, Position::new(d, 0.0, 0.0), seed.wrapping_add(0xB));
    registry.pair(auth.id, vouch.id, &mut rng);
    (field, link, registry, auth, vouch, rng)
}

/// Runs E3 with `trials` per (protocol, distance) cell.
pub fn run(trials: usize, seed: u64) -> Fig2bResult {
    let config = ActionConfig::default();
    let mut cells = Vec::new();

    // Echo calibration, done once at contact distance per the paper.
    let cal = {
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            baseline_setup(0.05, seed ^ 0xEC40);
        EchoCalibration::calibrate(
            &config, &mut field, &mut link, &registry, &auth, &vouch, 8, &mut rng,
        )
        .expect("echo calibration at contact distance must detect")
    };

    for (d_idx, &d) in PAPER_DISTANCES_M.iter().enumerate() {
        // ACTION via the standard trial runner.
        let setup = TrialSetup::new(Environment::office(), d, seed ^ ((d_idx as u64) << 20));
        let outcomes = run_trials(&setup, trials);
        let stats = crate::trials::TrialStats::of(&outcomes);
        cells.push(Fig2bCell {
            protocol: Protocol::Action,
            distance_m: d,
            mean_abs_error_m: stats.mean_abs_error_m,
            error_std_m: stats.error_std_m,
            measured: stats.measured,
            absent: stats.absent,
        });

        // ACTION-CC.
        let mut errors = Vec::new();
        let mut absent = 0;
        for t in 0..trials as u64 {
            let (mut field, mut link, registry, auth, vouch, mut rng) =
                baseline_setup(d, seed ^ 0xCC00 ^ (t << 8) ^ (d_idx as u64));
            match piano_baselines::run_action_cc(
                &config, &mut field, &mut link, &registry, &auth, &vouch, 0.0, &mut rng,
            )
            .expect("protocol errors impossible in-range")
            {
                DistanceEstimate::Measured(est) => errors.push(est - d),
                DistanceEstimate::SignalAbsent => absent += 1,
            }
        }
        cells.push(stats_cell(Protocol::ActionCc, d, &errors, absent));

        // Echo-Secure.
        let mut errors = Vec::new();
        let mut absent = 0;
        for t in 0..trials as u64 {
            let (mut field, mut link, registry, auth, vouch, mut rng) =
                baseline_setup(d, seed ^ 0xE000 ^ (t << 8) ^ (d_idx as u64));
            match piano_baselines::run_echo_secure(
                &config, &mut field, &mut link, &registry, &auth, &vouch, &cal, 0.0, &mut rng,
            )
            .expect("protocol errors impossible in-range")
            {
                DistanceEstimate::Measured(est) => errors.push(est - d),
                DistanceEstimate::SignalAbsent => absent += 1,
            }
        }
        cells.push(stats_cell(Protocol::EchoSecure, d, &errors, absent));
    }
    Fig2bResult {
        cells,
        trials,
        seed,
    }
}

fn stats_cell(protocol: Protocol, d: f64, signed_errors: &[f64], absent: usize) -> Fig2bCell {
    if signed_errors.is_empty() {
        return Fig2bCell {
            protocol,
            distance_m: d,
            mean_abs_error_m: 0.0,
            error_std_m: 0.0,
            measured: 0,
            absent,
        };
    }
    let summary = piano_dsp::stats::Summary::of(signed_errors);
    let mae = signed_errors.iter().map(|e| e.abs()).sum::<f64>() / signed_errors.len() as f64;
    Fig2bCell {
        protocol,
        distance_m: d,
        mean_abs_error_m: mae,
        error_std_m: summary.std,
        measured: signed_errors.len(),
        absent,
    }
}

/// Runs E3 at the paper's scale.
pub fn run_paper(seed: u64) -> Fig2bResult {
    run(PAPER_TRIALS_PER_POINT, seed)
}

impl Fig2bResult {
    /// Renders the comparison rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Fig. 2b — secure ranging protocol comparison ({} trials/cell, office)",
                self.trials
            ),
            &["protocol", "distance (m)", "MAE (cm)", "std (cm)", "absent"],
        );
        for c in &self.cells {
            t.push_row(vec![
                c.protocol.label().to_owned(),
                format!("{:.1}", c.distance_m),
                cm(c.mean_abs_error_m),
                cm(c.error_std_m),
                format!("{}", c.absent),
            ]);
        }
        t
    }

    /// Mean absolute error for one protocol across all distances (m).
    pub fn protocol_mae_m(&self, protocol: Protocol) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.protocol == protocol && c.measured > 0)
            .map(|c| c.mean_abs_error_m)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_beats_baselines_by_orders_of_magnitude() {
        let r = run(3, 5);
        assert_eq!(r.cells.len(), 12);
        let action = r.protocol_mae_m(Protocol::Action);
        let cc = r.protocol_mae_m(Protocol::ActionCc);
        let echo = r.protocol_mae_m(Protocol::EchoSecure);
        assert!(action < 0.25, "ACTION MAE {action}");
        assert!(cc > 10.0 * action, "ACTION-CC {cc} vs ACTION {action}");
        assert!(echo > 10.0 * action, "Echo {echo} vs ACTION {action}");
        let _ = r.table();
    }
}
