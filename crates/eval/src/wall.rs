//! Experiment E6 — Sec. VI-B "Separated by a wall".
//!
//! "When the two devices are close but are separated by a wall, one device
//! detects that the reference signal played by the other device is not
//! present, and thus the access to the authenticating device is denied."

use serde::Serialize;

use piano_acoustics::{AcousticField, Environment, Position, Wall};
use piano_core::device::Device;
use piano_core::piano::{AuthDecision, DenialReason, PianoConfig};
use piano_core::stream::AuthService;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::Table;

/// Result of the wall experiment.
#[derive(Clone, Debug, Serialize)]
pub struct WallResult {
    /// Trials run (each: 1 m apart, wall in between).
    pub trials: usize,
    /// How many were denied with "signal absent" (expected: all).
    pub denied_signal_absent: usize,
    /// How many were granted (expected: none).
    pub granted: usize,
    /// Control trials without the wall that were granted (expected: all).
    pub control_granted: usize,
    /// Control trials run.
    pub control_trials: usize,
}

/// Runs E6: `trials` with a default interior wall between devices 1 m
/// apart (plus the same geometry without the wall as a control).
pub fn run(trials: usize, seed: u64) -> WallResult {
    let mut denied_signal_absent = 0;
    let mut granted = 0;
    let mut control_granted = 0;
    for t in 0..trials as u64 {
        let s = seed ^ (t << 12) ^ t;
        let mut rng = ChaCha8Rng::seed_from_u64(s);
        let auth_dev = Device::phone(1, Position::ORIGIN, s + 1);
        let vouch_dev = Device::phone(2, Position::new(1.0, 0.0, 0.0), s + 2);
        let mut authn = AuthService::new(PianoConfig::default());
        authn.register(&auth_dev, &vouch_dev, &mut rng);

        let mut field = AcousticField::new(Environment::office(), s ^ 0x3A3A);
        field.add_wall(Wall::at_x(0.5));
        match authn.authenticate_pair(&mut field, &auth_dev, &vouch_dev, 0.0, &mut rng) {
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent,
            } => denied_signal_absent += 1,
            AuthDecision::Granted { .. } => granted += 1,
            _ => {}
        }

        // Control: same seedline, no wall. The devices are exactly 1 m
        // apart, which sits on the default τ = 1 m boundary; raise τ so the
        // control measures detection, not threshold luck.
        authn.set_threshold_m(1.8);
        let mut field = AcousticField::new(Environment::office(), s ^ 0x3A3B);
        if authn
            .authenticate_pair(&mut field, &auth_dev, &vouch_dev, 100.0, &mut rng)
            .is_granted()
        {
            control_granted += 1;
        }
    }
    WallResult {
        trials,
        denied_signal_absent,
        granted,
        control_granted,
        control_trials: trials,
    }
}

impl WallResult {
    /// Renders the experiment summary.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sec. VI-B — wall separation (1 m apart, interior wall between)",
            &["condition", "granted", "denied (signal absent)", "trials"],
        );
        t.push_row(vec![
            "wall between".into(),
            format!("{}", self.granted),
            format!("{}", self.denied_signal_absent),
            format!("{}", self.trials),
        ]);
        t.push_row(vec![
            "no wall (control)".into(),
            format!("{}", self.control_granted),
            format!("{}", self.control_trials - self.control_granted),
            format!("{}", self.control_trials),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_always_denies_and_control_mostly_grants() {
        let r = run(3, 21);
        assert_eq!(r.granted, 0, "wall trials must never grant");
        assert_eq!(r.denied_signal_absent, 3, "denial must be signal absence");
        assert!(r.control_granted >= 2, "control should usually grant");
        let _ = r.table();
    }
}
