//! Experiment E7 — the maximum ranging distance d_s.
//!
//! Sec. VI-B: "when the real distance between the two devices is larger
//! than around 2.5 meters, ACTION determines that the reference signal is
//! not present". This experiment sweeps distance and reports the detection
//! rate per distance plus the measured cutoff.

use serde::Serialize;

use piano_acoustics::Environment;

use crate::report::Table;
use crate::trials::{run_trials, TrialSetup};

/// Detection rate at one distance.
#[derive(Clone, Debug, Serialize)]
pub struct RangePoint {
    /// True distance (m).
    pub distance_m: f64,
    /// Fraction of trials that measured a distance.
    pub detection_rate: f64,
}

/// Full range-sweep result.
#[derive(Clone, Debug, Serialize)]
pub struct RangeResult {
    /// Sweep points.
    pub points: Vec<RangePoint>,
    /// Largest distance with detection rate ≥ 50 % (the d_s estimate).
    pub max_range_m: f64,
    /// Trials per point.
    pub trials: usize,
}

/// Runs E7 in a quiet office-like room, sweeping 1.0–4.0 m.
pub fn run(trials: usize, seed: u64) -> RangeResult {
    let mut points = Vec::new();
    let mut max_range_m: f64 = 0.0;
    let mut d = 1.0;
    while d <= 4.01 {
        let setup = TrialSetup::new(Environment::office(), d, seed ^ ((d * 100.0) as u64));
        let outcomes = run_trials(&setup, trials);
        let detected = outcomes.iter().filter(|o| o.estimate_m.is_some()).count();
        let rate = detected as f64 / trials.max(1) as f64;
        if rate >= 0.5 {
            max_range_m = d;
        }
        points.push(RangePoint {
            distance_m: d,
            detection_rate: rate,
        });
        d += 0.25;
    }
    RangeResult {
        points,
        max_range_m,
        trials,
    }
}

impl RangeResult {
    /// Renders the sweep.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Sec. VI-B — maximum ranging distance (measured d_s ≈ {:.2} m; paper ≈ 2.5 m)",
                self.max_range_m
            ),
            &["distance (m)", "detection rate"],
        );
        for p in &self.points {
            t.push_row(vec![
                format!("{:.2}", p.distance_m),
                format!("{:.0}%", p.detection_rate * 100.0),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_falls_off_beyond_paper_range() {
        let r = run(2, 31);
        // Detects at 1 m, does not at 4 m.
        assert!(r.points.first().unwrap().detection_rate > 0.5);
        assert!(r.points.last().unwrap().detection_rate < 0.5);
        assert!(
            (1.5..3.5).contains(&r.max_range_m),
            "d_s = {} m is out of the plausible band",
            r.max_range_m
        );
        let _ = r.table();
    }
}
