//! # piano-eval
//!
//! The evaluation harness: one module per table/figure of the paper's
//! Sec. VI, plus ablations. Each experiment returns a structured result
//! that renders to the same rows/series the paper reports (via
//! [`report`]), and the `repro` binary regenerates everything:
//!
//! ```text
//! cargo run -p piano-eval --release --bin repro -- all
//! ```
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1(a–d): ranging error bars per environment |
//! | [`fig2a`] | Fig. 2a: multi-user interference error bars |
//! | [`fig2b`] | Fig. 2b: ACTION vs ACTION-CC vs Echo-Secure |
//! | [`tables`] | Tables I & II: FRR / FAR per scenario × threshold |
//! | [`wall`] | Sec. VI-B: wall separation ⇒ denial |
//! | [`range`] | Sec. VI-B: maximum ranging distance d_s ≈ 2.5 m |
//! | [`efficiency`] | Sec. VI-D: ≈3 s and ≈0.6 % battery / 100 auths |
//! | [`security`] | Sec. VI-E: 100+100 attack trials, 0 successes |
//! | [`guessing`] | Sec. V: guessing probabilities (E10) |
//! | [`ablation`] | Design-choice ablations (A1–A6, ours) |
//!
//! All experiments are deterministic given their seeds and parallelized
//! over trials with scoped worker threads.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod efficiency;
pub mod fig1;
pub mod fig2a;
pub mod fig2b;
pub mod guessing;
pub mod range;
pub mod report;
pub mod security;
pub mod tables;
pub mod trials;
pub mod wall;

/// Default number of trials per data point, matching the paper's "for each
/// real distance, we average the absolute errors over 10 trials".
pub const PAPER_TRIALS_PER_POINT: usize = 10;

/// The four distances evaluated throughout Sec. VI.
pub const PAPER_DISTANCES_M: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

/// The four thresholds of Tables I and II.
pub const PAPER_THRESHOLDS_M: [f64; 4] = [0.5, 1.0, 1.5, 2.0];
