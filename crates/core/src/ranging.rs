//! Step VI: estimating distance (paper Eq. 3).
//!
//! Each device detects both reference signals in *its own* recording and
//! reduces them to one number: the location difference between the other
//! device's signal and its own. Combining the two differences cancels both
//! clock offsets and all processing delays:
//!
//! ```text
//! d_AV = ½·s·( (l_AV − l_AA)/f_A  −  (l_VV − l_VA)/f_V )
//! ```
//!
//! where `l_AA, l_AV` are sample locations in the authenticating device's
//! recording, `l_VA, l_VV` in the vouching device's, and `f_A, f_V` the
//! nominal sampling rates. No timestamps ever cross devices — only the
//! dimensionless location differences — which is why the paper's Eq. 1/2
//! synchronization problem never arises.

use serde::{Deserialize, Serialize};

/// The location differences each device extracts from its recording.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LocationDiffs {
    /// `l_AV − l_AA` on the authenticating device, in samples.
    pub auth_diff_samples: f64,
    /// `l_VV − l_VA` on the vouching device, in samples.
    pub vouch_diff_samples: f64,
}

/// Computes Eq. 3.
///
/// * `diffs` — the two per-device location differences.
/// * `rate_auth_hz`, `rate_vouch_hz` — nominal sampling rates `f_A`, `f_V`.
/// * `speed_of_sound` — `s` in m/s.
///
/// The result can be negative when detection errors exceed the true
/// distance; callers treat negative estimates like any other estimate
/// (the paper's error bars in Fig. 1 include a below-zero whisker).
pub fn estimate_distance(
    diffs: &LocationDiffs,
    rate_auth_hz: f64,
    rate_vouch_hz: f64,
    speed_of_sound: f64,
) -> f64 {
    0.5 * speed_of_sound
        * (diffs.auth_diff_samples / rate_auth_hz - diffs.vouch_diff_samples / rate_vouch_hz)
}

/// One-way distance from a single pair of timestamps (paper Eq. 1/2):
/// `d = s·Δt`. Provided for the Echo baseline and for tests demonstrating
/// why unsynchronized clocks make it useless.
pub fn one_way_distance(elapsed_s: f64, speed_of_sound: f64) -> f64 {
    speed_of_sound * elapsed_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const S: f64 = 343.0;
    const FS: f64 = 44_100.0;

    /// Builds the four ideal locations for a ground-truth geometry and
    /// schedule, mimicking Step IV's outputs exactly.
    fn ideal_diffs(distance_m: f64, auth_play_s: f64, vouch_play_s: f64) -> LocationDiffs {
        let tof = distance_m / S;
        // Device A records from t=0 (its clock); V records from any offset —
        // offsets cancel inside each difference, so use 0 for clarity.
        let l_aa = auth_play_s * FS;
        let l_av = (vouch_play_s + tof) * FS;
        let l_va = (auth_play_s + tof) * FS;
        let l_vv = vouch_play_s * FS;
        LocationDiffs {
            auth_diff_samples: l_av - l_aa,
            vouch_diff_samples: l_vv - l_va,
        }
    }

    #[test]
    fn recovers_ground_truth_distance() {
        for &d in &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5] {
            let diffs = ideal_diffs(d, 0.35, 1.15);
            let est = estimate_distance(&diffs, FS, FS, S);
            assert!((est - d).abs() < 1e-9, "d={d} est={est}");
        }
    }

    #[test]
    fn schedule_choice_cancels() {
        // Playback times drop out of Eq. 3 entirely.
        let a = estimate_distance(&ideal_diffs(1.0, 0.35, 1.15), FS, FS, S);
        let b = estimate_distance(&ideal_diffs(1.0, 0.10, 1.90), FS, FS, S);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn location_error_maps_to_centimeters() {
        // One sample of location error on one device moves the estimate by
        // s/(2·fs) ≈ 3.9 mm — the paper's centimeter errors correspond to
        // tens of samples.
        let clean = ideal_diffs(1.0, 0.35, 1.15);
        let mut noisy = clean;
        noisy.auth_diff_samples += 1.0;
        let delta = estimate_distance(&noisy, FS, FS, S) - estimate_distance(&clean, FS, FS, S);
        assert!((delta - S / (2.0 * FS)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_errors_cancel() {
        // Equal-sized errors on both devices in the same direction cancel:
        // the two-way combination is differential by design.
        let mut diffs = ideal_diffs(1.5, 0.35, 1.15);
        diffs.auth_diff_samples += 25.0;
        diffs.vouch_diff_samples += 25.0;
        let est = estimate_distance(&diffs, FS, FS, S);
        assert!((est - 1.5).abs() < 1e-9);
    }

    #[test]
    fn one_way_distance_is_linear() {
        assert!((one_way_distance(0.01, S) - 3.43).abs() < 1e-12);
        assert_eq!(one_way_distance(0.0, S), 0.0);
    }

    proptest! {
        #[test]
        fn eq3_is_exact_for_ideal_inputs(
            d in 0.0f64..5.0,
            pa in 0.0f64..1.0,
            pv in 1.2f64..2.0,
        ) {
            let est = estimate_distance(&ideal_diffs(d, pa, pv), FS, FS, S);
            prop_assert!((est - d).abs() < 1e-9);
        }

        #[test]
        fn estimate_is_antisymmetric_in_differences(
            ad in -1e5f64..1e5,
            vd in -1e5f64..1e5,
        ) {
            let diffs = LocationDiffs { auth_diff_samples: ad, vouch_diff_samples: vd };
            let swapped = LocationDiffs { auth_diff_samples: vd, vouch_diff_samples: ad };
            let a = estimate_distance(&diffs, FS, FS, S);
            let b = estimate_distance(&swapped, FS, FS, S);
            prop_assert!((a + b).abs() < 1e-9);
        }
    }
}
