//! The PIANO authenticator.
//!
//! Paper Sec. IV, authentication phase: "PIANO first checks whether the
//! vouching device is still paired with the authenticating device via
//! Bluetooth. If not … PIANO rejects the access; otherwise PIANO estimates
//! the distance between the two devices using … ACTION. If the estimated
//! distance is no larger than the authentication threshold, the access is
//! granted, otherwise it is rejected."
//!
//! The threshold τ is user-selected — the *personalizable* property: "they
//! can set the authentication threshold to be 0.5 meter if they are in an
//! environment where 1 meter is too long to be safe."

use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;
use piano_bluetooth::{BluetoothLink, LinkKey, PairingRegistry};

use crate::action::{run_action_with, ActionOutcome, DistanceEstimate};
use crate::config::ActionConfig;
use crate::detect::Detector;
use crate::device::Device;
use crate::error::PianoError;

/// PIANO's authenticator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PianoConfig {
    /// The authentication threshold τ in meters. Paper default scenarios
    /// use 0.5–2.0 m; 1.0 m is the headline operating point.
    pub threshold_m: f64,
    /// Configuration of the underlying ACTION protocol.
    pub action: ActionConfig,
}

impl Default for PianoConfig {
    fn default() -> Self {
        PianoConfig {
            threshold_m: 1.0,
            action: ActionConfig::default(),
        }
    }
}

impl PianoConfig {
    /// A config with a custom threshold and default ACTION parameters.
    pub fn with_threshold(threshold_m: f64) -> Self {
        PianoConfig {
            threshold_m,
            ..Default::default()
        }
    }
}

/// Why an authentication attempt was denied.
#[derive(Clone, Debug, PartialEq)]
pub enum DenialReason {
    /// The devices were never paired (registration has not run).
    NotPaired,
    /// The Bluetooth link is unreachable — out of radio range.
    BluetoothUnreachable,
    /// A reference signal was not present in a recording: the devices are
    /// beyond acoustic range, separated by a wall, or a spoofing defense
    /// fired.
    SignalAbsent,
    /// The measured distance exceeds the threshold.
    TooFar {
        /// The measured distance in meters.
        distance_m: f64,
    },
    /// The protocol failed for an internal reason (malformed message —
    /// impossible between honest devices, but surfaced rather than hidden).
    ProtocolFailure(String),
}

/// The authentication verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum AuthDecision {
    /// Access granted; the measured distance is attached.
    Granted {
        /// The measured distance in meters.
        distance_m: f64,
    },
    /// Access denied.
    Denied {
        /// Why.
        reason: DenialReason,
    },
}

impl AuthDecision {
    /// Whether access was granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, AuthDecision::Granted { .. })
    }
}

/// The PIANO authenticator: owns the bond registry and the Bluetooth link,
/// and runs the authentication phase on demand.
///
/// The authenticator builds its ACTION [`Detector`] once at construction
/// and reuses it for every attempt, so FFT plans and window tables are
/// amortized across the lifetime of the authenticator — including every
/// re-verification of a [`crate::continuous::ContinuousSession`].
#[derive(Debug)]
pub struct PianoAuthenticator {
    config: PianoConfig,
    detector: Detector,
    registry: PairingRegistry,
    link: BluetoothLink,
    last_outcome: Option<ActionOutcome>,
}

impl PianoAuthenticator {
    /// Creates an authenticator with no bonds.
    ///
    /// # Panics
    ///
    /// Panics if `config.action` fails [`ActionConfig::validate`].
    pub fn new(config: PianoConfig) -> Self {
        let detector = Detector::new(&config.action);
        PianoAuthenticator {
            config,
            detector,
            registry: PairingRegistry::new(),
            link: BluetoothLink::new(),
            last_outcome: None,
        }
    }

    /// The ACTION detector this authenticator reuses across attempts.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The configuration in force.
    pub fn config(&self) -> &PianoConfig {
        &self.config
    }

    /// Updates the authentication threshold (the *personalizable* knob).
    pub fn set_threshold_m(&mut self, threshold_m: f64) {
        self.config.threshold_m = threshold_m;
    }

    /// Registration phase: pairs the two devices (once) and returns the
    /// minted link key.
    pub fn register(&mut self, a: &Device, b: &Device, rng: &mut ChaCha8Rng) -> LinkKey {
        self.registry.pair(a.id, b.id, rng)
    }

    /// Whether two devices are bonded.
    pub fn is_registered(&self, a: &Device, b: &Device) -> bool {
        self.registry.is_paired(a.id, b.id)
    }

    /// The Bluetooth link (for transfer accounting).
    pub fn link(&self) -> &BluetoothLink {
        &self.link
    }

    /// Diagnostics of the most recent ACTION run, if any reached Step III.
    pub fn last_outcome(&self) -> Option<&ActionOutcome> {
        self.last_outcome.as_ref()
    }

    /// Authentication phase: decides whether whoever is at the
    /// authenticating device right now gets access.
    ///
    /// `now_world_s` is the world time of the attempt; interferers or
    /// attackers must already have registered their emissions on `field`.
    pub fn authenticate(
        &mut self,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_world_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> AuthDecision {
        // Bluetooth presence gate.
        if !self.registry.is_paired(auth_device.id, vouch_device.id) {
            return AuthDecision::Denied {
                reason: DenialReason::NotPaired,
            };
        }
        if !self
            .link
            .in_range(&auth_device.position, &vouch_device.position)
        {
            return AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable,
            };
        }

        // ACTION distance estimation, on the long-lived detector.
        let outcome = match run_action_with(
            &self.detector,
            field,
            &mut self.link,
            &self.registry,
            auth_device,
            vouch_device,
            now_world_s,
            rng,
        ) {
            Ok(o) => o,
            Err(PianoError::Bluetooth(_)) => {
                return AuthDecision::Denied {
                    reason: DenialReason::BluetoothUnreachable,
                }
            }
            Err(e) => {
                return AuthDecision::Denied {
                    reason: DenialReason::ProtocolFailure(e.to_string()),
                }
            }
        };
        let estimate = outcome.estimate;
        self.last_outcome = Some(outcome);

        // Threshold comparison.
        match estimate {
            DistanceEstimate::SignalAbsent => AuthDecision::Denied {
                reason: DenialReason::SignalAbsent,
            },
            DistanceEstimate::Measured(d) if d <= self.config.threshold_m => {
                AuthDecision::Granted { distance_m: d }
            }
            DistanceEstimate::Measured(d) => AuthDecision::Denied {
                reason: DenialReason::TooFar { distance_m: d },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn devices(d: f64) -> (Device, Device) {
        (
            Device::phone(1, Position::ORIGIN, 100),
            Device::phone(2, Position::new(d, 0.0, 0.0), 200),
        )
    }

    #[test]
    fn close_devices_are_granted() {
        let mut auth = PianoAuthenticator::new(PianoConfig::default());
        let (a, v) = devices(0.5);
        let mut r = rng(1);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 1);
        let decision = auth.authenticate(&mut field, &a, &v, 0.0, &mut r);
        match decision {
            AuthDecision::Granted { distance_m } => {
                assert!((distance_m - 0.5).abs() < 0.3, "distance {distance_m}")
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(auth.last_outcome().is_some());
    }

    #[test]
    fn unregistered_devices_are_denied_without_protocol() {
        let mut auth = PianoAuthenticator::new(PianoConfig::default());
        let (a, v) = devices(0.5);
        let mut field = AcousticField::new(Environment::office(), 2);
        let decision = auth.authenticate(&mut field, &a, &v, 0.0, &mut rng(2));
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::NotPaired
            }
        );
        assert_eq!(
            auth.link().message_count(),
            0,
            "no radio traffic before pairing"
        );
    }

    #[test]
    fn beyond_bluetooth_is_denied_immediately() {
        let mut auth = PianoAuthenticator::new(PianoConfig::default());
        let (a, v) = devices(15.0);
        let mut r = rng(3);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 3);
        let decision = auth.authenticate(&mut field, &a, &v, 0.0, &mut r);
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable
            }
        );
    }

    #[test]
    fn beyond_acoustic_range_is_denied_as_absent() {
        let mut auth = PianoAuthenticator::new(PianoConfig::default());
        let (a, v) = devices(7.0);
        let mut r = rng(4);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 4);
        let decision = auth.authenticate(&mut field, &a, &v, 0.0, &mut r);
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent
            }
        );
    }

    #[test]
    fn measured_distance_above_threshold_is_too_far() {
        // 2 m apart with a 1 m threshold: measured, then rejected.
        let mut auth = PianoAuthenticator::new(PianoConfig::with_threshold(1.0));
        let (a, v) = devices(2.0);
        let mut r = rng(5);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::anechoic(), 5);
        let decision = auth.authenticate(&mut field, &a, &v, 0.0, &mut r);
        match decision {
            AuthDecision::Denied {
                reason: DenialReason::TooFar { distance_m },
            } => {
                assert!((distance_m - 2.0).abs() < 0.3, "distance {distance_m}")
            }
            other => panic!("expected TooFar, got {other:?}"),
        }
    }

    #[test]
    fn threshold_is_personalizable() {
        // The same 2 m geometry granted once τ is raised.
        let mut auth = PianoAuthenticator::new(PianoConfig::with_threshold(1.0));
        let (a, v) = devices(2.0);
        let mut r = rng(6);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::anechoic(), 6);
        assert!(!auth
            .authenticate(&mut field, &a, &v, 0.0, &mut r)
            .is_granted());
        auth.set_threshold_m(2.5);
        let mut field2 = AcousticField::new(Environment::anechoic(), 7);
        assert!(auth
            .authenticate(&mut field2, &a, &v, 100.0, &mut r)
            .is_granted());
    }

    #[test]
    fn wall_separation_is_denied() {
        let mut auth = PianoAuthenticator::new(PianoConfig::default());
        let (a, v) = devices(0.8);
        let mut r = rng(7);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 8);
        field.add_wall(piano_acoustics::Wall::at_x(0.4));
        let decision = auth.authenticate(&mut field, &a, &v, 0.0, &mut r);
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent
            }
        );
    }
}
