//! The PIANO authenticator.
//!
//! Paper Sec. IV, authentication phase: "PIANO first checks whether the
//! vouching device is still paired with the authenticating device via
//! Bluetooth. If not … PIANO rejects the access; otherwise PIANO estimates
//! the distance between the two devices using … ACTION. If the estimated
//! distance is no larger than the authentication threshold, the access is
//! granted, otherwise it is rejected."
//!
//! The threshold τ is user-selected — the *personalizable* property: "they
//! can set the authentication threshold to be 0.5 meter if they are in an
//! environment where 1 meter is too long to be safe."

use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;
use piano_bluetooth::{BluetoothLink, LinkKey};

use crate::action::ActionOutcome;
use crate::config::ActionConfig;
use crate::detect::Detector;
use crate::device::Device;
use crate::stream::AuthService;

/// PIANO's authenticator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PianoConfig {
    /// The authentication threshold τ in meters. Paper default scenarios
    /// use 0.5–2.0 m; 1.0 m is the headline operating point.
    pub threshold_m: f64,
    /// Configuration of the underlying ACTION protocol.
    pub action: ActionConfig,
}

impl Default for PianoConfig {
    fn default() -> Self {
        PianoConfig {
            threshold_m: 1.0,
            action: ActionConfig::default(),
        }
    }
}

impl PianoConfig {
    /// A config with a custom threshold and default ACTION parameters.
    pub fn with_threshold(threshold_m: f64) -> Self {
        PianoConfig {
            threshold_m,
            ..Default::default()
        }
    }
}

/// Why an authentication attempt was denied.
#[derive(Clone, Debug, PartialEq)]
pub enum DenialReason {
    /// The devices were never paired (registration has not run).
    NotPaired,
    /// The Bluetooth link is unreachable — out of radio range.
    BluetoothUnreachable,
    /// A reference signal was not present in a recording: the devices are
    /// beyond acoustic range, separated by a wall, or a spoofing defense
    /// fired.
    SignalAbsent,
    /// The measured distance exceeds the threshold.
    TooFar {
        /// The measured distance in meters.
        distance_m: f64,
    },
    /// The protocol failed for an internal reason (malformed message —
    /// impossible between honest devices, but surfaced rather than hidden).
    ProtocolFailure(String),
}

/// The authentication verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum AuthDecision {
    /// Access granted; the measured distance is attached.
    Granted {
        /// The measured distance in meters.
        distance_m: f64,
    },
    /// Access denied.
    Denied {
        /// Why.
        reason: DenialReason,
    },
}

impl AuthDecision {
    /// Whether access was granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, AuthDecision::Granted { .. })
    }
}

/// The single-pair PIANO authenticator.
///
/// Since the streaming redesign this is a thin compatibility wrapper over
/// the multi-tenant [`AuthService`]: it keeps the familiar one-pair
/// surface (register, authenticate, personalize the threshold) while the
/// protocol itself runs through the sans-IO [`crate::stream::AuthSession`]
/// state machines. New code should use [`AuthService`] directly — it
/// multiplexes many pairs, shares detectors across configurations, and
/// exposes the streaming entry points.
#[derive(Debug)]
pub struct PianoAuthenticator {
    service: AuthService,
}

impl PianoAuthenticator {
    /// Creates an authenticator with no bonds.
    ///
    /// # Panics
    ///
    /// Panics if `config.action` fails [`ActionConfig::validate`].
    pub fn new(config: PianoConfig) -> Self {
        PianoAuthenticator {
            service: AuthService::new(config),
        }
    }

    /// The ACTION detector this authenticator reuses across attempts.
    pub fn detector(&self) -> &Detector {
        self.service.detector()
    }

    /// The configuration in force.
    pub fn config(&self) -> &PianoConfig {
        self.service.config()
    }

    /// Updates the authentication threshold (the *personalizable* knob).
    pub fn set_threshold_m(&mut self, threshold_m: f64) {
        self.service.set_threshold_m(threshold_m);
    }

    /// Registration phase: pairs the two devices (once) and returns the
    /// minted link key.
    pub fn register(&mut self, a: &Device, b: &Device, rng: &mut ChaCha8Rng) -> LinkKey {
        self.service.register(a, b, rng)
    }

    /// Whether two devices are bonded.
    pub fn is_registered(&self, a: &Device, b: &Device) -> bool {
        self.service.is_registered(a, b)
    }

    /// The Bluetooth link (for transfer accounting).
    pub fn link(&self) -> &BluetoothLink {
        self.service.link()
    }

    /// Diagnostics of the most recent ACTION run, if any reached Step III.
    pub fn last_outcome(&self) -> Option<&ActionOutcome> {
        self.service.last_outcome()
    }

    /// The underlying multi-tenant service — the migration hook for code
    /// moving off this wrapper.
    pub fn as_service_mut(&mut self) -> &mut AuthService {
        &mut self.service
    }

    /// Authentication phase: decides whether whoever is at the
    /// authenticating device right now gets access.
    ///
    /// `now_world_s` is the world time of the attempt; interferers or
    /// attackers must already have registered their emissions on `field`.
    #[deprecated(
        since = "0.2.0",
        note = "use stream::AuthService::authenticate_pair (this shim delegates to it verbatim)"
    )]
    pub fn authenticate(
        &mut self,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_world_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> AuthDecision {
        self.service
            .authenticate_pair(field, auth_device, vouch_device, now_world_s, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn devices(d: f64) -> (Device, Device) {
        (
            Device::phone(1, Position::ORIGIN, 100),
            Device::phone(2, Position::new(d, 0.0, 0.0), 200),
        )
    }

    #[test]
    fn close_devices_are_granted() {
        let mut auth = AuthService::new(PianoConfig::default());
        let (a, v) = devices(0.5);
        let mut r = rng(1);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 1);
        let decision = auth.authenticate_pair(&mut field, &a, &v, 0.0, &mut r);
        match decision {
            AuthDecision::Granted { distance_m } => {
                assert!((distance_m - 0.5).abs() < 0.3, "distance {distance_m}")
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(auth.last_outcome().is_some());
    }

    #[test]
    fn unregistered_devices_are_denied_without_protocol() {
        let mut auth = AuthService::new(PianoConfig::default());
        let (a, v) = devices(0.5);
        let mut field = AcousticField::new(Environment::office(), 2);
        let decision = auth.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng(2));
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::NotPaired
            }
        );
        assert_eq!(
            auth.link().message_count(),
            0,
            "no radio traffic before pairing"
        );
    }

    #[test]
    fn beyond_bluetooth_is_denied_immediately() {
        let mut auth = AuthService::new(PianoConfig::default());
        let (a, v) = devices(15.0);
        let mut r = rng(3);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 3);
        let decision = auth.authenticate_pair(&mut field, &a, &v, 0.0, &mut r);
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable
            }
        );
    }

    #[test]
    fn beyond_acoustic_range_is_denied_as_absent() {
        let mut auth = AuthService::new(PianoConfig::default());
        let (a, v) = devices(7.0);
        let mut r = rng(4);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 4);
        let decision = auth.authenticate_pair(&mut field, &a, &v, 0.0, &mut r);
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent
            }
        );
    }

    #[test]
    fn measured_distance_above_threshold_is_too_far() {
        // 2 m apart with a 1 m threshold: measured, then rejected.
        let mut auth = AuthService::new(PianoConfig::with_threshold(1.0));
        let (a, v) = devices(2.0);
        let mut r = rng(5);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::anechoic(), 5);
        let decision = auth.authenticate_pair(&mut field, &a, &v, 0.0, &mut r);
        match decision {
            AuthDecision::Denied {
                reason: DenialReason::TooFar { distance_m },
            } => {
                assert!((distance_m - 2.0).abs() < 0.3, "distance {distance_m}")
            }
            other => panic!("expected TooFar, got {other:?}"),
        }
    }

    #[test]
    fn threshold_is_personalizable() {
        // The same 2 m geometry granted once τ is raised.
        let mut auth = AuthService::new(PianoConfig::with_threshold(1.0));
        let (a, v) = devices(2.0);
        let mut r = rng(6);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::anechoic(), 6);
        assert!(!auth
            .authenticate_pair(&mut field, &a, &v, 0.0, &mut r)
            .is_granted());
        auth.set_threshold_m(2.5);
        let mut field2 = AcousticField::new(Environment::anechoic(), 7);
        assert!(auth
            .authenticate_pair(&mut field2, &a, &v, 100.0, &mut r)
            .is_granted());
    }

    #[test]
    fn wall_separation_is_denied() {
        let mut auth = AuthService::new(PianoConfig::default());
        let (a, v) = devices(0.8);
        let mut r = rng(7);
        auth.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 8);
        field.add_wall(piano_acoustics::Wall::at_x(0.4));
        let decision = auth.authenticate_pair(&mut field, &a, &v, 0.0, &mut r);
        assert_eq!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent
            }
        );
    }

    /// The deprecated wrapper must keep producing the service's exact
    /// decisions until every caller migrates.
    #[test]
    #[allow(deprecated)]
    fn deprecated_authenticate_shim_matches_service() {
        let (a, v) = devices(0.5);

        let mut shim = PianoAuthenticator::new(PianoConfig::default());
        let mut r = rng(9);
        shim.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 9);
        let shim_decision = shim.authenticate(&mut field, &a, &v, 0.0, &mut r);

        let mut service = AuthService::new(PianoConfig::default());
        let mut r = rng(9);
        service.register(&a, &v, &mut r);
        let mut field = AcousticField::new(Environment::office(), 9);
        let service_decision = service.authenticate_pair(&mut field, &a, &v, 0.0, &mut r);

        assert_eq!(shim_decision, service_decision);
        assert!(shim_decision.is_granted());
        assert_eq!(shim.last_outcome(), service.last_outcome());
        assert!(shim.as_service_mut().last_outcome().is_some());
    }
}
