//! Runtime lock-order enforcement: [`OrderedMutex`], a `Mutex` wrapper
//! that panics — in debug builds — the moment any thread acquires locks
//! against the declared ranking.
//!
//! The static half of this contract is `piano-lint`'s `lock-discipline`
//! rule, which checks the *source* of `piano-net::server` for inverted
//! acquisition pairs and for blocking I/O under a live guard. This module
//! is the dynamic half: every lock names itself and declares a rank, a
//! thread-local stack records what each thread holds, and acquisition
//! out of rank order — or any acquisition that closes a cycle in the
//! process-wide observed-order graph — panics with the offending chain.
//! Because the checker is compiled in under `debug_assertions` and the
//! whole test suite runs in debug, **every test run doubles as a
//! lock-order race detector**: an inversion anywhere in the suite fails
//! loudly at the acquisition site instead of deadlocking once in a
//! thousand runs.
//!
//! In release builds the wrapper is a zero-cost rename of
//! [`std::sync::Mutex`] (the checker code is not compiled in).
//! `PIANO_LOCK_CHECK=off` disables the checks at runtime in debug builds
//! (for A/B-ing the checker itself); any other value, or none, leaves
//! them on.
//!
//! # Poisoning
//!
//! [`OrderedMutex::lock`] never returns a `PoisonError`: a poisoned lock
//! is re-entered and the guard handed out. The state these locks guard
//! (connection registries, progress counters, the shared
//! [`crate::stream::AuthService`]) is kept consistent at every await
//! point, and the panic that poisoned the lock has already failed its
//! own thread — propagating a second panic from every *other* thread
//! would turn one bug into a process-wide cascade, which is exactly what
//! the drop-one-connection fault model forbids.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

#[cfg(debug_assertions)]
mod checker {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, OnceLock};

    /// One held lock, as seen by the acquiring thread.
    #[derive(Clone, Copy)]
    struct Held {
        rank: u32,
        name: &'static str,
    }

    thread_local! {
        /// Locks the current thread holds, in acquisition order.
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Process-wide observed acquisition-order graph: an edge `a → b`
    /// records that some thread acquired `b` while holding `a`. A cycle
    /// in this graph is a potential deadlock even if no single run ever
    /// interleaves into one.
    static EDGES: Mutex<BTreeMap<&'static str, BTreeSet<&'static str>>> =
        Mutex::new(BTreeMap::new());

    fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED
            .get_or_init(|| std::env::var("PIANO_LOCK_CHECK").map_or(true, |v| v.trim() != "off"))
    }

    /// Depth-first search for a path `from → … → to` in the edge graph.
    fn path_exists(
        edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
        from: &'static str,
        to: &'static str,
        seen: &mut BTreeSet<&'static str>,
    ) -> bool {
        if from == to {
            return true;
        }
        if !seen.insert(from) {
            return false;
        }
        edges
            .get(from)
            .is_some_and(|next| next.iter().any(|&n| path_exists(edges, n, to, seen)))
    }

    /// Records an acquisition and panics on a rank inversion or a cycle.
    pub(super) fn acquire(rank: u32, name: &'static str) {
        if !enabled() {
            return;
        }
        HELD.with(|held| {
            let held = held.borrow();
            for h in held.iter() {
                if h.rank >= rank {
                    let chain: Vec<&str> = held.iter().map(|h| h.name).collect();
                    // piano-lint: allow(wire-no-panic, reason = "the checker's whole job is to fail debug builds loudly at the misordered acquisition site; release builds compile this module out")
                    panic!(
                        "lock-order violation: acquiring `{name}` (rank {rank}) while holding \
                         `{}` (rank {}); held in order: [{}]. Declared order is ascending rank — \
                         release the higher-ranked lock first.",
                        h.name,
                        h.rank,
                        chain.join(" → "),
                    );
                }
            }
        });
        // Record edges held → name and reject any that closes a cycle.
        let lock_names: Vec<&'static str> =
            HELD.with(|held| held.borrow().iter().map(|h| h.name).collect());
        if !lock_names.is_empty() {
            let mut edges = EDGES.lock().unwrap_or_else(|e| e.into_inner());
            for from in lock_names {
                let mut seen = BTreeSet::new();
                if path_exists(&edges, name, from, &mut seen) {
                    // piano-lint: allow(wire-no-panic, reason = "intentional debug-build deadlock report: the cycle must be surfaced at the acquisition that closes it")
                    panic!(
                        "lock-order cycle: acquiring `{name}` while holding `{from}`, but a \
                         previous acquisition ordered `{name}` before `{from}` — two threads \
                         interleaving these orders deadlock."
                    );
                }
                edges.entry(from).or_default().insert(name);
            }
        }
        HELD.with(|held| held.borrow_mut().push(Held { rank, name }));
    }

    /// Forgets the most recent acquisition of `name` on this thread.
    pub(super) fn release(name: &'static str) {
        if !enabled() {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.name == name) {
                held.remove(pos);
            }
        });
    }
}

/// A [`Mutex`] with a declared place in the process-wide lock order.
///
/// `rank` is the lock's position: a thread may only acquire locks in
/// strictly *ascending* rank order (acquiring equal or lower rank while
/// holding a higher one panics in debug builds — see the [module
/// docs](self)). `name` identifies the lock in violation reports.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    name: &'static str,
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    rank: u32,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// A mutex at `rank` in the declared order, named `name` for reports.
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        OrderedMutex {
            name,
            rank,
            inner: Mutex::new(value),
        }
    }

    /// The lock's report name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, checking the declared order in debug builds.
    ///
    /// Never returns a poison error (see the [module docs](self) for why
    /// recovery is the right policy here).
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        checker::acquire(self.rank, self.name);
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        OrderedGuard {
            guard: Some(guard),
            name: self.name,
        }
    }
}

/// RAII guard of an [`OrderedMutex`]; releases the lock (and its entry in
/// the thread's held-lock stack) on drop.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    /// `Some` for the guard's whole life; `Option` only so condvar waits
    /// can move the inner guard out and back without re-entering the
    /// order checker.
    guard: Option<MutexGuard<'a, T>>,
    name: &'static str,
}

impl<'a, T> OrderedGuard<'a, T> {
    /// Blocks on `cv`, releasing the mutex while waiting and reacquiring
    /// it before returning — [`Condvar::wait`] lifted to ordered guards.
    /// The lock keeps its slot in the thread's held stack across the
    /// wait: the thread acquires nothing while blocked, and it holds the
    /// lock again the moment this returns.
    pub fn wait(mut self, cv: &Condvar) -> Self {
        // The guard is always present outside a wait; if it ever were
        // not, waiting would be meaningless, so a fresh panic-free path
        // matters less than keeping the API non-Option. Restore on exit.
        if let Some(g) = self.guard.take() {
            let g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
            self.guard = Some(g);
        }
        self
    }

    /// [`Condvar::wait_timeout`] lifted to ordered guards; the `bool` is
    /// `true` when the wait timed out.
    pub fn wait_timeout(mut self, cv: &Condvar, timeout: Duration) -> (Self, bool) {
        let mut timed_out = false;
        if let Some(g) = self.guard.take() {
            let (g, t) = match cv.wait_timeout(g, timeout) {
                Ok((g, t)) => (g, t),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    (g, t)
                }
            };
            timed_out = t.timed_out();
            self.guard = Some(g);
        }
        (self, timed_out)
    }
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            // Unreachable by construction: `guard` is only `None` inside
            // the wait methods, which never deref.
            None => unreachable!("ordered guard deref during a condvar wait"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            None => unreachable!("ordered guard deref during a condvar wait"),
        }
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner mutex before forgetting the held entry, so a
        // panic unwinding through here still pops in LIFO order.
        self.guard = None;
        #[cfg(debug_assertions)]
        checker::release(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ascending_acquisition_is_clean() {
        let a = OrderedMutex::new(10, "test-clean-a", 1);
        let b = OrderedMutex::new(20, "test-clean-b", 2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        drop(gb);
        drop(ga);
        // Re-acquisition after release is fine in any order.
        let gb = b.lock();
        drop(gb);
        let ga = a.lock();
        drop(ga);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_inversion_panics_at_the_acquisition_site() {
        let result = std::thread::spawn(|| {
            let lo = OrderedMutex::new(10, "test-inv-lo", ());
            let hi = OrderedMutex::new(20, "test-inv-hi", ());
            let _ghi = hi.lock();
            let _glo = lo.lock(); // inversion: rank 10 under rank 20
        })
        .join();
        let err = result.expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-order violation") && msg.contains("test-inv-lo"),
            "unhelpful panic: {msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn cross_thread_cycle_is_detected_once_both_orders_are_seen() {
        // Same rank on both locks so the rank check cannot fire first;
        // the cycle detector must catch the inversion instead.
        let a = Arc::new(OrderedMutex::new(30, "test-cyc-a", ()));
        let b = Arc::new(OrderedMutex::new(30, "test-cyc-b", ()));
        // Thread 1 observes a → b... but equal ranks already panic.
        // Use distinct ranks and sequential (non-deadlocking) inversion
        // across *separate* lock pairs recorded in the global graph:
        drop((a, b));
        let x = Arc::new(OrderedMutex::new(40, "test-cyc-x", ()));
        let y = Arc::new(OrderedMutex::new(50, "test-cyc-y", ()));
        {
            let _gx = x.lock();
            let _gy = y.lock(); // records x → y
        }
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let result = std::thread::spawn(move || {
            let _gy = y2.lock();
            let _gx = x2.lock(); // y → x closes the cycle (and inverts rank)
        })
        .join();
        assert!(result.is_err(), "cycle/inversion must panic");
    }

    #[test]
    fn condvar_wait_timeout_reacquires_the_lock() {
        let m = Arc::new(OrderedMutex::new(60, "test-cv", 0u32));
        let cv = Arc::new(Condvar::new());
        let guard = m.lock();
        let (mut guard, timed_out) = guard.wait_timeout(&cv, Duration::from_millis(5));
        assert!(timed_out);
        *guard += 1;
        assert_eq!(*guard, 1);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        let m = Arc::new(OrderedMutex::new(70, "test-poison", 41u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        let mut g = m.lock(); // must not panic
        *g += 1;
        assert_eq!(*g, 42);
    }
}
