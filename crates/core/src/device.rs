//! A simulated voice-powered device.
//!
//! [`Device`] bundles what the paper's hardware-requirements paragraph
//! lists — "PIANO requires the vouching device and authenticating device to
//! be equipped with microphone, speaker, and Bluetooth" — plus the two
//! imperfections the protocol must survive: an unsynchronized, skewed
//! sample clock and an unpredictable audio-stack latency.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use piano_acoustics::field::Emission;
use piano_acoustics::latency::LatencyModel;
use piano_acoustics::{
    AcousticField, AudioBuffer, DeviceClock, MicrophoneModel, Position, SpeakerModel,
};
use piano_bluetooth::DeviceId;

/// A device that can play and record through an [`AcousticField`].
#[derive(Clone, Debug)]
pub struct Device {
    /// Bluetooth identity.
    pub id: DeviceId,
    /// Location in the environment.
    pub position: Position,
    /// Speaker hardware.
    pub speaker: SpeakerModel,
    /// Microphone hardware.
    pub microphone: MicrophoneModel,
    /// The device's free-running clock.
    pub clock: DeviceClock,
    /// Audio pipeline latency distribution.
    pub latency: LatencyModel,
}

impl Device {
    /// A phone-class device with seeded random hardware: response ripple,
    /// clock skew within ±80 ppm, epoch offset up to ±5000 s, phone-grade
    /// latency.
    pub fn phone(id: u64, position: Position, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let clock = DeviceClock::new(rng.gen_range(-5_000.0..5_000.0), rng.gen_range(-80.0..80.0));
        Device {
            id: DeviceId::new(id),
            position,
            speaker: SpeakerModel::phone(rng.gen()),
            microphone: MicrophoneModel::phone(rng.gen()),
            clock,
            latency: LatencyModel::phone(),
        }
    }

    /// An idealized device: flat hardware, perfect clock, zero latency.
    /// Used by tests that isolate a single error source.
    pub fn ideal(id: u64, position: Position) -> Self {
        Device {
            id: DeviceId::new(id),
            position,
            speaker: SpeakerModel::ideal(),
            microphone: MicrophoneModel::ideal(),
            clock: DeviceClock::ideal(),
            latency: LatencyModel::ideal(),
        }
    }

    /// Moves the device, returning it (builder-style for scenario setup).
    #[must_use]
    pub fn at(mut self, position: Position) -> Self {
        self.position = position;
        self
    }

    /// Issues a playback command at `command_world_s`: after the sampled
    /// pipeline latency, the speaker radiates `waveform` into the field.
    ///
    /// Returns the actual world time the first sample left the speaker —
    /// for the simulation's bookkeeping only; protocol code never sees it
    /// (that opacity is the point of the paper's design).
    pub fn play(
        &self,
        field: &mut AcousticField,
        waveform: &[f64],
        command_world_s: f64,
        nominal_rate_hz: f64,
        rng: &mut ChaCha8Rng,
    ) -> f64 {
        let start = command_world_s + self.latency.sample_playback(rng);
        let radiated = self.speaker.radiate(waveform, nominal_rate_hz);
        field.emit(Emission {
            waveform: radiated,
            start_world_s: start,
            sample_interval_s: self.clock.sample_interval_world(nominal_rate_hz),
            position: self.position,
        });
        start
    }

    /// Issues a record command at `command_world_s`: after the sampled
    /// pipeline latency, captures `duration_s` of audio.
    ///
    /// Returns the recording and the actual capture start in world time
    /// (simulation bookkeeping only, as with [`Device::play`]).
    pub fn record(
        &self,
        field: &mut AcousticField,
        command_world_s: f64,
        duration_s: f64,
        nominal_rate_hz: f64,
        rng: &mut ChaCha8Rng,
    ) -> (AudioBuffer, f64) {
        let start = command_world_s + self.latency.sample_record(rng);
        let len = (duration_s * nominal_rate_hz).round() as usize;
        let buf = field.render_recording(
            &self.microphone,
            &self.clock,
            self.position,
            start,
            len,
            nominal_rate_hz,
        );
        (buf, start)
    }

    /// Distance to another device in meters.
    pub fn distance_to(&self, other: &Device) -> f64 {
        self.position.distance_to(&other.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::Environment;
    use piano_dsp::tone;

    const FS: f64 = 44_100.0;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn phone_devices_differ_by_seed() {
        let a = Device::phone(1, Position::ORIGIN, 1);
        let b = Device::phone(2, Position::ORIGIN, 2);
        assert_ne!(a.clock, b.clock);
        assert_ne!(a.speaker.response, b.speaker.response);
    }

    #[test]
    fn phone_device_is_reproducible() {
        let a = Device::phone(1, Position::ORIGIN, 7);
        let b = Device::phone(1, Position::ORIGIN, 7);
        assert_eq!(a.clock, b.clock);
        assert_eq!(a.speaker, b.speaker);
    }

    #[test]
    fn clock_skew_is_within_crystal_tolerance() {
        for seed in 0..50 {
            let d = Device::phone(1, Position::ORIGIN, seed);
            assert!(d.clock.skew_ppm().abs() < 80.0);
        }
    }

    #[test]
    fn play_then_record_roundtrip() {
        let mut field = AcousticField::new(Environment::anechoic(), 5);
        let speaker_dev = Device::ideal(1, Position::ORIGIN);
        let mic_dev = Device::ideal(2, Position::new(1.0, 0.0, 0.0));
        let wave = tone::sine(14_000.0, 0.0, 5_000.0, FS, 4096);
        let mut r = rng(1);
        speaker_dev.play(&mut field, &wave, 0.05, FS, &mut r);
        let (rec, start) = mic_dev.record(&mut field, 0.0, 0.5, FS, &mut r);
        assert_eq!(start, 0.0); // ideal latency
        assert!(rec.peak() > 100.0, "signal should be audible");
    }

    #[test]
    fn latency_delays_playback() {
        let mut field = AcousticField::new(Environment::anechoic(), 5);
        let dev = Device::phone(1, Position::ORIGIN, 3);
        let wave = tone::sine(14_000.0, 0.0, 5_000.0, FS, 512);
        let mut r = rng(2);
        let start = dev.play(&mut field, &wave, 1.0, FS, &mut r);
        assert!(start > 1.0 + dev.latency.playback_mean_s - dev.latency.playback_jitter_s);
        assert!(start < 1.0 + dev.latency.playback_mean_s + dev.latency.playback_jitter_s);
    }

    #[test]
    fn at_moves_device() {
        let d = Device::ideal(1, Position::ORIGIN).at(Position::new(2.0, 0.0, 0.0));
        assert_eq!(d.position, Position::new(2.0, 0.0, 0.0));
        let e = Device::ideal(2, Position::ORIGIN);
        assert!((d.distance_to(&e) - 2.0).abs() < 1e-12);
    }
}
