//! The ACTION protocol, Steps I–VI (paper Sec. IV-A).
//!
//! One call to [`run_action`] executes the whole exchange between the
//! authenticating device A and the vouching device V:
//!
//! 1. **Step I** — A constructs two randomized reference signals `S_A`,
//!    `S_V` ([`crate::signal`]).
//! 2. **Step II** — A sends both to V over the Bluetooth secure channel
//!    ([`piano_bluetooth`], [`crate::wire`]). The same message doubles as
//!    the start command.
//! 3. **Step III** — both devices record; A plays `S_A` and V plays `S_V`
//!    at staggered offsets. All playback/record commands suffer each
//!    device's audio-stack latency; nobody compensates for it.
//! 4. **Step IV** — each device detects both signals in its own recording
//!    ([`crate::detect`]).
//! 5. **Step V** — V reports its local location difference back to A.
//! 6. **Step VI** — A combines the two differences (Eq. 3,
//!    [`crate::ranging`]).
//!
//! The returned [`ActionOutcome`] carries the estimate (or
//! [`DistanceEstimate::SignalAbsent`]) plus diagnostics used by the
//! efficiency models and by the evaluation harness.
//!
//! Since the streaming redesign, the protocol logic itself lives in the
//! sans-IO [`crate::stream::AuthSession`] state machines;
//! [`run_session_pair`] is the canonical driver wiring a pair of them to
//! the simulated radio and acoustics, and [`run_action`] /
//! [`run_action_with`] are thin compatibility wrappers over it.

use std::sync::Arc;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;
use piano_bluetooth::channel::SecureChannel;
use piano_bluetooth::{BluetoothLink, PairingRegistry};

use crate::config::ActionConfig;
use crate::detect::Detector;
use crate::device::Device;
use crate::error::PianoError;
use crate::signal::ReferenceSignal;
use crate::stream::AuthSession;
use crate::wire::Message;

/// The protocol's distance verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DistanceEstimate {
    /// Both signals were detected on both devices; distance in meters.
    Measured(f64),
    /// At least one reference signal was not present in one recording —
    /// the devices are out of acoustic range (or a wall/spoofing defense
    /// suppressed detection). PIANO denies access in this case.
    SignalAbsent,
}

impl DistanceEstimate {
    /// The measured distance, if any.
    pub fn distance_m(&self) -> Option<f64> {
        match self {
            DistanceEstimate::Measured(d) => Some(*d),
            DistanceEstimate::SignalAbsent => None,
        }
    }
}

/// Everything a protocol run produced besides the estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct ActionDiagnostics {
    /// Detected locations `(l_AA, l_AV)` on the authenticating device.
    pub locations_auth: Option<(usize, usize)>,
    /// Detected locations `(l_VA, l_VV)` on the vouching device.
    pub locations_vouch: Option<(usize, usize)>,
    /// Window FFTs executed by the authenticating device's scan.
    pub ffts_auth: usize,
    /// Window FFTs executed by the vouching device's scan.
    pub ffts_vouch: usize,
    /// Bluetooth payload bytes this run added to the link.
    pub bluetooth_bytes: usize,
    /// Bluetooth messages this run added to the link.
    pub bluetooth_messages: usize,
    /// Recording length in samples (per device).
    pub recording_len: usize,
    /// Tone counts of the two reference signals.
    pub tone_counts: (usize, usize),
}

/// Result of one ACTION run.
#[derive(Clone, Debug, PartialEq)]
pub struct ActionOutcome {
    /// The distance verdict.
    pub estimate: DistanceEstimate,
    /// Run diagnostics.
    pub diagnostics: ActionDiagnostics,
}

/// Draws the session id and the two reference signals exactly as
/// [`run_action`] does, in the same RNG order.
///
/// Exposed so tests and the oracle-replay attacker (which validates the
/// security experiments) can replicate a session's secrets from a cloned
/// RNG. Honest code has no reason to call this.
pub fn draw_session_signals(
    config: &ActionConfig,
    rng: &mut ChaCha8Rng,
) -> (u64, ReferenceSignal, ReferenceSignal) {
    let session: u64 = rng.gen();
    let sa = ReferenceSignal::random(config, rng);
    let sv = ReferenceSignal::random(config, rng);
    (session, sa, sv)
}

/// Runs the complete ACTION protocol between two paired devices.
///
/// `now_world_s` is the world time at which the authenticating device
/// initiates the run. Interfering or adversarial sound sources must be
/// registered as emissions on `field` before the call (their world times
/// decide whether they land inside the recordings).
///
/// # Errors
///
/// * [`PianoError::Bluetooth`] if the devices are not paired or the radio
///   link fails (out of range) at any exchange.
/// * [`PianoError::InvalidConfig`] if `config` fails validation.
/// * [`PianoError::Wire`] if a message fails to decode (cannot happen
///   between honest devices; surfaced for completeness).
#[allow(clippy::too_many_arguments)]
pub fn run_action(
    config: &ActionConfig,
    field: &mut AcousticField,
    link: &mut BluetoothLink,
    registry: &PairingRegistry,
    auth: &Device,
    vouch: &Device,
    now_world_s: f64,
    rng: &mut ChaCha8Rng,
) -> Result<ActionOutcome, PianoError> {
    config.validate()?;
    let detector = Arc::new(Detector::new(config));
    run_session_pair(
        &detector,
        field,
        link,
        registry,
        auth,
        vouch,
        now_world_s,
        rng,
    )
}

/// [`run_action`] with a caller-provided [`Detector`].
///
/// Building a detector allocates FFT plans and window tables; callers that
/// authenticate repeatedly should reuse one detector per configuration.
/// This wrapper clones `detector` into an `Arc` and delegates to
/// [`run_session_pair`]; the clone is O(1) (detectors share their plan
/// memory behind an `Arc`), so per-call reuse semantics are preserved.
///
/// # Errors
///
/// Same as [`run_action`].
#[allow(clippy::too_many_arguments)]
pub fn run_action_with(
    detector: &Detector,
    field: &mut AcousticField,
    link: &mut BluetoothLink,
    registry: &PairingRegistry,
    auth: &Device,
    vouch: &Device,
    now_world_s: f64,
    rng: &mut ChaCha8Rng,
) -> Result<ActionOutcome, PianoError> {
    let detector = Arc::new(detector.clone());
    run_session_pair(
        &detector,
        field,
        link,
        registry,
        auth,
        vouch,
        now_world_s,
        rng,
    )
}

/// The canonical protocol driver: runs the complete ACTION exchange by
/// wiring two sans-IO [`AuthSession`] state machines
/// ([`crate::stream`]) to the simulated substrates — the secure channel
/// and radio for Step II/V, the devices' speakers and microphones for
/// Step III. All protocol logic (signal drawing, reconstruction,
/// detection, Eq. 3) lives in the sessions; this function only moves
/// bytes and samples.
///
/// RNG order, wire traffic, and results are identical to the historical
/// monolithic implementation: the authenticator session draws
/// `(session, S_A, S_V)` via [`draw_session_signals`] and the sessions'
/// end-of-stream scans are bit-identical to [`Detector::detect_many`].
///
/// # Errors
///
/// Same as [`run_action`].
#[allow(clippy::too_many_arguments)]
pub fn run_session_pair(
    detector: &Arc<Detector>,
    field: &mut AcousticField,
    link: &mut BluetoothLink,
    registry: &PairingRegistry,
    auth: &Device,
    vouch: &Device,
    now_world_s: f64,
    rng: &mut ChaCha8Rng,
) -> Result<ActionOutcome, PianoError> {
    let config = detector.config();
    let bytes_before = link.total_bytes();
    let msgs_before = link.message_count();

    // Secure channel endpoints over the bonded link key.
    let key = registry.key_for(auth.id, vouch.id)?;

    // ── Step I: the authenticator session draws the randomized signals. ──
    let mut session_a = AuthSession::authenticator_with(Arc::clone(detector), f64::INFINITY, rng);
    let session = session_a.session_id();
    let mut chan_auth = SecureChannel::new(key, session << 8);
    let mut chan_vouch = SecureChannel::new(key, (session << 8) | 0x80);

    // ── Step II: transmit the challenge to the vouching device. ──────────
    let msg = session_a
        .poll_transmit()
        .expect("authenticator queues its challenge at construction");
    let frame = chan_auth.seal(&msg.encode());
    let arrival_s = link.transmit(now_world_s, &auth.position, &vouch.position, &frame)?;
    let opened = chan_vouch.open(&frame)?;
    let mut session_v = AuthSession::voucher_with(Arc::clone(detector));
    session_v.handle_message(Message::decode(&opened)?)?;

    // ── Step III: record on both devices; play S_A then S_V. ─────────────
    // The signals message doubles as the start command: both devices act at
    // `arrival_s` (A knows its own send completed then).
    let start_cmd = arrival_s;
    auth.play(
        field,
        &session_a
            .playback_waveform()
            .expect("authenticator knows S_A"),
        start_cmd + config.play_offset_auth_s,
        config.sample_rate,
        rng,
    );
    vouch.play(
        field,
        &session_v
            .playback_waveform()
            .expect("challenged voucher knows S_V"),
        start_cmd + config.play_offset_vouch_s,
        config.sample_rate,
        rng,
    );
    let (rec_auth, _) = auth.record(
        field,
        start_cmd,
        config.recording_duration_s,
        config.sample_rate,
        rng,
    );
    let (rec_vouch, _) = vouch.record(
        field,
        start_cmd,
        config.recording_duration_s,
        config.sample_rate,
        rng,
    );

    // ── Step IV: both sessions scan their own recordings. ────────────────
    let _ = session_a.push_audio(rec_auth.samples());
    let _ = session_a.finish_audio();
    let _ = session_v.push_audio(rec_vouch.samples());
    let _ = session_v.finish_audio();

    // ── Step V: V reports its local difference (or absence). ─────────────
    let report = session_v
        .poll_transmit()
        .expect("finished voucher queues its report");
    let report_frame = chan_vouch.seal(&report.encode());
    link.transmit(
        start_cmd + config.recording_duration_s,
        &vouch.position,
        &auth.position,
        &report_frame,
    )?;
    let report_opened = chan_auth.open(&report_frame)?;
    let _ = session_a.handle_message(Message::decode(&report_opened)?)?;

    // ── Step VI: the authenticator session has combined Eq. 3. ───────────
    let estimate = session_a
        .estimate()
        .expect("report + locations decide the session");
    let (det_aa, det_av) = session_a.locations().expect("scan finished");
    let (det_va, det_vv) = session_v.locations().expect("scan finished");

    Ok(ActionOutcome {
        estimate,
        diagnostics: ActionDiagnostics {
            locations_auth: det_aa.location().zip(det_av.location()),
            locations_vouch: det_va.location().zip(det_vv.location()),
            ffts_auth: session_a.scan_ffts(),
            ffts_vouch: session_v.scan_ffts(),
            bluetooth_bytes: link.total_bytes() - bytes_before,
            bluetooth_messages: link.message_count() - msgs_before,
            recording_len: rec_auth.len(),
            tone_counts: session_a.tone_counts().expect("authenticator knows both"),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn setup(
        distance_m: f64,
        env: Environment,
        seed: u64,
    ) -> (
        AcousticField,
        BluetoothLink,
        PairingRegistry,
        Device,
        Device,
        ChaCha8Rng,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = AcousticField::new(env, seed.wrapping_mul(31).wrapping_add(5));
        let mut link = BluetoothLink::new();
        let _ = &mut link;
        let mut registry = PairingRegistry::new();
        let auth = Device::phone(1, Position::ORIGIN, seed.wrapping_add(100));
        let vouch = Device::phone(
            2,
            Position::new(distance_m, 0.0, 0.0),
            seed.wrapping_add(200),
        );
        registry.pair(auth.id, vouch.id, &mut rng);
        (field, link, registry, auth, vouch, rng)
    }

    #[test]
    fn measures_distance_in_quiet_room() {
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            setup(1.0, Environment::anechoic(), 42);
        let outcome = run_action(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &registry,
            &auth,
            &vouch,
            0.0,
            &mut rng,
        )
        .unwrap();
        let d = outcome.estimate.distance_m().expect("should measure");
        assert!(
            (d - 1.0).abs() < 0.15,
            "quiet-room estimate {d} m should be within 15 cm of truth"
        );
        assert!(outcome.diagnostics.locations_auth.is_some());
        assert!(outcome.diagnostics.locations_vouch.is_some());
        assert!(outcome.diagnostics.bluetooth_messages >= 2);
        assert!(outcome.diagnostics.ffts_auth > 50);
    }

    #[test]
    fn unpaired_devices_error() {
        let (mut field, mut link, _registry, auth, vouch, mut rng) =
            setup(1.0, Environment::anechoic(), 7);
        let empty = PairingRegistry::new();
        let err = run_action(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &empty,
            &auth,
            &vouch,
            0.0,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, PianoError::Bluetooth(_)));
    }

    #[test]
    fn beyond_bluetooth_range_errors() {
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            setup(12.0, Environment::anechoic(), 8);
        let err = run_action(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &registry,
            &auth,
            &vouch,
            0.0,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, PianoError::Bluetooth(_)));
    }

    #[test]
    fn far_apart_in_bluetooth_range_reports_absent() {
        // 6 m: within Bluetooth range but far beyond acoustic reach.
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            setup(6.0, Environment::anechoic(), 9);
        let outcome = run_action(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &registry,
            &auth,
            &vouch,
            0.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.estimate, DistanceEstimate::SignalAbsent);
    }

    #[test]
    fn office_noise_still_measures_with_centimeter_error() {
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            setup(0.5, Environment::office(), 10);
        let outcome = run_action(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &registry,
            &auth,
            &vouch,
            0.0,
            &mut rng,
        )
        .unwrap();
        let d = outcome.estimate.distance_m().expect("measured");
        assert!((d - 0.5).abs() < 0.3, "office estimate {d}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let (mut field, mut link, registry, auth, vouch, mut rng) =
                setup(1.5, Environment::home(), 77);
            run_action(
                &ActionConfig::default(),
                &mut field,
                &mut link,
                &registry,
                &auth,
                &vouch,
                0.0,
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wall_between_devices_reports_absent() {
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            setup(1.0, Environment::anechoic(), 11);
        field.add_wall(piano_acoustics::Wall::at_x(0.5));
        let outcome = run_action(
            &ActionConfig::default(),
            &mut field,
            &mut link,
            &registry,
            &auth,
            &vouch,
            0.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.estimate, DistanceEstimate::SignalAbsent);
    }

    #[test]
    fn invalid_config_is_rejected_before_any_io() {
        let (mut field, mut link, registry, auth, vouch, mut rng) =
            setup(1.0, Environment::anechoic(), 12);
        let cfg = ActionConfig {
            fine_step: 0,
            ..ActionConfig::default()
        };
        let err = run_action(
            &cfg, &mut field, &mut link, &registry, &auth, &vouch, 0.0, &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, PianoError::InvalidConfig(_)));
        assert_eq!(link.message_count(), 0);
    }
}
