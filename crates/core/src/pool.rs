//! Slab-pooled, refcounted sample buffers for zero-copy ingest.
//!
//! PIANO's standing sessions make ingestion a *continuous* workload: a
//! gateway decodes audio frames for as long as its feeds stay attached,
//! so per-frame cost — not per-authentication cost — bounds fleet
//! capacity. Before this module, every decoded batch allocated a fresh
//! `Vec<f64>`, was copied into [`IngestFeed`]'s pending queue, drained
//! into another fresh `Vec`, and copied once more into the
//! [`StreamingDetector`] ring: four owners per sample before the first
//! FFT, and four heap round-trips per frame, forever.
//!
//! [`FramePool`] replaces that chain with a per-server slab pool. A frame
//! is decoded **once** into a [`PooledBufMut`] drawn from the pool,
//! frozen into an immutable, refcounted [`PooledBuf`], and handed *by
//! reference* through [`Message::decode`](crate::wire::Message) →
//! [`IngestFeed`] → the detector ring. When the last handle drops, the
//! slab's backing `Vec` (capacity intact) returns to the pool's free
//! list, so a warmed steady-state feed ingests frames with **zero** heap
//! allocations — pinned by the `tests/alloc_discipline.rs` counting-
//! allocator harness and reported by the bench's `alloc` block.
//!
//! # Lifecycle
//!
//! ```text
//!             acquire()                freeze()                 drop (last ref)
//!  free list ──────────► PooledBufMut ─────────► PooledBuf ──┬───────────► free list
//!  (Vec capacity kept)    (unique, writable)     (shared,    │  clone()      ▲
//!                                                 refcounted)└──► PooledBuf ─┘
//! ```
//!
//! # Refcount rules
//!
//! * A [`PooledBufMut`] is unique by construction; freezing it never
//!   copies.
//! * [`PooledBuf::clone`] is an `Arc` refcount bump — no allocation, no
//!   copy. Clones may live on other threads (`Send + Sync`).
//! * Recycling is opportunistic: the handle that observes itself to be
//!   the last owner returns the slab. If two clones race on the final
//!   drops, the slab may simply be freed instead of recycled — never
//!   double-recycled — because observing a strong count of 1 requires
//!   still holding the only reference.
//! * The free list is bounded ([`MAX_FREE_SLABS`] slabs per element
//!   type) and refuses slabs above [`MAX_RETAIN_ELEMS`] elements, so a
//!   burst of oversized frames cannot pin memory for the lifetime of the
//!   server.
//!
//! # Panic freedom
//!
//! This module sits on the wire ingest path (it is a taint root of
//! piano-lint's `wire-no-panic` rule, and `crates/core/src/pool.rs` is
//! in the rule's scope): nothing here unwraps, expects, or indexes
//! unchecked. Mutex poisoning is absorbed with
//! [`into_inner`](std::sync::PoisonError::into_inner) — a free list is
//! always in a valid state, even if a holder panicked elsewhere.
//!
//! [`IngestFeed`]: crate::wire::IngestFeed
//! [`StreamingDetector`]: crate::stream::StreamingDetector

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::wire::Samples;

/// Most idle slabs a single element-type pool retains.
pub const MAX_FREE_SLABS: usize = 64;

/// Largest slab capacity (in elements) the free list retains; larger
/// slabs are freed on release instead of cached. Matches the wire
/// layer's per-batch sample ceiling, so every conforming frame's buffer
/// is retainable.
pub const MAX_RETAIN_ELEMS: usize = 262_144;

/// Locks a free list, absorbing poison: the list itself cannot be left
/// mid-mutation (all mutations are single `Vec` push/pop calls).
fn lock_free<T>(free: &Mutex<Vec<Arc<Vec<T>>>>) -> MutexGuard<'_, Vec<Arc<Vec<T>>>> {
    match free.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A free list of reusable slabs for one element type, plus counters.
#[derive(Debug, Default)]
struct Pool<T> {
    free: Mutex<Vec<Arc<Vec<T>>>>,
    created: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl<T> Pool<T> {
    /// Pops a recycled slab or creates a fresh one. The returned handle
    /// is unique (strong count 1).
    fn acquire(self: &Arc<Self>) -> PooledBufMut<T> {
        let slab = lock_free(&self.free).pop();
        let slab = match slab {
            Some(slab) => slab,
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Arc::new(Vec::new())
            }
        };
        PooledBufMut {
            slab: Some(slab),
            home: Arc::clone(self),
        }
    }

    /// Returns a slab to the free list if it is worth keeping; counts it
    /// either way. `slab` must be uniquely held (the callers guarantee
    /// it by observing a strong count of 1 on a handle they still own).
    fn release(&self, mut slab: Arc<Vec<T>>) {
        // Clear drops the elements (releasing any nested pooled handles)
        // but keeps the capacity — that retained capacity is the pool's
        // whole value.
        match Arc::get_mut(&mut slab) {
            Some(v) if v.capacity() <= MAX_RETAIN_ELEMS => v.clear(),
            _ => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut free = lock_free(&self.free);
        if free.len() < MAX_FREE_SLABS {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            free.push(slab);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stat_into(&self, stats: &mut PoolStats) {
        stats.slabs_created += self.created.load(Ordering::Relaxed);
        stats.slabs_recycled += self.recycled.load(Ordering::Relaxed);
        stats.slabs_discarded += self.discarded.load(Ordering::Relaxed);
        stats.slabs_free += lock_free(&self.free).len();
    }
}

/// A unique, writable pooled buffer — the decode target. Freeze it into
/// a shareable [`PooledBuf`] once filled; dropping it unfrozen returns
/// the slab to the pool.
pub struct PooledBufMut<T> {
    slab: Option<Arc<Vec<T>>>,
    home: Arc<Pool<T>>,
}

impl<T: Clone> PooledBufMut<T> {
    /// The backing vector. Uniqueness is a construction invariant, so
    /// [`Arc::make_mut`] never clones on this path; the fallback exists
    /// only to keep the function total without a panic edge.
    pub fn as_mut_vec(&mut self) -> &mut Vec<T> {
        let slab = self.slab.get_or_insert_with(|| Arc::new(Vec::new()));
        Arc::make_mut(slab)
    }

    /// The filled prefix, immutably.
    pub fn as_slice(&self) -> &[T] {
        match &self.slab {
            Some(slab) => slab.as_slice(),
            None => &[],
        }
    }

    /// Appends a copy of `values`.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.as_mut_vec().extend_from_slice(values);
    }

    /// Appends one value.
    pub fn push(&mut self, value: T) {
        self.as_mut_vec().push(value);
    }

    /// Number of elements written so far.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Seals the buffer into an immutable, refcounted [`PooledBuf`].
    /// Moves the slab — no copy, no allocation.
    pub fn freeze(mut self) -> PooledBuf<T> {
        PooledBuf {
            slab: self.slab.take(),
            home: Arc::clone(&self.home),
        }
    }
}

impl<T> Drop for PooledBufMut<T> {
    fn drop(&mut self) {
        if let Some(slab) = self.slab.take() {
            if Arc::strong_count(&slab) == 1 {
                self.home.release(slab);
            }
        }
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for PooledBufMut<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// An immutable, refcounted pooled buffer. Cloning bumps a refcount;
/// dropping the last handle returns the slab (capacity intact) to its
/// pool.
pub struct PooledBuf<T> {
    slab: Option<Arc<Vec<T>>>,
    home: Arc<Pool<T>>,
}

impl<T> PooledBuf<T> {
    fn slice(&self) -> &[T] {
        match &self.slab {
            Some(slab) => slab.as_slice(),
            None => &[],
        }
    }
}

impl<T> Deref for PooledBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.slice()
    }
}

impl<T> Clone for PooledBuf<T> {
    fn clone(&self) -> Self {
        PooledBuf {
            slab: self.slab.clone(),
            home: Arc::clone(&self.home),
        }
    }
}

impl<T> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        if let Some(slab) = self.slab.take() {
            if Arc::strong_count(&slab) == 1 {
                self.home.release(slab);
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.slice()).finish()
    }
}

/// Counters over every free list in a [`FramePool`] — what the
/// boundedness tests and the bench's `alloc` block report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slabs ever allocated fresh (a warmed pool stops growing this).
    pub slabs_created: u64,
    /// Releases that returned a slab to a free list.
    pub slabs_recycled: u64,
    /// Releases that freed a slab (list full or slab oversized).
    pub slabs_discarded: u64,
    /// Slabs currently idle on the free lists.
    pub slabs_free: usize,
}

/// The per-server slab pool: one free list per pooled element type
/// (`f64` samples, `i16` quantized samples, and the per-batch chunk
/// lists that hold the frozen handles). Clone handles freely — all
/// clones share the same free lists.
#[derive(Clone, Debug, Default)]
pub struct FramePool {
    f64s: Arc<Pool<f64>>,
    i16s: Arc<Pool<i16>>,
    f64_lists: Arc<Pool<Samples<f64>>>,
    i16_lists: Arc<Pool<Samples<i16>>>,
}

impl FramePool {
    /// A fresh pool with empty free lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writable `f64` sample buffer (decode target for raw audio).
    pub fn acquire_f64(&self) -> PooledBufMut<f64> {
        self.f64s.acquire()
    }

    /// A writable `i16` sample buffer (decode target for codec audio).
    pub fn acquire_i16(&self) -> PooledBufMut<i16> {
        self.i16s.acquire()
    }

    /// A writable list of frozen `f64` chunks (one per decoded batch).
    pub fn acquire_f64_list(&self) -> PooledBufMut<Samples<f64>> {
        self.f64_lists.acquire()
    }

    /// A writable list of frozen `i16` chunks (one per decoded batch).
    pub fn acquire_i16_list(&self) -> PooledBufMut<Samples<i16>> {
        self.i16_lists.acquire()
    }

    /// Aggregate counters across all four free lists.
    pub fn stats(&self) -> PoolStats {
        let mut stats = PoolStats::default();
        self.f64s.stat_into(&mut stats);
        self.i16s.stat_into(&mut stats);
        self.f64_lists.stat_into(&mut stats);
        self.i16_lists.stat_into(&mut stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_and_release_recycles_the_slab() {
        let pool = FramePool::new();
        let mut b = pool.acquire_f64();
        b.extend_from_slice(&[1.0, 2.0, 3.0]);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1.0, 2.0, 3.0]);
        let clone = frozen.clone();
        drop(frozen);
        assert_eq!(pool.stats().slabs_free, 0, "a live clone pins the slab");
        drop(clone);
        let stats = pool.stats();
        assert_eq!(stats.slabs_free, 1);
        assert_eq!(stats.slabs_created, 1);
        assert_eq!(stats.slabs_recycled, 1);

        // Reacquire: same capacity comes back, nothing new is created.
        let b = pool.acquire_f64();
        assert!(b.is_empty());
        assert_eq!(pool.stats().slabs_created, 1);
    }

    #[test]
    fn unfrozen_buffers_return_on_drop() {
        let pool = FramePool::new();
        let mut b = pool.acquire_i16();
        b.push(7);
        drop(b);
        let stats = pool.stats();
        assert_eq!((stats.slabs_created, stats.slabs_free), (1, 1));
        let b = pool.acquire_i16();
        assert!(b.is_empty(), "recycled slabs come back cleared");
    }

    #[test]
    fn oversized_slabs_are_not_retained() {
        let pool = FramePool::new();
        let mut b = pool.acquire_f64();
        b.as_mut_vec().reserve(MAX_RETAIN_ELEMS + 1);
        drop(b.freeze());
        let stats = pool.stats();
        assert_eq!(stats.slabs_free, 0);
        assert_eq!(stats.slabs_discarded, 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = FramePool::new();
        let bufs: Vec<_> = (0..MAX_FREE_SLABS + 9)
            .map(|_| pool.acquire_f64().freeze())
            .collect();
        drop(bufs);
        let stats = pool.stats();
        assert_eq!(stats.slabs_free, MAX_FREE_SLABS);
        assert_eq!(stats.slabs_discarded, 9);
    }

    #[test]
    fn chunk_list_release_cascades_to_sample_slabs() {
        let pool = FramePool::new();
        let mut list = pool.acquire_f64_list();
        for _ in 0..3 {
            let mut chunk = pool.acquire_f64();
            chunk.push(0.5);
            list.push(Samples::Pooled(chunk.freeze()));
        }
        let frozen = list.freeze();
        assert_eq!(frozen.len(), 3);
        drop(frozen);
        // One list slab plus its three sample slabs all came home.
        assert_eq!(pool.stats().slabs_free, 4);
    }
}
