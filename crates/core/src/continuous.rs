//! Continuous authentication sessions (paper future work, Sec. VII).
//!
//! The paper's conclusion points at "adapting PIANO to other application
//! scenarios". The natural first extension — and what products actually
//! need — is *continuous* authentication: instead of one distance check at
//! unlock time, the authenticating device re-verifies proximity on a
//! schedule and locks as soon as the vouching device leaves.
//!
//! [`ContinuousSession`] implements that policy loop on top of the
//! multi-tenant [`crate::stream::AuthService`] (via
//! [`ContinuousSession::recheck_via`]; the historical
//! [`PianoAuthenticator`] entry point remains as a deprecated shim): a
//! sliding window of recent decisions with a
//! configurable lock-out rule (`k` consecutive denials lock the session,
//! absorbing occasional false rejections so the user isn't locked out by
//! one noisy measurement — the FRR/FAR trade-off of Tables I/II composed
//! over time).
//!
//! Re-verification cost matters here more than anywhere else: a deployment
//! rechecking thousands of sessions every 30 s runs Algorithm 1
//! continuously. Each recheck rides the authenticator's long-lived
//! [`crate::detect::Detector`] — FFT plans and window tables are built
//! once per authenticator, not per recheck — and the detector itself is
//! `Sync`, so a fleet-wide scheduler can fan rechecks out across threads
//! against shared detectors (see
//! [`crate::detect::Detector::detect_many_parallel`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;

use crate::device::Device;
use crate::error::PianoError;
use crate::piano::{AuthDecision, PianoAuthenticator};
use crate::stream::AuthService;

/// Session policy: how many consecutive denials lock the session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionPolicy {
    /// Consecutive denials required to lock (≥1). With the office FRR at
    /// τ = 1 m around 3 %, `2` drives spurious lock-outs below 0.1 %.
    pub denials_to_lock: u32,
    /// Re-verification period in seconds.
    pub recheck_period_s: f64,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        SessionPolicy {
            denials_to_lock: 2,
            recheck_period_s: 30.0,
        }
    }
}

/// State of a continuous session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// The user is present; access remains granted.
    Active,
    /// The session locked after the configured run of denials.
    Locked,
}

/// A continuous-authentication session.
#[derive(Debug)]
pub struct ContinuousSession {
    policy: SessionPolicy,
    state: SessionState,
    consecutive_denials: u32,
    checks: u64,
    next_check_s: f64,
}

impl ContinuousSession {
    /// Opens a session. The caller must already have authenticated once
    /// (sessions begin [`SessionState::Active`]).
    pub fn open(policy: SessionPolicy, now_s: f64) -> Self {
        assert!(
            policy.denials_to_lock >= 1,
            "policy needs at least one denial to lock"
        );
        assert!(
            policy.recheck_period_s > 0.0 && policy.recheck_period_s.is_finite(),
            "recheck period must be positive and finite"
        );
        assert!(now_s.is_finite(), "open time must be finite");
        ContinuousSession {
            policy,
            state: SessionState::Active,
            consecutive_denials: 0,
            checks: 0,
            next_check_s: now_s + policy.recheck_period_s,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Number of re-verifications performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// World time of the next scheduled re-verification.
    pub fn next_check_s(&self) -> f64 {
        self.next_check_s
    }

    /// Whether a re-verification is due at `now_s`.
    pub fn due(&self, now_s: f64) -> bool {
        self.state == SessionState::Active && now_s >= self.next_check_s
    }

    /// Runs one scheduled re-verification (regardless of `due`; callers
    /// normally gate on it) against a multi-tenant [`AuthService`].
    /// Returns the new state.
    ///
    /// One service re-verifies any number of continuous sessions: the
    /// detector, pairing registry, and link are shared across all of them.
    #[allow(clippy::too_many_arguments)]
    pub fn recheck_via(
        &mut self,
        service: &mut AuthService,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> SessionState {
        if self.state == SessionState::Locked {
            return self.state;
        }
        self.checks += 1;
        self.next_check_s = now_s + self.policy.recheck_period_s;
        match service.authenticate_pair(field, auth_device, vouch_device, now_s, rng) {
            AuthDecision::Granted { .. } => {
                self.consecutive_denials = 0;
            }
            AuthDecision::Denied { .. } => {
                self.consecutive_denials += 1;
                if self.consecutive_denials >= self.policy.denials_to_lock {
                    self.state = SessionState::Locked;
                }
            }
        }
        self.state
    }

    /// [`Self::recheck_via`] through the single-pair
    /// [`PianoAuthenticator`] wrapper.
    #[deprecated(
        since = "0.2.0",
        note = "use recheck_via with a stream::AuthService (this shim delegates to it verbatim)"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn recheck(
        &mut self,
        authenticator: &mut PianoAuthenticator,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> SessionState {
        self.recheck_via(
            authenticator.as_service_mut(),
            field,
            auth_device,
            vouch_device,
            now_s,
            rng,
        )
    }
}

/// Handle to a session owned by a [`ContinuousScheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScheduleKey(u64);

/// Maps a finite `f64` time to a totally ordered `u64` key (the standard
/// sign-fold), so the heap can order floating-point check times without a
/// wrapper type.
fn time_bits(t: f64) -> u64 {
    assert!(t.is_finite(), "check times must be finite, got {t}");
    let bits = t.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Drives many [`ContinuousSession`] recheck loops off one
/// [`AuthService`]: a min-priority queue on
/// [`ContinuousSession::next_check_s`].
///
/// A fleet deployment re-verifies thousands of sessions on heterogeneous
/// periods; scanning the whole session table every tick is `O(n)` per
/// tick, while this queue pops exactly the due sessions in deadline order.
/// Properties (unit-tested below):
///
/// * **Deadline order** — [`pop_due`](Self::pop_due) yields due sessions
///   earliest-deadline-first; ties break by insertion order.
/// * **Starvation freedom** — a due session is always served before any
///   session with a later deadline, so mixed periods cannot starve the
///   slow ones: every due session is popped before any session rescheduled
///   *within* this batch can come due again.
/// * **Mid-queue removal** — [`remove`](Self::remove) is `O(log n)`
///   amortized via lazy deletion: the heap entry goes stale and is
///   discarded when popped.
///
/// Locked sessions leave the queue automatically (nothing reschedules
/// them) but stay queryable via [`session`](Self::session) until removed.
#[derive(Debug, Default)]
pub struct ContinuousScheduler {
    sessions: HashMap<u64, ContinuousSession>,
    /// Min-heap of `(time_bits(next_check_s), key)`. An entry is live iff
    /// the keyed session exists, is Active, and still has that check time
    /// (lazy deletion discards the rest on pop).
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    next_key: u64,
}

impl ContinuousScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        ContinuousScheduler::default()
    }

    /// Number of sessions owned (queued or locked).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the scheduler owns no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Adds a session, scheduling its next check. Returns its handle.
    pub fn add(&mut self, session: ContinuousSession) -> ScheduleKey {
        let key = ScheduleKey(self.next_key);
        self.next_key += 1;
        if session.state() == SessionState::Active {
            self.queue
                .push(Reverse((time_bits(session.next_check_s()), key.0)));
        }
        self.sessions.insert(key.0, session);
        key
    }

    /// Read access to a session.
    pub fn session(&self, key: ScheduleKey) -> Option<&ContinuousSession> {
        self.sessions.get(&key.0)
    }

    /// Removes a session mid-queue, returning it if it existed. Any queue
    /// entry becomes stale and is discarded lazily.
    pub fn remove(&mut self, key: ScheduleKey) -> Option<ContinuousSession> {
        self.sessions.remove(&key.0)
    }

    /// Discards stale heap entries, leaving a live entry (or nothing) on
    /// top.
    fn skim_stale(&mut self) {
        while let Some(Reverse((bits, key))) = self.queue.peek().copied() {
            let live = self.sessions.get(&key).is_some_and(|s| {
                s.state() == SessionState::Active && time_bits(s.next_check_s()) == bits
            });
            if live {
                return;
            }
            self.queue.pop();
        }
    }

    /// The earliest scheduled check time, if any session is queued.
    pub fn next_due_s(&mut self) -> Option<f64> {
        self.skim_stale();
        let Reverse((_, key)) = self.queue.peek()?;
        Some(self.sessions[key].next_check_s())
    }

    /// Pops the most overdue session due at `now_s`, unscheduling it. The
    /// caller runs the recheck and then calls
    /// [`reschedule`](Self::reschedule) — or uses
    /// [`run_due`](Self::run_due), which cannot forget to.
    pub fn pop_due(&mut self, now_s: f64) -> Option<ScheduleKey> {
        self.skim_stale();
        let Reverse((_, key)) = self.queue.peek().copied()?;
        if !self.sessions[&key].due(now_s) {
            return None;
        }
        self.queue.pop();
        Some(ScheduleKey(key))
    }

    /// Requeues a popped session at its current
    /// [`ContinuousSession::next_check_s`]. Locked sessions are left
    /// unqueued (retiring them is the scheduler working as designed, so
    /// that is `Ok`).
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] if `key` was never issued or its session
    /// was removed — historically a silent no-op, which let a caller
    /// drop a live session out of the schedule without noticing.
    pub fn reschedule(&mut self, key: ScheduleKey) -> Result<(), PianoError> {
        let session = self.sessions.get(&key.0).ok_or_else(|| {
            PianoError::Schedule(format!(
                "reschedule of unknown or removed session key {key:?}"
            ))
        })?;
        if session.state() == SessionState::Active {
            self.queue
                .push(Reverse((time_bits(session.next_check_s()), key.0)));
        }
        Ok(())
    }

    /// Runs every session due at `now_s` through `recheck` in deadline
    /// order, rescheduling the still-active ones. Returns the outcomes in
    /// execution order.
    ///
    /// The callback receives the session exclusively; it is expected to
    /// call [`ContinuousSession::recheck_via`] (or
    /// [`ContinuousSession::recheck`]) against the shared service, which
    /// advances `next_check_s` — sessions whose new deadline is still
    /// ≤ `now_s` run again within this call, after everything less
    /// recently served.
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] if the callback leaves a still-due
    /// session's `next_check_s` unchanged — requeueing it verbatim would
    /// loop forever. The offending session is left popped (unqueued) so
    /// the error cannot recur on retry; outcomes already produced are
    /// carried in the error message's count, not returned.
    pub fn run_due<F>(
        &mut self,
        now_s: f64,
        mut recheck: F,
    ) -> Result<Vec<(ScheduleKey, SessionState)>, PianoError>
    where
        F: FnMut(ScheduleKey, &mut ContinuousSession) -> SessionState,
    {
        let mut outcomes = Vec::new();
        let mut last_run: HashMap<u64, u64> = HashMap::new();
        while let Some(key) = self.pop_due(now_s) {
            let session = self
                .sessions
                .get_mut(&key.0)
                .expect("pop_due only yields live sessions");
            let bits = time_bits(session.next_check_s());
            if last_run.insert(key.0, bits) == Some(bits) {
                return Err(PianoError::Schedule(format!(
                    "recheck callback must advance next_check_s (run recheck_via); \
                     session {key:?} is still due at {now_s} after {} outcomes",
                    outcomes.len()
                )));
            }
            let state = recheck(key, session);
            self.reschedule(key)?;
            outcomes.push((key, state));
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piano::PianoConfig;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn setup(distance_m: f64) -> (AuthService, Device, Device, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = Device::phone(1, Position::ORIGIN, 1);
        let v = Device::phone(2, Position::new(distance_m, 0.0, 0.0), 2);
        let mut service = AuthService::new(PianoConfig::default());
        service.register(&a, &v, &mut rng);
        (service, a, v, rng)
    }

    #[test]
    fn session_stays_active_while_user_present() {
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        for k in 0..3 {
            let mut field = AcousticField::new(Environment::office(), 100 + k);
            let state =
                session.recheck_via(&mut service, &mut field, &a, &v, k as f64 * 30.0, &mut rng);
            assert_eq!(state, SessionState::Active, "check {k}");
        }
        assert_eq!(session.checks(), 3);
    }

    #[test]
    fn session_locks_when_user_leaves() {
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        // User walks away: re-position the vouching device far.
        let v_far = v.clone().at(Position::new(6.0, 0.0, 0.0));
        let mut states = Vec::new();
        for k in 0..2 {
            let mut field = AcousticField::new(Environment::office(), 200 + k);
            states.push(session.recheck_via(
                &mut service,
                &mut field,
                &a,
                &v_far,
                k as f64 * 30.0,
                &mut rng,
            ));
        }
        assert_eq!(states, vec![SessionState::Active, SessionState::Locked]);
        // Locked sessions stay locked.
        let mut field = AcousticField::new(Environment::office(), 300);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v, 90.0, &mut rng),
            SessionState::Locked
        );
    }

    #[test]
    fn single_denial_does_not_lock_with_default_policy() {
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        let v_far = v.clone().at(Position::new(6.0, 0.0, 0.0));
        // One denial…
        let mut field = AcousticField::new(Environment::office(), 400);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v_far, 0.0, &mut rng),
            SessionState::Active
        );
        // …then the user returns: the denial streak resets.
        let mut field = AcousticField::new(Environment::office(), 401);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v, 30.0, &mut rng),
            SessionState::Active
        );
        let mut field = AcousticField::new(Environment::office(), 402);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v_far, 60.0, &mut rng),
            SessionState::Active,
            "streak must have reset"
        );
    }

    /// The deprecated wrapper entry point must keep working while callers
    /// migrate to [`ContinuousSession::recheck_via`].
    #[test]
    #[allow(deprecated)]
    fn deprecated_recheck_shim_still_verifies() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = Device::phone(1, Position::ORIGIN, 1);
        let v = Device::phone(2, Position::new(0.5, 0.0, 0.0), 2);
        let mut authn = PianoAuthenticator::new(PianoConfig::default());
        authn.register(&a, &v, &mut rng);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        let mut field = AcousticField::new(Environment::office(), 100);
        let state = session.recheck(&mut authn, &mut field, &a, &v, 0.0, &mut rng);
        assert_eq!(state, SessionState::Active);
        assert_eq!(session.checks(), 1);
    }

    #[test]
    fn due_respects_schedule_and_state() {
        let session = ContinuousSession::open(
            SessionPolicy {
                denials_to_lock: 1,
                recheck_period_s: 10.0,
            },
            0.0,
        );
        assert!(!session.due(5.0));
        assert!(session.due(10.0));
        assert_eq!(session.next_check_s(), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one denial")]
    fn zero_denial_policy_rejected() {
        let _ = ContinuousSession::open(
            SessionPolicy {
                denials_to_lock: 0,
                recheck_period_s: 1.0,
            },
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_recheck_period_rejected() {
        // A "never recheck" encoding would otherwise reach the scheduler
        // as next_check_s = ∞ and panic on add.
        let _ = ContinuousSession::open(
            SessionPolicy {
                denials_to_lock: 1,
                recheck_period_s: f64::INFINITY,
            },
            0.0,
        );
    }

    fn policy(period_s: f64) -> SessionPolicy {
        SessionPolicy {
            denials_to_lock: 2,
            recheck_period_s: period_s,
        }
    }

    /// Advances the session as a granted recheck would, without the
    /// acoustic simulation (scheduler tests only exercise the queue).
    fn tick(session: &mut ContinuousSession, now_s: f64) -> SessionState {
        session.checks += 1;
        session.next_check_s = now_s + session.policy.recheck_period_s;
        session.state
    }

    #[test]
    fn scheduler_pops_in_deadline_order_with_insertion_tiebreak() {
        let mut sched = ContinuousScheduler::new();
        // next_check_s = open_time + period.
        let late = sched.add(ContinuousSession::open(policy(30.0), 0.0)); // due 30
        let early = sched.add(ContinuousSession::open(policy(10.0), 0.0)); // due 10
        let tied = sched.add(ContinuousSession::open(policy(10.0), 0.0)); // due 10
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.next_due_s(), Some(10.0));
        assert_eq!(sched.pop_due(5.0), None, "nothing due yet");
        let order: Vec<ScheduleKey> = sched
            .run_due(30.0, |_, s| tick(s, 30.0))
            .expect("callbacks advance the deadline")
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(order, vec![early, tied, late]);
    }

    #[test]
    fn scheduler_is_starvation_free_under_mixed_periods() {
        // One fast session (period 1 s) and one slow (period 10 s): over
        // 30 s of catch-up the slow session must still get every check.
        let mut sched = ContinuousScheduler::new();
        let fast = sched.add(ContinuousSession::open(policy(1.0), 0.0));
        let slow = sched.add(ContinuousSession::open(policy(10.0), 0.0));
        let outcomes = sched
            .run_due(30.0, |_, s| {
                let now = s.next_check_s(); // catch-up: serve at the deadline
                tick(s, now)
            })
            .expect("callbacks advance the deadline");
        let fast_runs = outcomes.iter().filter(|(k, _)| *k == fast).count();
        let slow_runs = outcomes.iter().filter(|(k, _)| *k == slow).count();
        assert_eq!(fast_runs, 30, "fast session checks every second");
        assert_eq!(slow_runs, 3, "slow session is never starved");
        // Deadline order interleaves them: the slow session's 10 s check
        // runs before the fast session's 11 s check.
        let slow_first = outcomes.iter().position(|(k, _)| *k == slow).unwrap();
        assert_eq!(slow_first, 10, "10 fast checks (1..=10 s) precede it");
    }

    #[test]
    fn scheduler_removes_sessions_mid_queue() {
        let mut sched = ContinuousScheduler::new();
        let a = sched.add(ContinuousSession::open(policy(10.0), 0.0));
        let b = sched.add(ContinuousSession::open(policy(20.0), 0.0));
        let removed = sched.remove(a).expect("a existed");
        assert_eq!(removed.checks(), 0);
        assert_eq!(sched.len(), 1);
        assert!(sched.session(a).is_none());
        // The stale heap entry for `a` is skipped: `b` is served next.
        assert_eq!(sched.next_due_s(), Some(20.0));
        let order: Vec<ScheduleKey> = sched
            .run_due(25.0, |_, s| tick(s, 25.0))
            .expect("callbacks advance the deadline")
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(order, vec![b]);
        assert!(sched.remove(a).is_none(), "double remove is a no-op");
        assert!(
            matches!(sched.reschedule(a), Err(PianoError::Schedule(_))),
            "rescheduling a removed key must surface a typed error"
        );
    }

    #[test]
    fn scheduler_retires_locked_sessions_but_keeps_them_queryable() {
        let mut sched = ContinuousScheduler::new();
        let key = sched.add(ContinuousSession::open(policy(5.0), 0.0));
        let outcomes = sched
            .run_due(5.0, |_, s| {
                s.checks += 1;
                s.next_check_s = 10.0;
                s.state = SessionState::Locked;
                s.state
            })
            .expect("callbacks advance the deadline");
        assert_eq!(outcomes, vec![(key, SessionState::Locked)]);
        // Locked: out of the queue, still owned and inspectable — and
        // rescheduling it is Ok (retirement is by design, not an error).
        assert_eq!(sched.next_due_s(), None);
        assert!(sched.reschedule(key).is_ok());
        assert_eq!(sched.next_due_s(), None, "locked sessions stay unqueued");
        assert!(sched
            .run_due(100.0, |_, s| tick(s, 100.0))
            .expect("callbacks advance the deadline")
            .is_empty());
        assert_eq!(sched.session(key).unwrap().state(), SessionState::Locked);
        assert_eq!(sched.len(), 1);
    }

    #[test]
    fn scheduler_drives_rechecks_against_one_service() {
        // The integration shape: several continuous sessions, one shared
        // AuthService, rechecks dispatched by deadline.
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut sched = ContinuousScheduler::new();
        let k1 = sched.add(ContinuousSession::open(policy(30.0), 0.0));
        let k2 = sched.add(ContinuousSession::open(policy(45.0), 0.0));
        let mut served = Vec::new();
        for round in 0..2u64 {
            let now = 45.0 + 45.0 * round as f64;
            let outcomes = sched
                .run_due(now, |key, session| {
                    served.push(key);
                    // One acoustic world per recheck: leftover emissions
                    // from a concurrent session's check would fail the β
                    // check.
                    let mut field =
                        AcousticField::new(Environment::office(), 500 + round * 10 + key.0);
                    session.recheck_via(&mut service, &mut field, &a, &v, now, &mut rng)
                })
                .expect("recheck_via advances the deadline");
            for (key, state) in outcomes {
                assert_eq!(state, SessionState::Active, "{key:?}");
            }
        }
        assert!(served.contains(&k1) && served.contains(&k2));
        assert!(sched.session(k1).unwrap().checks() >= 1);
        assert!(sched.session(k2).unwrap().checks() >= 1);
    }

    #[test]
    fn run_due_rejects_callbacks_that_do_not_advance_the_deadline() {
        let mut sched = ContinuousScheduler::new();
        let _ = sched.add(ContinuousSession::open(policy(1.0), 0.0));
        let err = sched
            .run_due(10.0, |_, s| s.state())
            .expect_err("a deadline-freezing callback must be a typed error");
        match err {
            PianoError::Schedule(what) => {
                assert!(what.contains("advance next_check_s"), "{what}")
            }
            other => panic!("expected a schedule error, got {other:?}"),
        }
    }
}
