//! Continuous authentication sessions (paper future work, Sec. VII).
//!
//! The paper's conclusion points at "adapting PIANO to other application
//! scenarios". The natural first extension — and what products actually
//! need — is *continuous* authentication: instead of one distance check at
//! unlock time, the authenticating device re-verifies proximity on a
//! schedule and locks as soon as the vouching device leaves.
//!
//! [`ContinuousSession`] implements that policy loop on top of the
//! multi-tenant [`crate::stream::AuthService`] (via
//! [`ContinuousSession::recheck_via`]; the historical
//! [`PianoAuthenticator`] entry point remains as a deprecated shim): a
//! sliding window of recent decisions with a
//! configurable lock-out rule (`k` consecutive denials lock the session,
//! absorbing occasional false rejections so the user isn't locked out by
//! one noisy measurement — the FRR/FAR trade-off of Tables I/II composed
//! over time).
//!
//! Re-verification cost matters here more than anywhere else: a deployment
//! rechecking thousands of sessions every 30 s runs Algorithm 1
//! continuously. Each recheck rides the authenticator's long-lived
//! [`crate::detect::Detector`] — FFT plans and window tables are built
//! once per authenticator, not per recheck — and the detector itself is
//! `Sync`, so a fleet-wide scheduler can fan rechecks out across threads
//! against shared detectors (see
//! [`crate::detect::Detector::detect_many_parallel`]).

use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;

use crate::device::Device;
use crate::piano::{AuthDecision, PianoAuthenticator};
use crate::stream::AuthService;

/// Session policy: how many consecutive denials lock the session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionPolicy {
    /// Consecutive denials required to lock (≥1). With the office FRR at
    /// τ = 1 m around 3 %, `2` drives spurious lock-outs below 0.1 %.
    pub denials_to_lock: u32,
    /// Re-verification period in seconds.
    pub recheck_period_s: f64,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        SessionPolicy {
            denials_to_lock: 2,
            recheck_period_s: 30.0,
        }
    }
}

/// State of a continuous session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// The user is present; access remains granted.
    Active,
    /// The session locked after the configured run of denials.
    Locked,
}

/// A continuous-authentication session.
#[derive(Debug)]
pub struct ContinuousSession {
    policy: SessionPolicy,
    state: SessionState,
    consecutive_denials: u32,
    checks: u64,
    next_check_s: f64,
}

impl ContinuousSession {
    /// Opens a session. The caller must already have authenticated once
    /// (sessions begin [`SessionState::Active`]).
    pub fn open(policy: SessionPolicy, now_s: f64) -> Self {
        assert!(
            policy.denials_to_lock >= 1,
            "policy needs at least one denial to lock"
        );
        assert!(
            policy.recheck_period_s > 0.0,
            "recheck period must be positive"
        );
        ContinuousSession {
            policy,
            state: SessionState::Active,
            consecutive_denials: 0,
            checks: 0,
            next_check_s: now_s + policy.recheck_period_s,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Number of re-verifications performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// World time of the next scheduled re-verification.
    pub fn next_check_s(&self) -> f64 {
        self.next_check_s
    }

    /// Whether a re-verification is due at `now_s`.
    pub fn due(&self, now_s: f64) -> bool {
        self.state == SessionState::Active && now_s >= self.next_check_s
    }

    /// Runs one scheduled re-verification (regardless of `due`; callers
    /// normally gate on it) against a multi-tenant [`AuthService`].
    /// Returns the new state.
    ///
    /// One service re-verifies any number of continuous sessions: the
    /// detector, pairing registry, and link are shared across all of them.
    #[allow(clippy::too_many_arguments)]
    pub fn recheck_via(
        &mut self,
        service: &mut AuthService,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> SessionState {
        if self.state == SessionState::Locked {
            return self.state;
        }
        self.checks += 1;
        self.next_check_s = now_s + self.policy.recheck_period_s;
        match service.authenticate_pair(field, auth_device, vouch_device, now_s, rng) {
            AuthDecision::Granted { .. } => {
                self.consecutive_denials = 0;
            }
            AuthDecision::Denied { .. } => {
                self.consecutive_denials += 1;
                if self.consecutive_denials >= self.policy.denials_to_lock {
                    self.state = SessionState::Locked;
                }
            }
        }
        self.state
    }

    /// [`Self::recheck_via`] through the single-pair
    /// [`PianoAuthenticator`] wrapper.
    #[deprecated(
        since = "0.2.0",
        note = "use recheck_via with a stream::AuthService (this shim delegates to it verbatim)"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn recheck(
        &mut self,
        authenticator: &mut PianoAuthenticator,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> SessionState {
        self.recheck_via(
            authenticator.as_service_mut(),
            field,
            auth_device,
            vouch_device,
            now_s,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piano::PianoConfig;
    use piano_acoustics::{Environment, Position};
    use rand::SeedableRng;

    fn setup(distance_m: f64) -> (AuthService, Device, Device, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = Device::phone(1, Position::ORIGIN, 1);
        let v = Device::phone(2, Position::new(distance_m, 0.0, 0.0), 2);
        let mut service = AuthService::new(PianoConfig::default());
        service.register(&a, &v, &mut rng);
        (service, a, v, rng)
    }

    #[test]
    fn session_stays_active_while_user_present() {
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        for k in 0..3 {
            let mut field = AcousticField::new(Environment::office(), 100 + k);
            let state =
                session.recheck_via(&mut service, &mut field, &a, &v, k as f64 * 30.0, &mut rng);
            assert_eq!(state, SessionState::Active, "check {k}");
        }
        assert_eq!(session.checks(), 3);
    }

    #[test]
    fn session_locks_when_user_leaves() {
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        // User walks away: re-position the vouching device far.
        let v_far = v.clone().at(Position::new(6.0, 0.0, 0.0));
        let mut states = Vec::new();
        for k in 0..2 {
            let mut field = AcousticField::new(Environment::office(), 200 + k);
            states.push(session.recheck_via(
                &mut service,
                &mut field,
                &a,
                &v_far,
                k as f64 * 30.0,
                &mut rng,
            ));
        }
        assert_eq!(states, vec![SessionState::Active, SessionState::Locked]);
        // Locked sessions stay locked.
        let mut field = AcousticField::new(Environment::office(), 300);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v, 90.0, &mut rng),
            SessionState::Locked
        );
    }

    #[test]
    fn single_denial_does_not_lock_with_default_policy() {
        let (mut service, a, v, mut rng) = setup(0.5);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        let v_far = v.clone().at(Position::new(6.0, 0.0, 0.0));
        // One denial…
        let mut field = AcousticField::new(Environment::office(), 400);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v_far, 0.0, &mut rng),
            SessionState::Active
        );
        // …then the user returns: the denial streak resets.
        let mut field = AcousticField::new(Environment::office(), 401);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v, 30.0, &mut rng),
            SessionState::Active
        );
        let mut field = AcousticField::new(Environment::office(), 402);
        assert_eq!(
            session.recheck_via(&mut service, &mut field, &a, &v_far, 60.0, &mut rng),
            SessionState::Active,
            "streak must have reset"
        );
    }

    /// The deprecated wrapper entry point must keep working while callers
    /// migrate to [`ContinuousSession::recheck_via`].
    #[test]
    #[allow(deprecated)]
    fn deprecated_recheck_shim_still_verifies() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = Device::phone(1, Position::ORIGIN, 1);
        let v = Device::phone(2, Position::new(0.5, 0.0, 0.0), 2);
        let mut authn = PianoAuthenticator::new(PianoConfig::default());
        authn.register(&a, &v, &mut rng);
        let mut session = ContinuousSession::open(SessionPolicy::default(), 0.0);
        let mut field = AcousticField::new(Environment::office(), 100);
        let state = session.recheck(&mut authn, &mut field, &a, &v, 0.0, &mut rng);
        assert_eq!(state, SessionState::Active);
        assert_eq!(session.checks(), 1);
    }

    #[test]
    fn due_respects_schedule_and_state() {
        let session = ContinuousSession::open(
            SessionPolicy {
                denials_to_lock: 1,
                recheck_period_s: 10.0,
            },
            0.0,
        );
        assert!(!session.due(5.0));
        assert!(session.due(10.0));
        assert_eq!(session.next_check_s(), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one denial")]
    fn zero_denial_policy_rejected() {
        let _ = ContinuousSession::open(
            SessionPolicy {
                denials_to_lock: 0,
                recheck_period_s: 1.0,
            },
            0.0,
        );
    }
}
