//! Step IV: the frequency-based signal detection algorithm.
//!
//! This module is the paper's Algorithms 1 and 2.
//!
//! * [`Detector::norm_power`] is **Algorithm 2** (`NormPower`): FFT the
//!   window, aggregate each candidate's power over `2θ+1` bins (the
//!   frequency-smoothing allowance), apply the two sanity checks —
//!   `P_f > α·R_f` for every chosen frequency and `P_f' < β` for every
//!   unchosen candidate — and return `Σ P_f − Σ P_f'`, or `−∞` if a check
//!   fails. The β check is what defeats all-frequency spoofing (Sec. V).
//! * [`Detector::detect_many`] is **Algorithm 1** with the prototype's
//!   "adapted step sizes" (Sec. VI-A): a coarse scan with step 1000 shared
//!   by both reference signals in a single pass, then a fine scan with
//!   step 10 around each coarse maximum. A signal whose best normalized
//!   power falls below `ε·R_S` is declared [`Detection::NotPresent`]
//!   (Algorithm 1 line 12; see DESIGN.md §4 for the ε reading).

use piano_dsp::spectrum::{band_power, SpectrumAnalyzer};
use piano_dsp::Complex64;
use std::cell::RefCell;

use crate::config::ActionConfig;
use crate::signal::ReferenceSignal;

/// Precomputed detection constants for one reference signal.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalSignature {
    /// FFT bin index per chosen candidate (`F`).
    chosen_bins: Vec<usize>,
    /// FFT bin index per unchosen candidate (`F_R \ F`).
    other_bins: Vec<usize>,
    /// Per-tone reference power `R_f`.
    rf: f64,
    /// Total reference power `R_S`.
    rs: f64,
}

impl SignalSignature {
    /// Builds the signature of a reference signal under a configuration.
    pub fn of(signal: &ReferenceSignal, config: &ActionConfig) -> Self {
        let grid = signal.grid();
        let chosen_bins = signal
            .indices()
            .iter()
            .map(|&i| grid.fft_bin(i, config.sample_rate, config.signal_len))
            .collect();
        let other_bins = grid
            .complement(signal.indices())
            .iter()
            .map(|&i| grid.fft_bin(i, config.sample_rate, config.signal_len))
            .collect();
        SignalSignature {
            chosen_bins,
            other_bins,
            rf: signal.tone_power(),
            rs: signal.total_power(),
        }
    }

    /// Per-tone reference power `R_f`.
    pub fn rf(&self) -> f64 {
        self.rf
    }

    /// Total reference power `R_S`.
    pub fn rs(&self) -> f64 {
        self.rs
    }

    /// Number of chosen candidates.
    pub fn n_tones(&self) -> usize {
        self.chosen_bins.len()
    }
}

/// Outcome of detecting one reference signal in a recording.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Detection {
    /// The signal was found starting at `location` (sample index), with the
    /// maximum normalized power attained there.
    Found {
        /// Sample index of the window where normalized power peaked.
        location: usize,
        /// The peak normalized power.
        norm_power: f64,
    },
    /// The signal is not present (the paper's `⊥`): every window failed the
    /// sanity checks or the maximum fell below `ε·R_S`.
    NotPresent,
}

impl Detection {
    /// The detected location, if any.
    pub fn location(&self) -> Option<usize> {
        match self {
            Detection::Found { location, .. } => Some(*location),
            Detection::NotPresent => None,
        }
    }

    /// Whether the signal was found.
    pub fn is_found(&self) -> bool {
        matches!(self, Detection::Found { .. })
    }
}

/// Result of a detection scan, including work accounting for the
/// timing/energy models.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanResult {
    /// Per-signature detection outcomes, in input order.
    pub detections: Vec<Detection>,
    /// Number of window FFTs executed.
    pub ffts_used: usize,
}

/// The frequency-based signal detector.
#[derive(Debug)]
pub struct Detector {
    config: ActionConfig,
    analyzer: RefCell<SpectrumAnalyzer>,
}

impl Detector {
    /// Builds a detector for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails
    /// [`ActionConfig::validate`] — constructing a detector from an invalid
    /// configuration is a programming error.
    pub fn new(config: &ActionConfig) -> Self {
        config.validate().expect("detector requires a valid configuration");
        Detector {
            config: config.clone(),
            analyzer: RefCell::new(SpectrumAnalyzer::new(
                config.signal_len,
                config.analysis_window,
            )),
        }
    }

    /// Computes the analysis power spectrum of one window exactly as the
    /// scanning loops do — exposed for diagnostics and tests.
    pub fn window_spectrum(&self, window: &[f64]) -> Vec<f64> {
        self.analyzer.borrow_mut().power_spectrum(window)
    }

    /// The configuration this detector runs.
    pub fn config(&self) -> &ActionConfig {
        &self.config
    }

    /// Algorithm 2: the normalized power of a window's spectrum for one
    /// signature, or `−∞` if a sanity check fails.
    ///
    /// `spectrum` must be a full-length power spectrum of a
    /// `signal_len`-sample window (see [`piano_dsp::spectrum`]).
    pub fn norm_power(&self, spectrum: &[f64], sig: &SignalSignature) -> f64 {
        let theta = self.config.theta;
        let alpha_rf = self.config.alpha * sig.rf;
        let beta = self.config.beta_fraction * sig.rf;

        let mut sum_chosen = 0.0;
        for &bin in &sig.chosen_bins {
            let p = band_power(spectrum, bin, theta);
            if p <= alpha_rf {
                return f64::NEG_INFINITY;
            }
            sum_chosen += p;
        }
        let mut sum_other = 0.0;
        for &bin in &sig.other_bins {
            let p = band_power(spectrum, bin, theta);
            if self.config.enforce_beta_check && p >= beta {
                return f64::NEG_INFINITY;
            }
            sum_other += p;
        }
        sum_chosen - sum_other
    }

    /// Detects a single reference signal (Algorithm 1).
    pub fn detect(&self, recording: &[f64], sig: &SignalSignature) -> Detection {
        self.detect_many(recording, &[sig]).detections[0]
    }

    /// Detects several reference signals in one coarse scan (the
    /// prototype's single-pass optimization), then refines each with a fine
    /// scan.
    ///
    /// Returns [`Detection::NotPresent`] per signal when the recording is
    /// shorter than one window.
    pub fn detect_many(&self, recording: &[f64], sigs: &[&SignalSignature]) -> ScanResult {
        let w = self.config.signal_len;
        if recording.len() < w || sigs.is_empty() {
            return ScanResult {
                detections: vec![Detection::NotPresent; sigs.len()],
                ffts_used: 0,
            };
        }
        let last = recording.len() - w;
        let mut analyzer = self.analyzer.borrow_mut();
        let mut scratch: Vec<Complex64> = Vec::with_capacity(w);
        let mut spectrum: Vec<f64> = Vec::with_capacity(w);
        let mut ffts = 0usize;

        // Coarse pass, shared across signatures.
        let mut best: Vec<(f64, usize)> = vec![(f64::NEG_INFINITY, 0); sigs.len()];
        let mut i = 0usize;
        loop {
            analyzer.compute(&recording[i..i + w], &mut scratch, &mut spectrum);
            ffts += 1;
            for (b, sig) in best.iter_mut().zip(sigs) {
                let p = self.norm_power(&spectrum, sig);
                if p > b.0 {
                    *b = (p, i);
                }
            }
            if i == last {
                break;
            }
            i = (i + self.config.coarse_step).min(last);
        }

        // Fine pass per signature.
        let mut detections = Vec::with_capacity(sigs.len());
        for ((coarse_p, coarse_loc), sig) in best.into_iter().zip(sigs) {
            if coarse_p.is_infinite() && coarse_p < 0.0 {
                // No window ever passed the sanity checks.
                detections.push(Detection::NotPresent);
                continue;
            }
            let lo = coarse_loc.saturating_sub(self.config.fine_radius);
            let hi = (coarse_loc + self.config.fine_radius).min(last);
            let mut best_p = coarse_p;
            let mut best_loc = coarse_loc;
            let mut j = lo;
            loop {
                analyzer.compute(&recording[j..j + w], &mut scratch, &mut spectrum);
                ffts += 1;
                let p = self.norm_power(&spectrum, sig);
                if p > best_p {
                    best_p = p;
                    best_loc = j;
                }
                if j >= hi {
                    break;
                }
                j = (j + self.config.fine_step).min(hi);
            }
            // Algorithm 1 line 12 (with the ε·R_S reading, DESIGN.md §4).
            if best_p < self.config.epsilon * sig.rs {
                detections.push(Detection::NotPresent);
            } else {
                detections.push(Detection::Found { location: best_loc, norm_power: best_p });
            }
        }
        ScanResult { detections, ffts_used: ffts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ReferenceSignal;
    use piano_dsp::tone::{multi_tone, ToneSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config() -> ActionConfig {
        ActionConfig::default()
    }

    /// Embeds a scaled copy of `wave` at `offset` in a silent recording.
    fn embed(wave: &[f64], offset: usize, total: usize, gain: f64) -> Vec<f64> {
        let mut rec = vec![0.0; total];
        for (i, &v) in wave.iter().enumerate() {
            rec[offset + i] = v * gain;
        }
        rec
    }

    #[test]
    fn detects_clean_signal_at_exact_location() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![3, 8, 14, 22], &mut rng(1));
        let signature = SignalSignature::of(&sig, &cfg);
        let true_loc = 12_345;
        let rec = embed(&sig.waveform(), true_loc, 30_000, 0.4);
        let d = det.detect(&rec, &signature);
        let loc = d.location().expect("signal must be found");
        assert!(
            (loc as isize - true_loc as isize).abs() <= cfg.fine_step as isize,
            "loc {loc} vs true {true_loc}"
        );
    }

    #[test]
    fn detects_attenuated_signal_above_alpha() {
        // Power fraction 0.15² = 2.25 % > α = 1 %.
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![0, 10, 20, 29], &mut rng(2));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 6_000, 20_000, 0.15);
        assert!(det.detect(&rec, &signature).is_found());
    }

    #[test]
    fn rejects_signal_below_alpha_floor() {
        // Power fraction 0.05² = 0.25 % < α = 1 % ⇒ not present.
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![0, 10, 20, 29], &mut rng(3));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 6_000, 20_000, 0.05);
        assert_eq!(det.detect(&rec, &signature), Detection::NotPresent);
    }

    #[test]
    fn absent_signal_reports_not_present() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![5, 6, 7], &mut rng(4));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = vec![0.0; 20_000];
        assert_eq!(det.detect(&rec, &signature), Detection::NotPresent);
    }

    #[test]
    fn wrong_frequency_set_is_not_detected() {
        // A signal with a *different* subset plays; ours must not be found.
        let cfg = config();
        let det = Detector::new(&cfg);
        let ours = ReferenceSignal::from_indices(&cfg, vec![1, 4, 9], &mut rng(5));
        let theirs = ReferenceSignal::from_indices(&cfg, vec![2, 5, 11], &mut rng(6));
        let rec = embed(&theirs.waveform(), 5_000, 20_000, 0.4);
        let signature = SignalSignature::of(&ours, &cfg);
        assert_eq!(det.detect(&rec, &signature), Detection::NotPresent);
    }

    #[test]
    fn overlapping_foreign_tones_kill_the_window_via_beta() {
        // Our signal plays, but a foreign tone at an unchosen candidate
        // overlaps it: the β sanity check must reject those windows, and
        // with no clean window left the signal is declared absent.
        let cfg = config();
        let det = Detector::new(&cfg);
        let ours = ReferenceSignal::from_indices(&cfg, vec![3, 8, 14], &mut rng(7));
        let mut rec = embed(&ours.waveform(), 5_000, 20_000, 0.4);
        // Foreign tone at candidate 20, full overlap, comparable power.
        let foreign = multi_tone(
            &[ToneSpec::new(cfg.grid.candidate_hz(20), 3_000.0)],
            cfg.sample_rate,
            4096,
        );
        for (i, &v) in foreign.iter().enumerate() {
            rec[5_000 + i] += v;
        }
        assert_eq!(det.detect(&rec, &SignalSignature::of(&ours, &cfg)), Detection::NotPresent);
    }

    #[test]
    fn nonoverlapping_foreign_signal_does_not_disturb_detection() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let ours = ReferenceSignal::from_indices(&cfg, vec![3, 8, 14], &mut rng(8));
        let foreign = ReferenceSignal::from_indices(&cfg, vec![1, 20, 27], &mut rng(9));
        let mut rec = embed(&ours.waveform(), 4_000, 30_000, 0.4);
        for (i, &v) in foreign.waveform().iter().enumerate() {
            rec[15_000 + i] += 0.4 * v;
        }
        let d = det.detect(&rec, &SignalSignature::of(&ours, &cfg));
        let loc = d.location().expect("found");
        assert!((loc as isize - 4_000).abs() <= 10);
    }

    #[test]
    fn two_signals_detected_in_one_scan() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sa = ReferenceSignal::from_indices(&cfg, vec![0, 6, 12], &mut rng(10));
        let sv = ReferenceSignal::from_indices(&cfg, vec![17, 23, 29], &mut rng(11));
        let mut rec = embed(&sa.waveform(), 3_000, 40_000, 0.5);
        for (i, &v) in sv.waveform().iter().enumerate() {
            rec[20_000 + i] += 0.5 * v;
        }
        let siga = SignalSignature::of(&sa, &cfg);
        let sigv = SignalSignature::of(&sv, &cfg);
        let result = det.detect_many(&rec, &[&siga, &sigv]);
        let la = result.detections[0].location().expect("SA found");
        let lv = result.detections[1].location().expect("SV found");
        assert!((la as isize - 3_000).abs() <= 10, "la={la}");
        assert!((lv as isize - 20_000).abs() <= 10, "lv={lv}");
        assert!(result.ffts_used > 0);
    }

    #[test]
    fn recording_shorter_than_window_is_not_present() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![1], &mut rng(12));
        let signature = SignalSignature::of(&sig, &cfg);
        let result = det.detect_many(&vec![0.0; 100], &[&signature]);
        assert_eq!(result.detections[0], Detection::NotPresent);
        assert_eq!(result.ffts_used, 0);
    }

    #[test]
    fn norm_power_rewards_exact_match_and_penalizes_foreign_power() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![5, 15, 25], &mut rng(13));
        let signature = SignalSignature::of(&sig, &cfg);

        let clean = piano_dsp::spectrum::power_spectrum(&sig.waveform());
        let p_clean = det.norm_power(&clean, &signature);
        assert!(p_clean.is_finite() && p_clean > 0.0);

        // Roughly R_S: three tones at R_f each.
        assert!((p_clean - signature.rs()).abs() < 0.2 * signature.rs());

        // Small foreign tone below β subtracts but does not reject.
        let beta = cfg.beta_fraction * signature.rf();
        let small_amp = (0.3 * beta).sqrt();
        let mut with_foreign = sig.waveform();
        let foreign = multi_tone(
            &[ToneSpec::new(cfg.grid.candidate_hz(0), small_amp)],
            cfg.sample_rate,
            4096,
        );
        for (a, b) in with_foreign.iter_mut().zip(&foreign) {
            *a += b;
        }
        let p_foreign =
            det.norm_power(&piano_dsp::spectrum::power_spectrum(&with_foreign), &signature);
        assert!(p_foreign.is_finite());
        assert!(p_foreign < p_clean, "foreign power must reduce the score");
    }

    #[test]
    fn scan_result_counts_ffts() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![2, 12], &mut rng(14));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 8_000, 24_096, 0.5);
        let result = det.detect_many(&rec, &[&signature]);
        // Coarse: ceil((24096−4096)/1000)+1 = 21; fine: ~2·1500/10 + 1.
        assert!(result.ffts_used >= 21, "ffts {}", result.ffts_used);
        assert!(result.ffts_used < 500, "ffts {}", result.ffts_used);
    }

    #[test]
    #[should_panic(expected = "valid configuration")]
    fn detector_rejects_invalid_config() {
        let mut cfg = config();
        cfg.beta_fraction = 0.9;
        let _ = Detector::new(&cfg);
    }
}
