//! Step IV: the frequency-based signal detection algorithm.
//!
//! This module is the paper's Algorithms 1 and 2.
//!
//! * [`Detector::norm_power`] is **Algorithm 2** (`NormPower`): FFT the
//!   window, aggregate each candidate's power over `2θ+1` bins (the
//!   frequency-smoothing allowance), apply the two sanity checks —
//!   `P_f > α·R_f` for every chosen frequency and `P_f' < β` for every
//!   unchosen candidate — and return `Σ P_f − Σ P_f'`, or `−∞` if a check
//!   fails. The β check is what defeats all-frequency spoofing (Sec. V).
//! * [`Detector::detect_many`] is **Algorithm 1** with the prototype's
//!   "adapted step sizes" (Sec. VI-A): a coarse scan with step 1000 shared
//!   by both reference signals in a single pass, then a fine scan with
//!   step 10 around each coarse maximum. A signal whose best normalized
//!   power falls below `ε·R_S` is declared [`Detection::NotPresent`]
//!   (Algorithm 1 line 12; see DESIGN.md §4 for the ε reading).
//!
//! # Performance architecture
//!
//! The scan is the system's hottest loop, and it is engineered to run as
//! fast as the hardware allows:
//!
//! * **`Sync` detector** — [`Detector`] holds only immutable plan data
//!   (no interior mutability); every scan call owns its scratch buffers,
//!   so one detector serves any number of threads concurrently.
//! * **Real-input FFT windows** — dense window spectra run on
//!   [`piano_dsp::fft::RealFftPlan`] (half the butterflies of a padded
//!   complex transform).
//! * **Sparse fine scan** — with the paper's rectangular analysis window,
//!   the fine scan tracks only the `2θ+1` bins around each candidate with
//!   a [`piano_dsp::sparse::SlidingDft`]: shifting the window by
//!   `fine_step` samples costs `O(bins × step)` instead of a fresh
//!   `O(N log N)` transform. [`ScanMode`] selects the path; `Auto` (the
//!   default) uses it whenever the analysis window permits.
//! * **Parallel coarse scan** — [`Detector::detect_many_parallel`] shards
//!   coarse window offsets across `std::thread::scope` workers and merges
//!   per-signature maxima with a deterministic (max power, earliest
//!   offset) rule, so results are bit-identical to the serial scan for
//!   every worker count.
//! * **SIMD kernels** — every FFT, sliding-DFT, and Goertzel evaluation
//!   above dispatches through `piano_dsp::simd` (SSE2/AVX2/NEON,
//!   runtime-selected, `PIANO_DSP_SIMD` overridable). The detector needs
//!   no backend awareness: all backends are bit-identical to the scalar
//!   reference, so detections and decisions cannot depend on the CPU.

use piano_dsp::sparse::{GoertzelBank, SlidingDft};
use piano_dsp::spectrum::{band_power, SpectrumAnalyzer, SpectrumScratch};
use piano_dsp::window::WindowKind;

use crate::config::ActionConfig;
use crate::signal::ReferenceSignal;

/// Precomputed detection constants for one reference signal.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalSignature {
    /// FFT bin index per chosen candidate (`F`).
    chosen_bins: Vec<usize>,
    /// FFT bin index per unchosen candidate (`F_R \ F`).
    other_bins: Vec<usize>,
    /// Per-tone reference power `R_f`.
    rf: f64,
    /// Total reference power `R_S`.
    rs: f64,
}

impl SignalSignature {
    /// Builds the signature of a reference signal under a configuration.
    pub fn of(signal: &ReferenceSignal, config: &ActionConfig) -> Self {
        let grid = signal.grid();
        let chosen_bins = signal
            .indices()
            .iter()
            .map(|&i| grid.fft_bin(i, config.sample_rate, config.signal_len))
            .collect();
        let other_bins = grid
            .complement(signal.indices())
            .iter()
            .map(|&i| grid.fft_bin(i, config.sample_rate, config.signal_len))
            .collect();
        SignalSignature {
            chosen_bins,
            other_bins,
            rf: signal.tone_power(),
            rs: signal.total_power(),
        }
    }

    /// Per-tone reference power `R_f`.
    pub fn rf(&self) -> f64 {
        self.rf
    }

    /// Total reference power `R_S`.
    pub fn rs(&self) -> f64 {
        self.rs
    }

    /// Number of chosen candidates.
    pub fn n_tones(&self) -> usize {
        self.chosen_bins.len()
    }

    /// FFT bin of every chosen candidate.
    pub fn chosen_bins(&self) -> &[usize] {
        &self.chosen_bins
    }

    /// FFT bin of every unchosen candidate.
    pub fn other_bins(&self) -> &[usize] {
        &self.other_bins
    }
}

/// Outcome of detecting one reference signal in a recording.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Detection {
    /// The signal was found starting at `location` (sample index), with the
    /// maximum normalized power attained there.
    Found {
        /// Sample index of the window where normalized power peaked.
        location: usize,
        /// The peak normalized power.
        norm_power: f64,
    },
    /// The signal is not present (the paper's `⊥`): every window failed the
    /// sanity checks or the maximum fell below `ε·R_S`.
    NotPresent,
}

impl Detection {
    /// The detected location, if any.
    pub fn location(&self) -> Option<usize> {
        match self {
            Detection::Found { location, .. } => Some(*location),
            Detection::NotPresent => None,
        }
    }

    /// Whether the signal was found.
    pub fn is_found(&self) -> bool {
        matches!(self, Detection::Found { .. })
    }
}

/// Result of a detection scan, including work accounting for the
/// timing/energy models.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanResult {
    /// Per-signature detection outcomes, in input order.
    pub detections: Vec<Detection>,
    /// Number of window spectral evaluations executed (dense FFTs plus
    /// sliding-DFT window updates; one per scanned window either way).
    pub ffts_used: usize,
}

/// Which spectral path the scan's fine pass uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Pick automatically: sparse whenever the analysis window is
    /// rectangular (the paper's configuration), dense otherwise.
    #[default]
    Auto,
    /// Dense real-FFT spectrum per window.
    Dense,
    /// Sliding sparse DFT over candidate-cluster bins (requires the
    /// rectangular analysis window).
    Sparse,
}

/// Sparse-scan layout for one signature: the sorted union of all cluster
/// bins plus each cluster's index range within it.
struct SparseClusters {
    bins: Vec<usize>,
    /// `bins[start..end]` per chosen cluster, in `chosen_bins` order.
    chosen: Vec<(usize, usize)>,
    /// `bins[start..end]` per unchosen cluster, in `other_bins` order.
    other: Vec<(usize, usize)>,
}

impl SparseClusters {
    fn build(sig: &SignalSignature, theta: usize, n: usize) -> Self {
        let cluster = |center: usize| {
            let lo = center.saturating_sub(theta);
            let hi = (center + theta).min(n - 1);
            (lo, hi)
        };
        let mut bins: Vec<usize> = Vec::new();
        for &c in sig.chosen_bins.iter().chain(&sig.other_bins) {
            let (lo, hi) = cluster(c);
            bins.extend(lo..=hi);
        }
        bins.sort_unstable();
        bins.dedup();
        let locate = |center: usize| {
            let (lo, hi) = cluster(center);
            let start = bins.partition_point(|&b| b < lo);
            let end = bins.partition_point(|&b| b <= hi);
            (start, end)
        };
        let chosen = sig.chosen_bins.iter().map(|&c| locate(c)).collect();
        let other = sig.other_bins.iter().map(|&c| locate(c)).collect();
        SparseClusters {
            bins,
            chosen,
            other,
        }
    }
}

/// The frequency-based signal detector.
///
/// Holds only immutable plan data, so it is `Send + Sync`: one detector
/// can be shared across authentication sessions and scan workers. The
/// analyzer (FFT plan + window tables) sits behind an `Arc`, so cloning a
/// detector is O(1) — clones share the plan memory.
#[derive(Debug, Clone)]
pub struct Detector {
    config: ActionConfig,
    analyzer: std::sync::Arc<SpectrumAnalyzer>,
}

impl Detector {
    /// Builds a detector for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails
    /// [`ActionConfig::validate`] — constructing a detector from an invalid
    /// configuration is a programming error.
    pub fn new(config: &ActionConfig) -> Self {
        config
            .validate()
            .expect("detector requires a valid configuration");
        Detector {
            config: config.clone(),
            analyzer: std::sync::Arc::new(SpectrumAnalyzer::new(
                config.signal_len,
                config.analysis_window,
            )),
        }
    }

    /// Computes the analysis power spectrum of one window exactly as the
    /// scanning loops do — exposed for diagnostics and tests.
    pub fn window_spectrum(&self, window: &[f64]) -> Vec<f64> {
        self.analyzer.power_spectrum(window)
    }

    /// The configuration this detector runs.
    pub fn config(&self) -> &ActionConfig {
        &self.config
    }

    /// Algorithm 2: the normalized power of a window's spectrum for one
    /// signature, or `−∞` if a sanity check fails.
    ///
    /// `spectrum` must be a full-length power spectrum of a
    /// `signal_len`-sample window (see [`piano_dsp::spectrum`]).
    pub fn norm_power(&self, spectrum: &[f64], sig: &SignalSignature) -> f64 {
        let theta = self.config.theta;
        let alpha_rf = self.config.alpha * sig.rf;
        let beta = self.config.beta_fraction * sig.rf;

        let mut sum_chosen = 0.0;
        for &bin in &sig.chosen_bins {
            let p = band_power(spectrum, bin, theta);
            if p <= alpha_rf {
                return f64::NEG_INFINITY;
            }
            sum_chosen += p;
        }
        let mut sum_other = 0.0;
        for &bin in &sig.other_bins {
            let p = band_power(spectrum, bin, theta);
            if self.config.enforce_beta_check && p >= beta {
                return f64::NEG_INFINITY;
            }
            sum_other += p;
        }
        sum_chosen - sum_other
    }

    /// Algorithm 2 evaluated sparsely: computes only the `2θ+1` bins
    /// around each candidate (via a Goertzel bank over the analysis-
    /// windowed samples) instead of materializing the full spectrum.
    ///
    /// Matches [`Self::norm_power`] of the same window's spectrum to
    /// floating-point rounding. One-shot convenience for diagnostics and
    /// few-bin workloads; the scan loops use the cheaper
    /// [`piano_dsp::sparse::SlidingDft`] incremental path.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != config.signal_len`.
    pub fn norm_power_sparse(&self, window: &[f64], sig: &SignalSignature) -> f64 {
        assert_eq!(
            window.len(),
            self.config.signal_len,
            "window length must match signal_len"
        );
        let clusters = SparseClusters::build(sig, self.config.theta, self.config.signal_len);
        let mut windowed = Vec::new();
        self.analyzer.apply_window(window, &mut windowed);
        let bank = GoertzelBank::new(self.config.signal_len, clusters.bins.clone());
        let mut powers = Vec::new();
        bank.powers_into(&windowed, &mut powers);
        self.norm_power_clustered(&powers, &clusters, sig)
    }

    /// Algorithm 2's checks and score over per-bin raw powers laid out by
    /// a [`SparseClusters`] plan.
    fn norm_power_clustered(
        &self,
        raw_powers: &[f64],
        clusters: &SparseClusters,
        sig: &SignalSignature,
    ) -> f64 {
        let n = self.config.signal_len as f64;
        let scale = (2.0 / n) * (2.0 / n) * self.analyzer.power_scale();
        let alpha_rf = self.config.alpha * sig.rf;
        let beta = self.config.beta_fraction * sig.rf;

        let mut sum_chosen = 0.0;
        for &(start, end) in &clusters.chosen {
            let p: f64 = raw_powers[start..end].iter().sum::<f64>() * scale;
            if p <= alpha_rf {
                return f64::NEG_INFINITY;
            }
            sum_chosen += p;
        }
        let mut sum_other = 0.0;
        for &(start, end) in &clusters.other {
            let p: f64 = raw_powers[start..end].iter().sum::<f64>() * scale;
            if self.config.enforce_beta_check && p >= beta {
                return f64::NEG_INFINITY;
            }
            sum_other += p;
        }
        sum_chosen - sum_other
    }

    /// Whether the sparse fine scan is valid for this configuration.
    fn sparse_applicable(&self) -> bool {
        self.config.analysis_window == WindowKind::Rectangular
    }

    /// The spectrum analyzer the scan loops run — shared with
    /// [`crate::stream::StreamingDetector`] so streaming coarse windows are
    /// computed by the exact same code as offline ones.
    pub(crate) fn analyzer(&self) -> &SpectrumAnalyzer {
        &self.analyzer
    }

    pub(crate) fn resolve_mode(&self, mode: ScanMode) -> ScanMode {
        match mode {
            ScanMode::Auto => {
                if self.sparse_applicable() {
                    ScanMode::Sparse
                } else {
                    ScanMode::Dense
                }
            }
            ScanMode::Sparse => {
                assert!(
                    self.sparse_applicable(),
                    "sparse scan requires the rectangular analysis window"
                );
                ScanMode::Sparse
            }
            ScanMode::Dense => ScanMode::Dense,
        }
    }

    /// Detects a single reference signal (Algorithm 1).
    pub fn detect(&self, recording: &[f64], sig: &SignalSignature) -> Detection {
        self.detect_many(recording, &[sig]).detections[0]
    }

    /// Detects several reference signals in one coarse scan (the
    /// prototype's single-pass optimization), then refines each with a fine
    /// scan.
    ///
    /// Returns [`Detection::NotPresent`] per signal when the recording is
    /// shorter than one window.
    pub fn detect_many(&self, recording: &[f64], sigs: &[&SignalSignature]) -> ScanResult {
        self.scan(recording, sigs, 1, ScanMode::Auto)
    }

    /// [`Self::detect_many`] with an explicit spectral path for the fine
    /// scan.
    pub fn detect_many_mode(
        &self,
        recording: &[f64],
        sigs: &[&SignalSignature],
        mode: ScanMode,
    ) -> ScanResult {
        self.scan(recording, sigs, 1, mode)
    }

    /// [`Self::detect_many`] with the coarse scan sharded across all
    /// available cores.
    ///
    /// Results (including [`ScanResult::ffts_used`]) are bit-identical to
    /// the serial scan: workers compute per-signature maxima over disjoint
    /// offset shards and the merge picks (max power, earliest offset),
    /// which is exactly the serial first-maximum rule.
    pub fn detect_many_parallel(&self, recording: &[f64], sigs: &[&SignalSignature]) -> ScanResult {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.scan(recording, sigs, workers, ScanMode::Auto)
    }

    /// [`Self::detect_many_parallel`] with an explicit worker count —
    /// results do not depend on it.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn detect_many_parallel_with(
        &self,
        recording: &[f64],
        sigs: &[&SignalSignature],
        workers: usize,
    ) -> ScanResult {
        assert!(workers > 0, "at least one worker is required");
        self.scan(recording, sigs, workers, ScanMode::Auto)
    }

    /// The scan engine behind every `detect*` entry point.
    fn scan(
        &self,
        recording: &[f64],
        sigs: &[&SignalSignature],
        workers: usize,
        mode: ScanMode,
    ) -> ScanResult {
        let w = self.config.signal_len;
        if recording.len() < w || sigs.is_empty() {
            return ScanResult {
                detections: vec![Detection::NotPresent; sigs.len()],
                ffts_used: 0,
            };
        }
        let mode = self.resolve_mode(mode);
        let last = recording.len() - w;

        // Coarse offsets: 0, step, 2·step, …, clamped to end exactly at
        // `last` (matching the legacy `(i + step).min(last)` walk).
        let mut offsets: Vec<usize> = (0..last).step_by(self.config.coarse_step.max(1)).collect();
        offsets.push(last);

        // Coarse pass, shared across signatures, sharded across workers.
        let workers = workers.min(offsets.len()).max(1);
        let chunk_len = offsets.len().div_ceil(workers);
        let mut ffts = 0usize;
        let mut best: Vec<(f64, usize)> = vec![(f64::NEG_INFINITY, 0); sigs.len()];
        if workers == 1 {
            let (chunk_best, chunk_ffts) = self.coarse_chunk(recording, sigs, &offsets);
            merge_coarse(&mut best, &chunk_best);
            ffts += chunk_ffts;
        } else {
            let chunk_results: Vec<(Vec<(f64, usize)>, usize)> = std::thread::scope(|scope| {
                let handles: Vec<_> = offsets
                    .chunks(chunk_len)
                    .map(|chunk| scope.spawn(move || self.coarse_chunk(recording, sigs, chunk)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("coarse scan worker panicked"))
                    .collect()
            });
            // Merge in shard order: strict-greater keeps the earliest
            // offset on ties, exactly like the serial walk.
            for (chunk_best, chunk_ffts) in chunk_results {
                merge_coarse(&mut best, &chunk_best);
                ffts += chunk_ffts;
            }
        }

        // Fine pass per signature (parallel across signatures when the
        // caller asked for parallelism).
        let fine: Vec<(f64, usize, usize)> = if workers > 1 && sigs.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = best
                    .iter()
                    .zip(sigs)
                    .map(|(&coarse, sig)| {
                        scope.spawn(move || {
                            self.fine_scan_view(recording, 0, last, sig, coarse, mode)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fine scan worker panicked"))
                    .collect()
            })
        } else {
            best.iter()
                .zip(sigs)
                .map(|(&c, sig)| self.fine_scan_view(recording, 0, last, sig, c, mode))
                .collect()
        };

        let mut detections = Vec::with_capacity(sigs.len());
        for ((best_p, best_loc, fine_evals), sig) in fine.into_iter().zip(sigs) {
            ffts += fine_evals;
            detections.push(self.threshold_detection(best_p, best_loc, sig));
        }
        ScanResult {
            detections,
            ffts_used: ffts,
        }
    }

    /// Algorithm 1's final presence decision for one signature's refined
    /// maximum (line 12 with the ε·R_S reading, DESIGN.md §4).
    pub(crate) fn threshold_detection(
        &self,
        best_p: f64,
        best_loc: usize,
        sig: &SignalSignature,
    ) -> Detection {
        if best_p.is_infinite() && best_p < 0.0 {
            // No window ever passed the sanity checks.
            Detection::NotPresent
        } else if best_p < self.config.epsilon * sig.rs {
            Detection::NotPresent
        } else {
            Detection::Found {
                location: best_loc,
                norm_power: best_p,
            }
        }
    }

    /// Evaluates one shard of coarse offsets, returning the local
    /// first-maximum per signature and the evaluation count.
    fn coarse_chunk(
        &self,
        recording: &[f64],
        sigs: &[&SignalSignature],
        offsets: &[usize],
    ) -> (Vec<(f64, usize)>, usize) {
        self.coarse_chunk_view(recording, 0, sigs, offsets)
    }

    /// [`Self::coarse_chunk`] over a *view*: `samples` holds the recording
    /// from absolute offset `base`, and `offsets` are absolute window
    /// offsets (each window must be covered by the view). This is the
    /// kernel the streaming scan driver shards across workers — it runs
    /// the identical arithmetic in the identical offset order as the
    /// offline coarse pass, so per-shard maxima merge bit-identically.
    pub(crate) fn coarse_chunk_view<S: std::borrow::Borrow<SignalSignature>>(
        &self,
        samples: &[f64],
        base: usize,
        sigs: &[S],
        offsets: &[usize],
    ) -> (Vec<(f64, usize)>, usize) {
        let w = self.config.signal_len;
        let mut scratch = SpectrumScratch::default();
        let mut spectrum: Vec<f64> = Vec::with_capacity(w);
        let mut best: Vec<(f64, usize)> =
            vec![(f64::NEG_INFINITY, offsets.first().copied().unwrap_or(0)); sigs.len()];
        for &i in offsets {
            self.analyzer.compute(
                &samples[i - base..i - base + w],
                &mut scratch,
                &mut spectrum,
            );
            for (b, sig) in best.iter_mut().zip(sigs) {
                let p = self.norm_power(&spectrum, sig.borrow());
                if p > b.0 {
                    *b = (p, i);
                }
            }
        }
        (best, offsets.len())
    }

    /// Fine scan around one signature's coarse maximum, over a *view* of
    /// the recording: `samples` holds the recording's samples from absolute
    /// offset `base`, and `last` is the recording's final window offset
    /// (`recording_len − signal_len`). Returns
    /// `(best_power, best_location, window_evaluations)` with locations in
    /// absolute recording coordinates.
    ///
    /// The offline scan passes the whole recording with `base = 0`; the
    /// streaming detector passes just the captured neighborhood of the
    /// coarse maximum. Both run the identical arithmetic on identical
    /// sample values, so results are bit-identical by construction.
    pub(crate) fn fine_scan_view(
        &self,
        samples: &[f64],
        base: usize,
        last: usize,
        sig: &SignalSignature,
        (coarse_p, coarse_loc): (f64, usize),
        mode: ScanMode,
    ) -> (f64, usize, usize) {
        if coarse_p.is_infinite() && coarse_p < 0.0 {
            // No coarse window passed the sanity checks; nothing to refine.
            return (coarse_p, coarse_loc, 0);
        }
        let w = self.config.signal_len;
        let lo = coarse_loc.saturating_sub(self.config.fine_radius);
        let hi = (coarse_loc + self.config.fine_radius).min(last);
        let step = self.config.fine_step;
        debug_assert!(lo >= base, "view must cover the fine radius below");
        debug_assert!(hi + w <= base + samples.len(), "view must cover above");

        let mut best_p = coarse_p;
        let mut best_loc = coarse_loc;
        let mut evals = 0usize;

        match mode {
            ScanMode::Dense => {
                let mut scratch = SpectrumScratch::default();
                let mut spectrum: Vec<f64> = Vec::with_capacity(w);
                let mut j = lo;
                loop {
                    self.analyzer.compute(
                        &samples[j - base..j - base + w],
                        &mut scratch,
                        &mut spectrum,
                    );
                    evals += 1;
                    let p = self.norm_power(&spectrum, sig);
                    if p > best_p {
                        best_p = p;
                        best_loc = j;
                    }
                    if j >= hi {
                        break;
                    }
                    j = (j + step).min(hi);
                }
            }
            ScanMode::Sparse | ScanMode::Auto => {
                let clusters = SparseClusters::build(sig, self.config.theta, w);
                let mut sliding = SlidingDft::new(w, step, clusters.bins.clone());
                let mut powers: Vec<f64> = Vec::with_capacity(clusters.bins.len());
                sliding.init(&samples[lo - base..lo - base + w]);
                let mut j = lo;
                loop {
                    sliding.powers_into(&mut powers);
                    evals += 1;
                    let p = self.norm_power_clustered(&powers, &clusters, sig);
                    if p > best_p {
                        best_p = p;
                        best_loc = j;
                    }
                    if j >= hi {
                        break;
                    }
                    let next = (j + step).min(hi);
                    sliding.advance(
                        &samples[j - base..next - base],
                        &samples[j + w - base..next + w - base],
                    );
                    j = next;
                }
            }
        }
        (best_p, best_loc, evals)
    }
}

/// Folds one shard's per-signature maxima into the running best,
/// preserving the serial first-maximum (earliest offset) semantics.
/// Shared with the streaming scan driver ([`crate::stream::ScanDriver`]),
/// so the two parallel paths cannot diverge on the merge rule.
pub(crate) fn merge_coarse(best: &mut [(f64, usize)], chunk: &[(f64, usize)]) {
    for (b, &(p, i)) in best.iter_mut().zip(chunk) {
        if p > b.0 {
            *b = (p, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ReferenceSignal;
    use piano_dsp::tone::{multi_tone, ToneSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config() -> ActionConfig {
        ActionConfig::default()
    }

    /// Embeds a scaled copy of `wave` at `offset` in a silent recording.
    fn embed(wave: &[f64], offset: usize, total: usize, gain: f64) -> Vec<f64> {
        let mut rec = vec![0.0; total];
        for (i, &v) in wave.iter().enumerate() {
            rec[offset + i] = v * gain;
        }
        rec
    }

    #[test]
    fn detector_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Detector>();
    }

    #[test]
    fn detects_clean_signal_at_exact_location() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![3, 8, 14, 22], &mut rng(1));
        let signature = SignalSignature::of(&sig, &cfg);
        let true_loc = 12_345;
        let rec = embed(&sig.waveform(), true_loc, 30_000, 0.4);
        let d = det.detect(&rec, &signature);
        let loc = d.location().expect("signal must be found");
        assert!(
            (loc as isize - true_loc as isize).abs() <= cfg.fine_step as isize,
            "loc {loc} vs true {true_loc}"
        );
    }

    #[test]
    fn detects_attenuated_signal_above_alpha() {
        // Power fraction 0.15² = 2.25 % > α = 1 %.
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![0, 10, 20, 29], &mut rng(2));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 6_000, 20_000, 0.15);
        assert!(det.detect(&rec, &signature).is_found());
    }

    #[test]
    fn rejects_signal_below_alpha_floor() {
        // Power fraction 0.05² = 0.25 % < α = 1 % ⇒ not present.
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![0, 10, 20, 29], &mut rng(3));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 6_000, 20_000, 0.05);
        assert_eq!(det.detect(&rec, &signature), Detection::NotPresent);
    }

    #[test]
    fn absent_signal_reports_not_present() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![5, 6, 7], &mut rng(4));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = vec![0.0; 20_000];
        assert_eq!(det.detect(&rec, &signature), Detection::NotPresent);
    }

    #[test]
    fn wrong_frequency_set_is_not_detected() {
        // A signal with a *different* subset plays; ours must not be found.
        let cfg = config();
        let det = Detector::new(&cfg);
        let ours = ReferenceSignal::from_indices(&cfg, vec![1, 4, 9], &mut rng(5));
        let theirs = ReferenceSignal::from_indices(&cfg, vec![2, 5, 11], &mut rng(6));
        let rec = embed(&theirs.waveform(), 5_000, 20_000, 0.4);
        let signature = SignalSignature::of(&ours, &cfg);
        assert_eq!(det.detect(&rec, &signature), Detection::NotPresent);
    }

    #[test]
    fn overlapping_foreign_tones_kill_the_window_via_beta() {
        // Our signal plays, but a foreign tone at an unchosen candidate
        // overlaps it: the β sanity check must reject those windows, and
        // with no clean window left the signal is declared absent.
        let cfg = config();
        let det = Detector::new(&cfg);
        let ours = ReferenceSignal::from_indices(&cfg, vec![3, 8, 14], &mut rng(7));
        let mut rec = embed(&ours.waveform(), 5_000, 20_000, 0.4);
        // Foreign tone at candidate 20, full overlap, comparable power.
        let foreign = multi_tone(
            &[ToneSpec::new(cfg.grid.candidate_hz(20), 3_000.0)],
            cfg.sample_rate,
            4096,
        );
        for (i, &v) in foreign.iter().enumerate() {
            rec[5_000 + i] += v;
        }
        assert_eq!(
            det.detect(&rec, &SignalSignature::of(&ours, &cfg)),
            Detection::NotPresent
        );
    }

    #[test]
    fn nonoverlapping_foreign_signal_does_not_disturb_detection() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let ours = ReferenceSignal::from_indices(&cfg, vec![3, 8, 14], &mut rng(8));
        let foreign = ReferenceSignal::from_indices(&cfg, vec![1, 20, 27], &mut rng(9));
        let mut rec = embed(&ours.waveform(), 4_000, 30_000, 0.4);
        for (i, &v) in foreign.waveform().iter().enumerate() {
            rec[15_000 + i] += 0.4 * v;
        }
        let d = det.detect(&rec, &SignalSignature::of(&ours, &cfg));
        let loc = d.location().expect("found");
        assert!((loc as isize - 4_000).abs() <= 10);
    }

    #[test]
    fn two_signals_detected_in_one_scan() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sa = ReferenceSignal::from_indices(&cfg, vec![0, 6, 12], &mut rng(10));
        let sv = ReferenceSignal::from_indices(&cfg, vec![17, 23, 29], &mut rng(11));
        let mut rec = embed(&sa.waveform(), 3_000, 40_000, 0.5);
        for (i, &v) in sv.waveform().iter().enumerate() {
            rec[20_000 + i] += 0.5 * v;
        }
        let siga = SignalSignature::of(&sa, &cfg);
        let sigv = SignalSignature::of(&sv, &cfg);
        let result = det.detect_many(&rec, &[&siga, &sigv]);
        let la = result.detections[0].location().expect("SA found");
        let lv = result.detections[1].location().expect("SV found");
        assert!((la as isize - 3_000).abs() <= 10, "la={la}");
        assert!((lv as isize - 20_000).abs() <= 10, "lv={lv}");
        assert!(result.ffts_used > 0);
    }

    #[test]
    fn recording_shorter_than_window_is_not_present() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![1], &mut rng(12));
        let signature = SignalSignature::of(&sig, &cfg);
        let result = det.detect_many(&vec![0.0; 100], &[&signature]);
        assert_eq!(result.detections[0], Detection::NotPresent);
        assert_eq!(result.ffts_used, 0);
    }

    #[test]
    fn norm_power_rewards_exact_match_and_penalizes_foreign_power() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![5, 15, 25], &mut rng(13));
        let signature = SignalSignature::of(&sig, &cfg);

        let clean = piano_dsp::spectrum::power_spectrum(&sig.waveform());
        let p_clean = det.norm_power(&clean, &signature);
        assert!(p_clean.is_finite() && p_clean > 0.0);

        // Roughly R_S: three tones at R_f each.
        assert!((p_clean - signature.rs()).abs() < 0.2 * signature.rs());

        // Small foreign tone below β subtracts but does not reject.
        let beta = cfg.beta_fraction * signature.rf();
        let small_amp = (0.3 * beta).sqrt();
        let mut with_foreign = sig.waveform();
        let foreign = multi_tone(
            &[ToneSpec::new(cfg.grid.candidate_hz(0), small_amp)],
            cfg.sample_rate,
            4096,
        );
        for (a, b) in with_foreign.iter_mut().zip(&foreign) {
            *a += b;
        }
        let p_foreign = det.norm_power(
            &piano_dsp::spectrum::power_spectrum(&with_foreign),
            &signature,
        );
        assert!(p_foreign.is_finite());
        assert!(p_foreign < p_clean, "foreign power must reduce the score");
    }

    #[test]
    fn sparse_norm_power_matches_dense() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![2, 9, 21, 27], &mut rng(21));
        let signature = SignalSignature::of(&sig, &cfg);
        let wave = sig.waveform();
        let dense = det.norm_power(&det.window_spectrum(&wave), &signature);
        let sparse = det.norm_power_sparse(&wave, &signature);
        assert!(
            (dense - sparse).abs() < 1e-6 * (1.0 + dense.abs()),
            "dense {dense} vs sparse {sparse}"
        );
    }

    #[test]
    fn sparse_and_dense_scans_agree() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![4, 13, 26], &mut rng(22));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 9_731, 30_000, 0.3);
        let dense = det.detect_many_mode(&rec, &[&signature], ScanMode::Dense);
        let sparse = det.detect_many_mode(&rec, &[&signature], ScanMode::Sparse);
        assert_eq!(dense.ffts_used, sparse.ffts_used);
        let (dl, dp) = match dense.detections[0] {
            Detection::Found {
                location,
                norm_power,
            } => (location, norm_power),
            Detection::NotPresent => panic!("dense scan must find the signal"),
        };
        let (sl, sp) = match sparse.detections[0] {
            Detection::Found {
                location,
                norm_power,
            } => (location, norm_power),
            Detection::NotPresent => panic!("sparse scan must find the signal"),
        };
        assert_eq!(dl, sl, "locations must agree");
        assert!(
            (dp - sp).abs() < 1e-6 * (1.0 + dp.abs()),
            "powers {dp} vs {sp}"
        );
    }

    #[test]
    fn sparse_scan_requires_rectangular_window() {
        let mut cfg = config();
        cfg.analysis_window = piano_dsp::window::WindowKind::Hann;
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![1, 2], &mut rng(23));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = vec![0.0; 10_000];
        // Auto must silently fall back to dense…
        let result = det.detect_many(&rec, &[&signature]);
        assert_eq!(result.detections[0], Detection::NotPresent);
        // …while forcing sparse is a programming error.
        let forced = std::panic::catch_unwind(|| {
            det.detect_many_mode(&rec, &[&signature], ScanMode::Sparse)
        });
        assert!(forced.is_err());
    }

    #[test]
    fn scan_result_counts_ffts() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![2, 12], &mut rng(14));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = embed(&sig.waveform(), 8_000, 24_096, 0.5);
        let result = det.detect_many(&rec, &[&signature]);
        // Coarse: ceil((24096−4096)/1000)+1 = 21; fine: ~2·1500/10 + 1.
        assert!(result.ffts_used >= 21, "ffts {}", result.ffts_used);
        assert!(result.ffts_used < 500, "ffts {}", result.ffts_used);
    }

    #[test]
    #[should_panic(expected = "valid configuration")]
    fn detector_rejects_invalid_config() {
        let mut cfg = config();
        cfg.beta_fraction = 0.9;
        let _ = Detector::new(&cfg);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![1], &mut rng(30));
        let signature = SignalSignature::of(&sig, &cfg);
        let _ = det.detect_many_parallel_with(&[0.0; 8192], &[&signature], 0);
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial_for_all_worker_counts() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sa = ReferenceSignal::from_indices(&cfg, vec![0, 7, 19], &mut rng(15));
        let sv = ReferenceSignal::from_indices(&cfg, vec![5, 11, 28], &mut rng(16));
        let mut rec = embed(&sa.waveform(), 6_100, 60_000, 0.4);
        for (i, &v) in sv.waveform().iter().enumerate() {
            rec[31_017 + i] += 0.35 * v;
        }
        let siga = SignalSignature::of(&sa, &cfg);
        let sigv = SignalSignature::of(&sv, &cfg);
        let serial = det.detect_many(&rec, &[&siga, &sigv]);
        for workers in [1, 2, 3, 4, 7, 16] {
            let parallel = det.detect_many_parallel_with(&rec, &[&siga, &sigv], workers);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
        assert!(serial.detections[0].is_found());
        assert!(serial.detections[1].is_found());
    }

    #[test]
    fn parallel_scan_matches_serial_on_absent_signal() {
        let cfg = config();
        let det = Detector::new(&cfg);
        let sig = ReferenceSignal::from_indices(&cfg, vec![3, 9], &mut rng(17));
        let signature = SignalSignature::of(&sig, &cfg);
        let rec = vec![0.0; 44_100];
        let serial = det.detect_many(&rec, &[&signature]);
        for workers in [2, 5, 8] {
            assert_eq!(
                serial,
                det.detect_many_parallel_with(&rec, &[&signature], workers)
            );
        }
        assert_eq!(serial.detections[0], Detection::NotPresent);
    }
}
