//! The paper's FRR/FAR model (Sec. VI-C).
//!
//! The paper models the estimated distance at true distance `d` as
//! `N(d, σ_d²)` with a constant σ_d per scenario, estimated by averaging
//! the standard deviations measured at 0.5/1.0/1.5/2.0 m. Then:
//!
//! * **FRR(τ)** averages `P(d̂ > τ) = Q((τ−d)/σ)` over legitimate
//!   distances `d ∈ (0, τ]`;
//! * **FAR(τ)** averages `P(d̂ ≤ τ)` over illegitimate distances
//!   `d ∈ (τ, 10 m]` — but detection is impossible beyond the maximum
//!   acoustic range `d_s ≈ 2.5 m` (the signal is declared absent), so only
//!   `d ∈ (τ, d_s)` contributes; and FAR is 0 outside Bluetooth range.
//!
//! [`GaussianRangingModel`] implements both by numeric averaging over a
//! fine distance grid, plus closed-form approximations used as sanity
//! cross-checks in tests.

use piano_dsp::stats::q_function;
use serde::{Deserialize, Serialize};

/// The Sec. VI-C Gaussian ranging-error model for one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaussianRangingModel {
    /// Ranging standard deviation σ_d in meters.
    pub sigma_m: f64,
    /// Maximum acoustic detection range d_s in meters (≈2.5 in the paper).
    pub max_acoustic_range_m: f64,
    /// Bluetooth range in meters (10 in the paper).
    pub bluetooth_range_m: f64,
}

/// Grid resolution for the numeric distance averages.
const GRID_POINTS: usize = 4_000;

impl GaussianRangingModel {
    /// Builds a model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < σ`, `0 < d_s < bluetooth_range`.
    pub fn new(sigma_m: f64, max_acoustic_range_m: f64, bluetooth_range_m: f64) -> Self {
        assert!(sigma_m > 0.0, "sigma must be positive");
        assert!(
            max_acoustic_range_m > 0.0 && max_acoustic_range_m < bluetooth_range_m,
            "require 0 < d_s < bluetooth range"
        );
        GaussianRangingModel {
            sigma_m,
            max_acoustic_range_m,
            bluetooth_range_m,
        }
    }

    /// Paper-like defaults with a caller-supplied σ.
    pub fn with_sigma(sigma_m: f64) -> Self {
        GaussianRangingModel::new(sigma_m, 2.5, 10.0)
    }

    /// Probability that a legitimate user at distance `d` is rejected with
    /// threshold `tau`: `Q((τ−d)/σ)`, or 1 if the user is beyond acoustic
    /// range (signal absent ⇒ denied).
    pub fn reject_probability(&self, d: f64, tau: f64) -> f64 {
        if d >= self.max_acoustic_range_m {
            return 1.0;
        }
        q_function((tau - d) / self.sigma_m)
    }

    /// Probability that an attacker with the vouching device at distance
    /// `d > τ` is accepted: `Q((d−τ)/σ)` within acoustic range, else 0.
    pub fn accept_probability(&self, d: f64, tau: f64) -> f64 {
        if d >= self.max_acoustic_range_m || d > self.bluetooth_range_m {
            return 0.0;
        }
        q_function((d - tau) / self.sigma_m)
    }

    /// FRR(τ): the mean rejection probability over legitimate distances
    /// `d ∈ (0, τ]` (the paper's "averaging the FRRs at each legitimate
    /// distance").
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    pub fn frr(&self, tau: f64) -> f64 {
        assert!(tau > 0.0, "threshold must be positive");
        let mut acc = 0.0;
        for k in 0..GRID_POINTS {
            let d = tau * (k as f64 + 0.5) / GRID_POINTS as f64;
            acc += self.reject_probability(d, tau);
        }
        acc / GRID_POINTS as f64
    }

    /// FAR(τ): the mean acceptance probability over illegitimate distances
    /// `d ∈ (τ, bluetooth_range]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < τ < bluetooth_range`.
    pub fn far(&self, tau: f64) -> f64 {
        assert!(
            tau > 0.0 && tau < self.bluetooth_range_m,
            "threshold must lie inside the Bluetooth range"
        );
        let span = self.bluetooth_range_m - tau;
        let mut acc = 0.0;
        for k in 0..GRID_POINTS {
            let d = tau + span * (k as f64 + 0.5) / GRID_POINTS as f64;
            acc += self.accept_probability(d, tau);
        }
        acc / GRID_POINTS as f64
    }

    /// Closed-form FRR approximation `σ/(τ·√(2π))`, valid for `τ ≫ σ`.
    /// Explains the paper's empirical halving of FRR when τ doubles
    /// (Table I).
    pub fn frr_closed_form(&self, tau: f64) -> f64 {
        self.sigma_m / (tau * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Closed-form FAR approximation `σ/((R_bt−τ)·√(2π))`, valid for
    /// `d_s − τ ≫ σ`. Explains Table II's near-constant rows.
    pub fn far_closed_form(&self, tau: f64) -> f64 {
        self.sigma_m / ((self.bluetooth_range_m - tau) * (2.0 * std::f64::consts::PI).sqrt())
    }
}

/// Estimates σ_d the way the paper does: group trials by true distance,
/// take the standard deviation of the estimates at each distance, and
/// average the per-distance standard deviations.
///
/// `trials` are `(true_distance_m, estimated_distance_m)` pairs; distances
/// are grouped exactly (the harness uses exact grid distances). Returns
/// `None` when no group has at least two trials.
pub fn estimate_sigma(trials: &[(f64, f64)]) -> Option<f64> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &(d, est) in trials {
        groups.entry(d.to_bits()).or_default().push(est);
    }
    let mut sigmas = Vec::new();
    for ests in groups.values() {
        if ests.len() < 2 {
            continue;
        }
        let summary = piano_dsp::stats::Summary::of(ests);
        sigmas.push(summary.std);
    }
    if sigmas.is_empty() {
        None
    } else {
        Some(sigmas.iter().sum::<f64>() / sigmas.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Office-like σ from the paper's numbers (Table I: FRR 5.6 % at
    /// τ = 0.5 implies σ ≈ 7 cm via the closed form).
    const OFFICE_SIGMA: f64 = 0.07;

    #[test]
    fn frr_reproduces_paper_office_row_shape() {
        let m = GaussianRangingModel::with_sigma(OFFICE_SIGMA);
        let frr_05 = m.frr(0.5);
        let frr_10 = m.frr(1.0);
        let frr_20 = m.frr(2.0);
        // Paper office row: 5.6 %, 2.8 %, 1.9 %, 1.4 % — the 1/τ halving.
        assert!((frr_05 - 0.056).abs() < 0.01, "FRR(0.5) = {frr_05}");
        assert!((frr_10 - 0.028).abs() < 0.006, "FRR(1.0) = {frr_10}");
        assert!((frr_05 / frr_10 - 2.0).abs() < 0.1, "halving law");
        assert!((frr_05 / frr_20 - 4.0).abs() < 0.2, "quartering law");
    }

    #[test]
    fn far_reproduces_paper_office_row_shape() {
        let m = GaussianRangingModel::with_sigma(OFFICE_SIGMA);
        // Paper office FARs: 0.3–0.4 % nearly flat in τ.
        for &tau in &[0.5, 1.0, 1.5, 2.0] {
            let far = m.far(tau);
            assert!((0.002..0.005).contains(&far), "FAR({tau}) = {far}");
        }
        assert!(m.far(2.0) > m.far(0.5), "FAR grows slightly with τ");
    }

    #[test]
    fn closed_forms_match_numeric_integrals() {
        let m = GaussianRangingModel::with_sigma(0.1);
        for &tau in &[0.5, 1.0, 2.0] {
            let rel = (m.frr(tau) - m.frr_closed_form(tau)).abs() / m.frr(tau);
            assert!(rel < 0.05, "FRR closed form off by {rel} at τ={tau}");
            let rel = (m.far(tau) - m.far_closed_form(tau)).abs() / m.far(tau);
            assert!(rel < 0.05, "FAR closed form off by {rel} at τ={tau}");
        }
    }

    #[test]
    fn noisier_scenarios_have_higher_error_rates() {
        let quiet = GaussianRangingModel::with_sigma(0.07);
        let loud = GaussianRangingModel::with_sigma(0.16);
        assert!(loud.frr(1.0) > quiet.frr(1.0));
        assert!(loud.far(1.0) > quiet.far(1.0));
    }

    #[test]
    fn beyond_acoustic_range_never_accepts() {
        let m = GaussianRangingModel::with_sigma(0.1);
        assert_eq!(m.accept_probability(3.0, 2.0), 0.0);
        assert_eq!(m.accept_probability(9.9, 2.0), 0.0);
        // And a "legitimate" user beyond d_s is always rejected.
        assert_eq!(m.reject_probability(2.6, 2.0), 1.0);
    }

    #[test]
    fn reject_prob_is_monotone_in_distance() {
        let m = GaussianRangingModel::with_sigma(0.1);
        let tau = 1.0;
        let mut prev = 0.0;
        for k in 1..=20 {
            let d = k as f64 * 0.1;
            let p = m.reject_probability(d, tau);
            assert!(p >= prev - 1e-12, "rejection must grow with distance");
            prev = p;
        }
    }

    #[test]
    fn estimate_sigma_recovers_known_spread() {
        // Synthetic trials: exact ±σ alternation at two distances.
        let mut trials = Vec::new();
        for &d in &[0.5, 1.0] {
            for k in 0..20 {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                trials.push((d, d + sign * 0.08));
            }
        }
        let sigma = estimate_sigma(&trials).unwrap();
        // Alternating ±0.08 has sample std ≈ 0.082.
        assert!((sigma - 0.082).abs() < 0.003, "sigma {sigma}");
    }

    #[test]
    fn estimate_sigma_requires_repeats() {
        assert_eq!(estimate_sigma(&[(0.5, 0.51)]), None);
        assert_eq!(estimate_sigma(&[]), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frr_rejects_bad_threshold() {
        let _ = GaussianRangingModel::with_sigma(0.1).frr(0.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn model_rejects_bad_sigma() {
        let _ = GaussianRangingModel::with_sigma(0.0);
    }
}
